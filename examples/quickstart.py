#!/usr/bin/env python3
"""Quickstart: parse a kernel, build its dependence DAG, schedule it.

Walks the paper's three steps on the daxpy inner loop:

1. DAG construction (table-building forward),
2. the intermediate backward heuristic pass,
3. a forward list-scheduling pass using the critical-path heuristics.

Run:  python examples/quickstart.py
"""

from repro import (
    TableForwardBuilder,
    backward_pass,
    generic_risc,
    parse_asm,
    partition_blocks,
    schedule_forward,
    simulate,
    winnowing,
)
from repro.workloads import kernel_source


def main() -> None:
    machine = generic_risc()
    program = parse_asm(kernel_source("daxpy"), "daxpy")
    block = partition_blocks(program)[0]

    print(f"== {program.name}: {block.size} instructions ==\n")

    # Step 1: DAG construction.
    outcome = TableForwardBuilder(machine).build(block)
    dag = outcome.dag
    print(f"DAG: {len(dag)} nodes, {dag.n_arcs} arcs "
          f"({outcome.stats.table_probes} table probes)")
    for arc in dag.arcs():
        print(f"  {arc.parent.id:2d} -> {arc.child.id:2d}  "
              f"{arc.dep.value}  delay={arc.delay}  via {arc.resource}")

    # Step 2: intermediate heuristic calculation (backward pass).
    backward_pass(dag)
    print("\nnode  max_path_to_leaf  max_delay_to_leaf  slack")
    for node in dag.real_nodes():
        print(f"{node.id:4d}  {node.max_path_to_leaf:16d}  "
              f"{node.max_delay_to_leaf:17d}  {node.slack:5d}")

    # Step 3: forward list scheduling.
    priority = winnowing("max_path_to_leaf", "max_delay_to_leaf",
                         "max_delay_to_child")
    result = schedule_forward(dag, machine, priority)
    original = simulate(list(dag.real_nodes()), machine)

    print(f"\noriginal order:  makespan {original.makespan} cycles")
    print(f"scheduled order: makespan {result.makespan} cycles "
          f"({original.makespan / result.makespan:.2f}x)\n")
    for node, issue in zip(result.order, result.timing.issue_times):
        print(f"  cycle {issue:3d}: {node.instr.render()}")

    from repro.analysis.gantt import render_gantt
    print("\n" + render_gantt(result.order, result.timing, machine))


if __name__ == "__main__":
    main()
