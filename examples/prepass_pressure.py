#!/usr/bin/env python3
"""Prepass scheduling and register pressure.

Demonstrates the register-usage heuristic family (Table 1, last
block).  An uncovering-driven scheduler hoists every load to the top
of the block -- maximal lookahead, maximal live ranges.  Ranking
liveness (births minus kills) first keeps values short-lived at a
small cost in candidate-list freedom, which is exactly the prepass
(pre-register-allocation) trade-off the paper describes.

Run:  python examples/prepass_pressure.py
"""

from repro import (
    TableForwardBuilder,
    backward_pass,
    generic_risc,
    parse_asm,
    partition_blocks,
    schedule_forward,
    simulate,
    winnowing,
)
from repro.heuristics.register_usage import annotate_register_usage
from repro.regalloc import max_pressure

SOURCE = """
    ld [%fp-8], %o0
    add %o0, 1, %o1
    st %o1, [%fp-40]
    ld [%fp-12], %o2
    add %o2, 2, %o3
    st %o3, [%fp-44]
    ld [%fp-16], %l2
    add %l2, 3, %l3
    st %l3, [%fp-48]
    ld [%fp-20], %l4
    add %l4, 4, %l5
    st %l5, [%fp-52]
"""


def report(name: str, result, machine) -> None:
    instrs = [n.instr for n in result.order]
    print(f"{name:36s} makespan={result.makespan:3d}  "
          f"max pressure={max_pressure(instrs)}")


def main() -> None:
    machine = generic_risc()
    block = partition_blocks(parse_asm(SOURCE))[0]
    dag = TableForwardBuilder(machine).build(block).dag
    backward_pass(dag)
    annotate_register_usage(dag)

    print(f"original order: max pressure="
          f"{max_pressure(block.instructions)}\n")

    uncovering = schedule_forward(
        dag, machine, winnowing("n_children", "max_delay_to_leaf"))
    report("uncovering-first (hoists loads)", uncovering, machine)

    liveness_aware = schedule_forward(
        dag, machine,
        winnowing(("liveness", "min"), "max_delay_to_leaf"))
    report("liveness-first (prepass style)", liveness_aware, machine)

    print("\nLower liveness priority = shorter live ranges = fewer "
          "simultaneously live registers before allocation.")


if __name__ == "__main__":
    main()
