#!/usr/bin/env python3
"""Construction-cost scaling: the paper's central efficiency claim.

Sweeps basic-block size and compares the ``n**2`` compare-against-all
builder with the table-building builders, in both wall-clock seconds
and machine-independent work counters.  Also shows why the paper says
the n**2 approach needs an instruction window of 300-400 instructions
while table building needs none.

Run:  python examples/large_blocks.py
"""

import time

from repro import (
    CompareAllBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
    apply_window,
    sparcstation2_like,
)
from repro.analysis.report import format_table
from repro.workloads import generate_blocks, scaled_profile
from repro.workloads.profiles import WorkloadProfile


def single_block_profile(size: int) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"sweep-{size}", n_blocks=1, total_insts=size,
        max_block=size, giant_blocks=(size,), typical_cap=size,
        mem_max_per_block=max(2, size // 12),
        mem_avg_per_block=max(1.0, size / 14), fp_fraction=0.6)


def main() -> None:
    machine = sparcstation2_like()
    rows = []
    for size in (50, 100, 200, 400, 800, 1600):
        block = generate_blocks(single_block_profile(size))[0]
        row = [size]
        for builder_cls in (CompareAllBuilder, TableForwardBuilder,
                            TableBackwardBuilder):
            builder = builder_cls(machine)
            start = time.perf_counter()
            outcome = builder.build(block)
            elapsed = time.perf_counter() - start
            work = (outcome.stats.comparisons
                    or outcome.stats.table_probes)
            row.extend([round(elapsed * 1000, 1), work])
        rows.append(row)
    headers = ["block size",
               "n**2 ms", "n**2 comparisons",
               "tbl-fwd ms", "tbl-fwd probes",
               "tbl-bwd ms", "tbl-bwd probes"]
    print(format_table(headers, rows,
                       title="Construction cost vs block size"))

    # The window cure for n**2 (paper: keep blocks under 300-400).
    big = generate_blocks(single_block_profile(1600))
    start = time.perf_counter()
    CompareAllBuilder(machine).build(big[0])
    unwindowed = time.perf_counter() - start
    start = time.perf_counter()
    for chunk in apply_window(big, 400):
        CompareAllBuilder(machine).build(chunk)
    windowed = time.perf_counter() - start
    print(f"\nn**2 on a 1600-instruction block: {unwindowed * 1000:.1f} ms "
          f"unwindowed vs {windowed * 1000:.1f} ms with a 400-instruction "
          "window")


if __name__ == "__main__":
    main()
