! daxpy inner-loop body: y[i] = y[i] + a*x[i], unrolled by two.
! A ready-made input for the command-line interface, e.g.:
!
!     python -m repro schedule examples/daxpy.s --machine sparc
!     python -m repro dag examples/daxpy.s --builder table-backward
!     python -m repro verify examples/daxpy.s
!
! Every DAG construction algorithm passes independent verification on
! this kernel (contrast with the paper's Figure 1 block, where
! Landskov pruning fails the timing check).
daxpy:
    ldd [%i0], %f0          ! x[i]
    ldd [%i1], %f2          ! y[i]
    fmuld %f0, %f30, %f4    ! a*x[i]
    faddd %f2, %f4, %f6
    std %f6, [%i1]
    ldd [%i0+8], %f8        ! x[i+1]
    ldd [%i1+8], %f10       ! y[i+1]
    fmuld %f8, %f30, %f12
    faddd %f10, %f12, %f14
    std %f14, [%i1+8]
    add %i0, 16, %i0
    add %i1, 16, %i1
    subcc %i2, 2, %i2
    bg daxpy
    nop
