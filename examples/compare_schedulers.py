#!/usr/bin/env python3
"""Run all six published algorithms (Table 2) across kernels and a
synthetic workload, reporting makespans and speedups.

Run:  python examples/compare_schedulers.py
"""

from repro import generic_risc, parse_asm, partition_blocks
from repro.analysis.report import format_table
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.workloads import (
    KERNELS,
    generate_blocks,
    kernel_source,
    scaled_profile,
)


def kernel_rows(machine):
    rows = []
    for kernel in ("figure1", "daxpy", "livermore1", "dot_product",
                   "superscalar_mix"):
        block = partition_blocks(parse_asm(kernel_source(kernel)))[0]
        row = [kernel, block.size]
        for cls in ALL_ALGORITHMS:
            result = cls(machine).schedule_block(block)
            row.append(result.makespan)
        original = cls(machine).schedule_block(block).original_timing
        row.append(original.makespan)
        rows.append(row)
    return rows


def workload_rows(machine):
    rows = []
    for name in ("linpack", "tomcatv"):
        blocks = generate_blocks(scaled_profile(name, 0.1))
        row = [name, sum(b.size for b in blocks)]
        totals = {cls: 0 for cls in ALL_ALGORITHMS}
        original_total = 0
        for block in blocks:
            if not block.size:
                continue
            for cls in ALL_ALGORITHMS:
                result = cls(machine).schedule_block(block)
                totals[cls] += result.makespan
            original_total += result.original_timing.makespan
        row.extend(totals[cls] for cls in ALL_ALGORITHMS)
        row.append(original_total)
        rows.append(row)
    return rows


def main() -> None:
    machine = generic_risc()
    headers = (["workload", "insts"]
               + [cls.name for cls in ALL_ALGORITHMS] + ["original"])
    print(format_table(headers, kernel_rows(machine),
                       title="Makespans per kernel (cycles)"))
    print()
    print(format_table(headers, workload_rows(machine),
                       title="Total makespans on synthetic workloads "
                             "(10% scale)"))
    print("\nSmaller is better; 'original' is the unscheduled order.")


if __name__ == "__main__":
    main()
