#!/usr/bin/env python3
"""The alternate-type heuristic on a 2-wide superscalar.

The superscalar2 machine issues two instructions per cycle but has
only one FP adder and one FP multiplier, so two FP-add-class
instructions can never pair -- an INT+FP mix can.  The alternate-type
heuristic (Table 1, instruction-class category) reorders the stream so
classes interleave and the pairing opportunities are realized.

Run:  python examples/superscalar_pairing.py
"""

from repro import (
    TableForwardBuilder,
    backward_pass,
    parse_asm,
    partition_blocks,
    schedule_forward,
    simulate,
    superscalar2,
    winnowing,
)

# Four independent integer ops then four independent FP ops: issued in
# source order, the FP adder serializes the back half.
SOURCE = """
    add %o0, 1, %o1
    sub %o0, 2, %o2
    sll %o0, 3, %o3
    xor %o0, 4, %o4
    faddd %f0, %f2, %f4
    faddd %f6, %f8, %f10
    faddd %f12, %f14, %f16
    faddd %f18, %f20, %f22
"""


def main() -> None:
    machine = superscalar2()
    block = partition_blocks(parse_asm(SOURCE))[0]
    dag = TableForwardBuilder(machine).build(block).dag
    backward_pass(dag)

    original = simulate(list(dag.real_nodes()), machine)
    paired = schedule_forward(
        dag, machine,
        winnowing("alternate_type", "max_delay_to_leaf"))

    print(f"original order (classes clumped): makespan "
          f"{original.makespan}")
    print(f"alternate-type schedule:           makespan "
          f"{paired.makespan}\n")
    for node, t in zip(paired.order, paired.timing.issue_times):
        print(f"  cycle {t}: {node.instr.render()}")
    print("\nEach cycle pairs an integer op with an FP op -- the single "
          "FP adder never blocks issue.")


if __name__ == "__main__":
    main()
