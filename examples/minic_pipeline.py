#!/usr/bin/env python3
"""The full compiler-backend story: mini-C -> assembly -> scheduled.

Compiles a small arithmetic kernel with the deliberately naive mini-C
code generator (a load per variable reference, conversion through
memory, remainder lowering -- classic unoptimized late-80s compiler
output), then shows what each published scheduler recovers.

Run:  python examples/minic_pipeline.py
"""

from repro import generic_risc
from repro.analysis.gantt import render_gantt
from repro.cfg import partition_blocks
from repro.minic import compile_minic, compile_to_program
from repro.scheduling.algorithms import ALL_ALGORITHMS

SOURCE = """
double a, b, c, d;
int i, j, n;
c = a * b + c / a;              // FP divide shadows to fill
d = (a - b) * (c + 1.5);
j = (i + 1) * (i - 1) % 7;      // remainder lowering
n = (j << 2 & 255) + i / 3;
"""


def main() -> None:
    print("mini-C source:")
    print(SOURCE)
    asm = compile_minic(SOURCE)
    print(f"compiled to {asm.count(chr(10)) - 2} instructions:\n")
    print(asm)

    machine = generic_risc()
    block = partition_blocks(compile_to_program(SOURCE))[0]
    print(f"{'algorithm':24s} {'makespan':>8s}  speedup")
    best = None
    for cls in ALL_ALGORITHMS:
        result = cls(machine).schedule_block(block)
        print(f"{cls.name:24s} {result.makespan:8d}  "
              f"{result.speedup:.2f}x")
        if best is None or result.makespan < best.makespan:
            best = result
    print(f"{'(original order)':24s} "
          f"{best.original_timing.makespan:8d}\n")
    print(render_gantt(best.order, best.timing, machine, max_width=80))


if __name__ == "__main__":
    main()
