#!/usr/bin/env python3
"""Figure 1 reproduction: why transitive arcs must be retained.

The paper's three-instruction example:

    1: DIVF R1,R2,R3   (20 cycles)
    2: ADDF R4,R5,R1   (4 cycles)   WAR on R1, delay 1
    3: ADDF R1,R3,R6   (4 cycles)   RAW from 2 (delay 4) AND from 1
                                    (delay 20, transitive!)

Removing the transitive RAW(20) arc leaves only the WAR(1)+RAW(4)
path, so every delay-sum heuristic and the earliest execution time of
node 3 are wrong by 15 cycles -- conclusion 3 of the paper recommends
against transitive-arc-avoiding construction for exactly this reason.

Run:  python examples/transitive_arcs.py
"""

from repro import (
    ALL_BUILDERS,
    generic_risc,
    forward_pass,
    parse_asm,
    partition_blocks,
    TableBackwardBuilder,
)
from repro.dag.transitive import (
    remove_transitive_arcs,
    timing_essential_arcs,
)
from repro.workloads import kernel_source


def main() -> None:
    machine = generic_risc()
    block = partition_blocks(parse_asm(kernel_source("figure1")))[0]

    print("== arcs produced by each construction algorithm ==\n")
    for builder_cls in ALL_BUILDERS:
        dag = builder_cls(machine).build(block).dag
        arcs = ", ".join(
            f"{a.parent.id + 1}->{a.child.id + 1}({a.dep.value},{a.delay})"
            for a in dag.arcs())
        keeps = any(a.parent.id == 0 and a.child.id == 2
                    for a in dag.arcs())
        marker = "keeps the 20-cycle arc" if keeps else "LOSES it"
        print(f"{builder_cls.name:28s} {arcs:55s} <- {marker}")

    dag = TableBackwardBuilder(machine).build(block).dag
    essential = timing_essential_arcs(dag)
    print("\ntiming-essential transitive arcs:",
          [(a.parent.id + 1, a.child.id + 1, a.delay) for a in essential])

    forward_pass(dag)
    est_with = dag.nodes[2].est
    remove_transitive_arcs(dag)
    forward_pass(dag)
    est_without = dag.nodes[2].est
    print(f"\nearliest start time of node 3:")
    print(f"  with the transitive arc:    {est_with} cycles (correct)")
    print(f"  after Landskov-style prune: {est_without} cycles "
          f"(wrong by {est_with - est_without})")


if __name__ == "__main__":
    main()
