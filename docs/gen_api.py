#!/usr/bin/env python3
"""Generate docs/api.md: the public API reference from docstrings.

Run:  python docs/gen_api.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import repro

OUT = pathlib.Path(__file__).parent / "api.md"

#: Modules whose public names form the documented API surface.
MODULES = [
    "repro",
    "repro.isa.registers", "repro.isa.memory", "repro.isa.opcodes",
    "repro.isa.instruction", "repro.isa.resources",
    "repro.asm.lexer", "repro.asm.parser", "repro.asm.program",
    "repro.asm.writer",
    "repro.cfg.basic_block", "repro.cfg.partition", "repro.cfg.windows",
    "repro.machine.latency", "repro.machine.units",
    "repro.machine.reservation", "repro.machine.model",
    "repro.machine.presets",
    "repro.dag.graph", "repro.dag.bitmap", "repro.dag.forest",
    "repro.dag.transitive", "repro.dag.stats", "repro.dag.export",
    "repro.dag.columnar.bitmatrix", "repro.dag.columnar.block",
    "repro.dag.columnar.builders", "repro.dag.columnar.graph",
    "repro.dag.columnar.passes",
    "repro.dag.builders.cache",
    "repro.dag.builders.base", "repro.dag.builders.compare_all",
    "repro.dag.builders.landskov", "repro.dag.builders.table_forward",
    "repro.dag.builders.table_backward",
    "repro.dag.builders.bitmap_backward",
    "repro.heuristics.base", "repro.heuristics.catalog",
    "repro.heuristics.passes", "repro.heuristics.stall",
    "repro.heuristics.instruction_class", "repro.heuristics.uncovering",
    "repro.heuristics.structural", "repro.heuristics.register_usage",
    "repro.heuristics.incremental",
    "repro.scheduling.timing", "repro.scheduling.priority",
    "repro.scheduling.list_scheduler", "repro.scheduling.backward_timed",
    "repro.scheduling.fixup", "repro.scheduling.delay_slots",
    "repro.scheduling.interblock", "repro.scheduling.branch_and_bound",
    "repro.scheduling.reservation_scheduler",
    "repro.scheduling.algorithms.base",
    "repro.regalloc.liveness", "repro.regalloc.pressure",
    "repro.workloads.profiles", "repro.workloads.synthetic",
    "repro.workloads.kernels",
    "repro.analysis.tables", "repro.analysis.report",
    "repro.analysis.gantt", "repro.analysis.decisions",
    "repro.analysis.compare",
    "repro.minic.lexer", "repro.minic.parser", "repro.minic.codegen",
    "repro.interp",
    "repro.verify.checker", "repro.verify.faults",
    "repro.runner.watchdog", "repro.runner.fallback",
    "repro.runner.journal", "repro.runner.fsck", "repro.runner.batch",
    "repro.runner.supervisor", "repro.runner.chaos",
    "repro.runner.fuzz", "repro.runner.bench",
    "repro.obs.trace", "repro.obs.metrics", "repro.obs.report",
    "repro.obs.expo", "repro.obs.profile",
    "repro.serve.protocol", "repro.serve.admission",
    "repro.serve.overload",
    "repro.serve.engine", "repro.serve.server",
    "repro.serve.wal", "repro.serve.supervise",
    "repro.serve.loadtest", "repro.serve.chaosserve",
    "repro.serve.top",
    "repro.pipeline", "repro.transform", "repro.cli",
]


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else "(undocumented)"


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        if inspect.ismodule(obj):
            continue
        if getattr(obj, "__module__", module.__name__) != module.__name__ \
                and module.__name__ != "repro":
            continue  # re-exports documented at their home module
        yield name, obj


def render_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", "", first_line(module), ""]
    if module_name == "repro":
        # The top-level package only re-exports; every name is
        # documented at its home module below.
        lines.append("Re-exports the public API; see the modules below.")
        lines.append("")
        return lines
    for name, obj in public_members(module):
        if inspect.isclass(obj):
            lines.append(f"### class `{name}`")
            lines.append("")
            lines.append(first_line(obj))
            lines.append("")
            for meth_name, meth in inspect.getmembers(obj):
                if meth_name.startswith("_"):
                    continue
                if not (inspect.isfunction(meth) or isinstance(
                        inspect.getattr_static(obj, meth_name, None),
                        property)):
                    continue
                if inspect.isfunction(meth) \
                        and meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if isinstance(inspect.getattr_static(obj, meth_name),
                              property):
                    lines.append(f"* property `{meth_name}` — "
                                 f"{first_line(inspect.getattr_static(obj, meth_name))}")
                else:
                    lines.append(f"* `{meth_name}{signature_of(meth)}` — "
                                 f"{first_line(meth)}")
            lines.append("")
        elif inspect.isfunction(obj):
            lines.append(f"### `{name}{signature_of(obj)}`")
            lines.append("")
            lines.append(first_line(obj))
            lines.append("")
    return lines


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated by `python docs/gen_api.py` — edit docstrings, not "
        "this file.",
        "",
        "Guides: [tutorial](tutorial.md), [heuristics](heuristics.md), "
        "[paper mapping](paper_mapping.md), "
        "[schedule verification](verification.md), "
        "[resilient runner](runner.md), "
        "[performance layer](performance.md), "
        "[observability](observability.md), "
        "[resilience](resilience.md), "
        "[serving](serving.md), "
        "[durability](durability.md).",
        "",
    ]
    for module_name in MODULES:
        lines.extend(render_module(module_name))
    OUT.write_text("\n".join(lines) + "\n")
    print(f"wrote {OUT} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
