"""Table 2: the six published scheduling algorithms.

Regenerates the analysis matrix (construction pass/algorithm,
scheduling pass, heuristic ranking) and benchmarks each algorithm
end-to-end -- all three steps -- over a shared workload, reporting the
measured makespan improvement each achieves.  The paper's Table 2 is
qualitative; the quantitative columns here extend it.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import table2_rows
from repro.scheduling.algorithms import ALL_ALGORITHMS
from benchmarks.conftest import record_row


def test_table2_matrix(benchmark):
    rows = benchmark(lambda: table2_rows(ALL_ALGORITHMS))
    for row in rows:
        record_row("table2", "Table 2: scheduling algorithm analysis", row)
    assert len(rows) == 6


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS,
                         ids=lambda c: c.name.replace(" ", "_"))
def test_table2_algorithm_end_to_end(benchmark, workloads, machine,
                                     algorithm_cls):
    blocks = [b for b in workloads["lloops"] if b.size][:120]

    def run():
        total = original = 0
        for block in blocks:
            result = algorithm_cls(machine).schedule_block(block)
            total += result.makespan
            original += result.original_timing.makespan
        return total, original

    total, original = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("table2_makespans",
               "Table 2 extension: measured schedule quality (lloops)", {
                   "algorithm": algorithm_cls.name,
                   "sched makespan": total,
                   "original": original,
                   "speedup": round(original / total, 3),
               })
    # Forward algorithms are clock-driven and never regress.  The
    # backward (priority-only) passes are blind to structural hazards:
    # on this machine's non-pipelined FP units Schlansker can lose
    # ~10% on blocks whose original order already interleaved FP work
    # (Tiemann's max-delay-from-root priority loses almost nothing).
    if algorithm_cls.sched_pass.startswith("f"):
        assert total <= original
    else:
        assert total <= original * 1.15
