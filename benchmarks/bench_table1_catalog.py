"""Table 1: the 26-heuristic catalog, verified live.

Regenerates Table 1 and proves every row is *implemented*: each static
heuristic is evaluated on real DAG nodes after the appropriate pass,
and each dynamic heuristic is evaluated against a live scheduler
state.  The timed portion benchmarks the full heuristic-annotation
machinery (forward pass + backward pass with descendants + register
usage) over a benchmark's blocks.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import table1_rows
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.base import PassKind
from repro.heuristics.catalog import CATALOG
from repro.heuristics.passes import backward_pass, forward_pass
from repro.heuristics.register_usage import annotate_register_usage
from repro.scheduling.list_scheduler import SchedulerState
from benchmarks.conftest import record_row


def test_table1_catalog_rows(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 26
    for row in rows:
        record_row("table1", "Table 1: heuristic catalog", row)


def test_every_heuristic_evaluates_on_live_dag(benchmark, workloads,
                                               machine):
    blocks = [b for b in workloads["linpack"] if b.size >= 4][:20]
    state = SchedulerState(machine)

    def evaluate_all():
        for block in blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            forward_pass(dag)
            backward_pass(dag, descendants=True, require_est=False)
            annotate_register_usage(dag)
            dag.reset_schedule_state()
            for heuristic in CATALOG:
                for node in dag.real_nodes():
                    value = heuristic.value(node, state)
                    assert isinstance(value, (int, bool, float)), \
                        heuristic.key

    benchmark.pedantic(evaluate_all, rounds=1, iterations=1)


def test_annotation_passes(benchmark, workloads, machine):
    """Time the full static-heuristic annotation over linpack."""
    blocks = workloads["linpack"]
    dags = [TableForwardBuilder(machine).build(b).dag
            for b in blocks if b.size]

    def annotate():
        for dag in dags:
            forward_pass(dag)
            backward_pass(dag, descendants=True, require_est=False)
            annotate_register_usage(dag)

    benchmark.pedantic(annotate, rounds=3, iterations=1)


def test_dynamic_vs_static_split(benchmark):
    benchmark(lambda: [h.pass_kind for h in CATALOG])
    dynamic = [h for h in CATALOG if h.pass_kind is PassKind.VISIT]
    static = [h for h in CATALOG if h.pass_kind is not PassKind.VISIT]
    # Table 1: 7 'v' rows, 19 others.
    assert len(dynamic) == 7
    assert len(static) == 19
