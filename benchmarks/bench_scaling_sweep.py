"""Conclusions 1-2: construction-cost scaling with block size.

The paper: "The table-building methods are significantly faster for
large basic blocks than the compare-against-all (n**2) approach" and
"are robust and do not require instruction windows even for extremely
large basic blocks."  This bench sweeps single-block workloads from 50
to 3200 instructions and records, per algorithm, wall-clock and the
machine-independent work counter; the n**2 work must grow quadratically
while table building stays near-linear.

Also reproduces the practicality threshold: with a 300-400 instruction
window the n**2 method stays competitive (the paper's recommendation).
"""

from __future__ import annotations

import time

import pytest

from repro.cfg import apply_window
from repro.dag.builders import (
    CompareAllBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.machine import sparcstation2_like
from repro.workloads import generate_blocks
from repro.workloads.profiles import WorkloadProfile
from benchmarks.conftest import record_row

MACHINE = sparcstation2_like()
SIZES = (50, 100, 200, 400, 800, 1600, 3200)


def sweep_profile(size: int) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"sweep-{size}", n_blocks=1, total_insts=size,
        max_block=size, giant_blocks=(size,), typical_cap=size,
        mem_max_per_block=max(2, size // 12),
        mem_avg_per_block=max(1.0, size / 14), fp_fraction=0.6)


_work: dict[tuple[str, int], int] = {}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("builder_cls",
                         (CompareAllBuilder, TableForwardBuilder,
                          TableBackwardBuilder),
                         ids=("n2", "table_fwd", "table_bwd"))
def test_scaling(benchmark, builder_cls, size):
    block = generate_blocks(sweep_profile(size))[0]
    outcome = benchmark.pedantic(
        lambda: builder_cls(MACHINE).build(block), rounds=1, iterations=1)
    work = outcome.stats.comparisons or outcome.stats.table_probes
    _work[(builder_cls.name, size)] = work
    record_row("scaling_sweep",
               "Conclusions 1-2: construction work vs block size", {
                   "builder": builder_cls.name,
                   "block size": size,
                   "work units": work,
                   "arcs": outcome.dag.n_arcs,
               })


def test_scaling_shape(benchmark):
    """n**2 work grows ~quadratically; table building ~linearly."""
    if ("n**2 forward", 3200) not in _work:
        import pytest
        pytest.skip("scaling benches did not run")
    benchmark(lambda: None)
    n2_small = _work[("n**2 forward", 200)]
    n2_big = _work[("n**2 forward", 3200)]
    tbl_small = _work[("table forward", 200)]
    tbl_big = _work[("table forward", 3200)]
    # 16x size increase: n**2 work must grow ~256x, table < ~40x.
    assert n2_big / n2_small > 100
    assert tbl_big / tbl_small < 60
    record_row("scaling_shape", "Scaling shape (200 -> 3200 insts)", {
        "builder": "n**2 forward",
        "work growth": round(n2_big / n2_small, 1),
        "expected": "~256x (quadratic)",
    })
    record_row("scaling_shape", "Scaling shape (200 -> 3200 insts)", {
        "builder": "table forward",
        "work growth": round(tbl_big / tbl_small, 1),
        "expected": "~16x (linear-ish)",
    })


def test_window_rescues_n2(benchmark):
    """The paper's window recommendation: cap blocks at 300-400 for
    the n**2 method to remain practical."""
    blocks = generate_blocks(sweep_profile(3200))

    def unwindowed():
        return CompareAllBuilder(MACHINE).build(blocks[0]).stats.comparisons

    def windowed():
        total = 0
        for chunk in apply_window(blocks, 400):
            total += CompareAllBuilder(MACHINE).build(
                chunk).stats.comparisons
        return total

    start = time.perf_counter()
    full = unwindowed()
    t_full = time.perf_counter() - start
    start = time.perf_counter()
    capped = benchmark.pedantic(windowed, rounds=1, iterations=1)
    t_capped = time.perf_counter() - start
    record_row("n2_window", "n**2 with and without a 400-inst window "
                            "(3200-inst block)", {
                   "variant": "unwindowed",
                   "comparisons": full,
                   "seconds": round(t_full, 3),
               })
    record_row("n2_window", "n**2 with and without a 400-inst window "
                            "(3200-inst block)", {
                   "variant": "window=400",
                   "comparisons": capped,
                   "seconds": round(t_capped, 3),
               })
    assert capped < full / 4
