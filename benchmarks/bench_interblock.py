"""Future work 3: the benefit of global (cross-block) information.

"determining the benefits of global scheduling information (e.g.,
operation latencies inherited from previous basic blocks)" -- paper
section 7.

Model: execute a benchmark's blocks in program order (a straight-line
approximation).  Each block inherits the residual operation latencies
of its predecessor's schedule.  Two schedulers are compared:

* **local** -- schedules each block in isolation (the paper's
  algorithms); its schedule still *pays* the inherited stalls when
  re-timed against them;
* **global** -- sees the inherited latencies as pseudo-arcs and can
  cover them with independent work.

The bench reports total cycles for both; the delta is the measured
benefit of future work 3.
"""

from __future__ import annotations

import pytest

from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.scheduling.interblock import apply_inherited, residual_latencies
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate
from benchmarks.conftest import record_row

PRIORITY = winnowing("max_path_to_leaf", "max_delay_to_leaf",
                     "max_delay_to_child")


def _run_chain(blocks, machine, use_global: bool) -> int:
    """Total cycles executing the blocks in order with inheritance."""
    total = 0
    residuals = []
    for block in blocks:
        # The scheduling DAG: with pseudo-arcs when global info is on.
        dag = TableForwardBuilder(machine).build(block).dag
        if use_global:
            apply_inherited(dag, residuals)
        backward_pass(dag, require_est=False)
        result = schedule_forward(dag, machine, PRIORITY)

        # The TRUE cost always includes the inherited latencies.
        truth = TableForwardBuilder(machine).build(block).dag
        apply_inherited(truth, residuals)
        order = [truth.nodes[n.id] for n in result.order]
        timing = simulate(order, machine)
        total += timing.makespan

        from repro.scheduling.list_scheduler import ScheduleResult
        residuals = residual_latencies(ScheduleResult(order, timing),
                                       machine)
    return total


@pytest.mark.parametrize("mode", ["local", "global"])
def test_interblock_inheritance(benchmark, workloads, machine, mode):
    blocks = [b for b in workloads["lloops"] if b.size][:150]
    total = benchmark.pedantic(
        lambda: _run_chain(blocks, machine, use_global=(mode == "global")),
        rounds=1, iterations=1)
    record_row("interblock",
               "Future work 3: inherited latencies across blocks "
               "(lloops, straight-line)", {
                   "scheduler": mode,
                   "total cycles": total,
               })
    _totals[mode] = total


_totals: dict[str, int] = {}


def test_global_never_worse(benchmark):
    benchmark(lambda: None)
    if len(_totals) < 2:
        pytest.skip("inheritance benches did not run")
    # Seeing the inherited stalls can only help the list scheduler.
    assert _totals["global"] <= _totals["local"]
