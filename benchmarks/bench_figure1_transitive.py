"""Figure 1: the importance of transitive arcs.

Quantifies the paper's Figure 1 argument end to end:

* every construction algorithm is benchmarked on the Figure 1 block;
* the timing-essential transitive arc (RAW, 20 cycles) is identified;
* the damage from removing it is measured twice -- as static-heuristic
  error (EST off by 15 cycles) and as *schedule* damage (the earliest-
  execution-time scheduler mistimes node 3 when the arc is gone).
"""

from __future__ import annotations

import pytest

from repro.asm import parse_asm
from repro.cfg import partition_blocks
from repro.dag.builders import (
    ALL_BUILDERS,
    LandskovBuilder,
    TableBackwardBuilder,
)
from repro.dag.transitive import (
    remove_transitive_arcs,
    timing_essential_arcs,
)
from repro.heuristics.passes import backward_pass, forward_pass
from repro.machine import generic_risc
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate
from repro.workloads import kernel_source
from benchmarks.conftest import record_row

MACHINE = generic_risc()


def figure1_block():
    return partition_blocks(parse_asm(kernel_source("figure1")))[0]


@pytest.mark.parametrize("builder_cls", ALL_BUILDERS,
                         ids=lambda c: c.name.replace(" ", "_"))
def test_figure1_construction(benchmark, builder_cls):
    block = figure1_block()
    outcome = benchmark(lambda: builder_cls(MACHINE).build(block))
    keeps = any(a.parent.id == 0 and a.child.id == 2
                for a in outcome.dag.arcs())
    record_row("figure1", "Figure 1: transitive-arc retention", {
        "builder": builder_cls.name,
        "arcs": outcome.dag.n_arcs,
        "keeps 20-cycle arc": "yes" if keeps else "NO",
    })
    if builder_cls is LandskovBuilder:
        assert not keeps  # the paper's criticism, reproduced
    else:
        assert keeps


def test_figure1_est_error(benchmark):
    dag = benchmark(
        lambda: TableBackwardBuilder(MACHINE).build(figure1_block()).dag)
    essential = timing_essential_arcs(dag)
    assert [(a.parent.id, a.child.id, a.delay)
            for a in essential] == [(0, 2, 20)]

    forward_pass(dag)
    est_with = dag.nodes[2].est
    remove_transitive_arcs(dag)
    forward_pass(dag)
    est_without = dag.nodes[2].est
    record_row("figure1_error", "Figure 1: heuristic error from removal", {
        "quantity": "EST of node 3",
        "with arc": est_with,
        "without arc": est_without,
        "error (cycles)": est_with - est_without,
    })
    assert est_with == 20 and est_without == 5


def test_figure1_schedule_mistiming(benchmark):
    """Earliest-execution-time is wrong without the arc: the scheduler
    believes node 3 is ready at cycle 5 when its data arrives at 20."""
    machine = MACHINE
    priority = winnowing("max_delay_to_leaf")

    intact = benchmark(
        lambda: TableBackwardBuilder(machine).build(figure1_block()).dag)
    backward_pass(intact)
    good = schedule_forward(intact, machine, priority)

    pruned = TableBackwardBuilder(machine).build(figure1_block()).dag
    remove_transitive_arcs(pruned)
    backward_pass(pruned)
    bad = schedule_forward(pruned, machine, priority)
    # Re-time the pruned schedule against the TRUE dependences.
    true_timing = simulate([intact.nodes[n.id] for n in bad.order], machine)

    believed = bad.timing.makespan
    actual = true_timing.makespan
    record_row("figure1_schedule", "Figure 1: schedule-level effect", {
        "quantity": "makespan of pruned-DAG schedule",
        "believed (pruned DAG)": believed,
        "actual (true delays)": actual,
        "underestimate": actual - believed,
    })
    assert believed < actual  # the pruned DAG lies about readiness
    assert good.makespan == actual  # same order; intact DAG timed right
