"""Conclusion 6: construction direction vs scheduling direction.

"Our conjecture that we should always pair a DAG construction
algorithm with an opposite direction scheduling pass was false.  Our
results showed negligible difference in efficiency for the proposed
pairing."

This bench times all four pairings (construction {forward, backward} x
scheduling {forward, backward}) over the same workload.  The forward
scheduler needs the backward heuristic pass and vice versa, so an
"opposite" pairing lets construction double as the first directional
pass -- the conjecture was that this helps; the measurement (here and
in the paper) says the saving is noise.
"""

from __future__ import annotations

import time

import pytest

from repro.dag.builders import TableBackwardBuilder, TableForwardBuilder
from repro.heuristics.passes import backward_pass, forward_pass
from repro.scheduling.list_scheduler import (
    schedule_backward,
    schedule_forward,
)
from repro.scheduling.priority import winnowing
from benchmarks.conftest import record_row

_FORWARD_PRIORITY = winnowing("max_path_to_leaf", "max_delay_to_leaf",
                              "max_delay_to_child")
_BACKWARD_PRIORITY = winnowing("max_delay_from_root")

_results: dict[str, int] = {}


def _run(blocks, machine, builder_cls, direction: str) -> int:
    total = 0
    for block in blocks:
        if not block.size:
            continue
        dag = builder_cls(machine).build(block).dag
        if direction == "f":
            backward_pass(dag, require_est=False)
            total += schedule_forward(dag, machine,
                                      _FORWARD_PRIORITY).makespan
        else:
            forward_pass(dag)
            total += schedule_backward(dag, machine,
                                       _BACKWARD_PRIORITY).makespan
    return total


@pytest.mark.parametrize("builder_cls,build_dir",
                         [(TableForwardBuilder, "f"),
                          (TableBackwardBuilder, "b")],
                         ids=("build_fwd", "build_bwd"))
@pytest.mark.parametrize("sched_dir", ["f", "b"],
                         ids=("sched_fwd", "sched_bwd"))
def test_direction_pairing(benchmark, workloads, machine, builder_cls,
                           build_dir, sched_dir):
    blocks = workloads["nasa7"]
    start = time.perf_counter()
    makespan = benchmark.pedantic(
        lambda: _run(blocks, machine, builder_cls, sched_dir),
        rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    pairing = f"build {build_dir} / sched {sched_dir}"
    _results[pairing] = elapsed
    record_row("direction_pairing",
               "Conclusion 6: direction pairings on nasa7", {
                   "pairing": pairing,
                   "opposite?": "yes" if build_dir != sched_dir else "no",
                   "seconds": round(elapsed, 3),
                   "total makespan": makespan,
               })


def test_pairing_difference_negligible(benchmark):
    benchmark(lambda: None)
    if len(_results) < 4:
        pytest.skip("pairing benches did not all run")
    same = [v for k, v in _results.items()
            if k[6] == k[-1]]
    opposite = [v for k, v in _results.items()
                if k[6] != k[-1]]
    # "Negligible difference": within 2x either way (wall-clock noise
    # dominates; the paper saw < 2% on real hardware).
    assert min(opposite) < 2 * max(same) + 0.05
    assert min(same) < 2 * max(opposite) + 0.05
