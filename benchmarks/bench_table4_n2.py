"""Table 4: the ``n**2`` approach -- run times and structural data.

For each benchmark the paper ran (grep..nasa7 and fpppp-1000 only;
larger fpppp windows were "not run for this approach due to the
excessive time and space requirements"), runs the full section 6
pipeline with the compare-against-all builder and reports wall-clock
seconds, children/instruction, arcs/block, and the machine-independent
pair-comparison count.

The 1991 SPARCstation-2 seconds are not comparable to modern
wall-clock; the *relative* blow-up on large-block benchmarks is the
claim under reproduction (see bench_scaling_sweep.py for the curve).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import table45_row
from repro.dag.builders import CompareAllBuilder
from benchmarks.conftest import TABLE4_ROWS, record_row

#: Paper Table 4: run time (s), children max/avg, arcs max/avg.
PAPER_TABLE4 = {
    "grep": (2.2, 7, 0.70, 71, 1.66),
    "regex": (3.0, 8, 0.72, 107, 2.00),
    "dfa": (5.3, 15, 0.89, 185, 2.61),
    "cccp": (8.5, 9, 0.67, 94, 1.70),
    "linpack": (11.1, 34, 2.10, 1024, 18.29),
    "lloops": (11.6, 22, 1.86, 651, 26.54),
    "tomcatv": (16.3, 59, 4.91, 4861, 84.53),
    "nasa7": (49.4, 58, 3.62, 4659, 50.95),
    "fpppp-1000": (1522.0, 602, 55.61, 155421, 2104.56),
}


_measured_arcs_avg: dict[str, float] = {}


@pytest.mark.parametrize("name", TABLE4_ROWS)
def test_table4_n2(benchmark, workloads, machine, name):
    blocks = workloads[name]
    row = benchmark.pedantic(
        lambda: table45_row(name, blocks, machine,
                            lambda: CompareAllBuilder(machine)),
        rounds=1, iterations=1)
    _measured_arcs_avg[name] = row["arcs/bb avg"]
    paper = PAPER_TABLE4[name]
    record_row("table4", "Table 4: n**2 approach (measured vs paper)", {
        "benchmark": name,
        "time (s)": row["run time (s)"],
        "time(paper)": paper[0],
        "ch max": row["children max"],
        "ch max(p)": paper[1],
        "ch avg": row["children avg"],
        "ch avg(p)": paper[2],
        "arcs max": row["arcs/bb max"],
        "arcs max(p)": paper[3],
        "arcs avg": row["arcs/bb avg"],
        "arcs avg(p)": paper[4],
        "comparisons": row["comparisons"],
    })
    assert row["comparisons"] > 0
    # The n**2 method keeps transitive arcs: its arc density must be at
    # least the Table 5 (table-building) density for the same workload
    # -- checked indirectly by the large avg on FP benchmarks.
    if name in ("tomcatv", "nasa7", "fpppp-1000"):
        assert row["arcs/bb avg"] > 20


def test_table4_shape(benchmark):
    """Arc-density ordering across benchmarks must match the paper."""
    benchmark(lambda: None)
    if len(_measured_arcs_avg) < len(TABLE4_ROWS):
        pytest.skip("table 4 benches did not all run")
    from repro.analysis.compare import rank_correlation
    names = list(TABLE4_ROWS)
    rho = rank_correlation([_measured_arcs_avg[n] for n in names],
                           [PAPER_TABLE4[n][4] for n in names])
    assert rho > 0.85
