"""Future work 2: which heuristics actually decide, per benchmark.

"characterizing the attributes of larger basic blocks that enable
certain heuristics to outperform others" (paper section 7).  This
bench records every scheduling decision of the section 6 winnowing
priority over four structurally different benchmarks and histograms
the rank that decided each pick.

The expected pattern, confirmed in the emitted table: on system codes
(tiny blocks) most picks are uncontested or fall through to original
order; on FP codes with large blocks the critical-path ranks do real
work, and the max-delay refinement (rank 2) earns its keep exactly
where multi-cycle operations dominate.
"""

from __future__ import annotations

import pytest

from repro.analysis.decisions import decision_histogram
from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.scheduling.list_scheduler import Decision, schedule_forward
from repro.scheduling.priority import winnowing
from benchmarks.conftest import record_row

TERMS = ("max_path_to_leaf", "max_delay_to_leaf", "max_delay_to_child")
PRIORITY = winnowing(*TERMS)


@pytest.mark.parametrize("name", ["grep", "linpack", "tomcatv", "lloops"])
def test_deciding_heuristics(benchmark, workloads, machine, name):
    blocks = [b for b in workloads[name] if b.size]

    def run():
        decisions: list[Decision] = []
        for block in blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag, require_est=False)
            schedule_forward(dag, machine, PRIORITY, decisions=decisions)
        return decisions

    decisions = benchmark.pedantic(run, rounds=1, iterations=1)
    hist = decision_histogram(decisions, TERMS)
    contested = sum(hist.values()) - hist["no choice"]
    record_row("deciding_heuristics",
               "Future work 2: which rank decides each pick (section 6 "
               "priority)", {
                   "benchmark": name,
                   "picks": sum(hist.values()),
                   "no choice": hist["no choice"],
                   "rank1 path": hist["max_path_to_leaf"],
                   "rank2 delay": hist["max_delay_to_leaf"],
                   "rank3 child": hist["max_delay_to_child"],
                   "orig order": hist["original order"],
                   "contested %": round(
                       100 * contested / max(1, sum(hist.values())), 1),
               })
    assert sum(hist.values()) == len(decisions)
