"""Design-choice ablations beyond the paper's tables.

* **Transitive-arc policy** (extends conclusion 3 / Figure 1 to whole
  workloads): schedule every block with (a) all arcs retained, (b) all
  transitive arcs removed, (c) removal that keeps timing-essential
  arcs.  Schedules from (b) are re-timed against the TRUE dependences;
  the mistimed cycles are the cost of the Landskov policy.
* **Heuristic-order ablation** for the section 6 priority: drop each
  of the three heuristics in turn and measure the schedule-quality
  change, supporting the paper's future-work question of "which
  heuristics outperform others" on which blocks.
* **Memory disambiguation policy**: strict serialization vs expression
  granularity vs storage classes -- arc count and schedule quality.
"""

from __future__ import annotations

import pytest

from repro.dag.builders import CompareAllBuilder, TableForwardBuilder
from repro.dag.transitive import remove_transitive_arcs
from repro.heuristics.passes import backward_pass
from repro.isa.memory import AliasPolicy
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate
from benchmarks.conftest import record_row

PRIORITY = winnowing("max_path_to_leaf", "max_delay_to_leaf",
                     "max_delay_to_child")


@pytest.fixture(scope="module")
def lloops_blocks(workloads):
    return [b for b in workloads["lloops"] if b.size >= 2][:100]


@pytest.mark.parametrize("policy", ["retain", "remove_all",
                                    "keep_essential"])
def test_transitive_arc_policy(benchmark, lloops_blocks, machine, policy):
    def run():
        believed = actual = 0
        for block in lloops_blocks:
            truth = TableForwardBuilder(machine).build(block).dag
            dag = TableForwardBuilder(machine).build(block).dag
            if policy == "remove_all":
                remove_transitive_arcs(dag)
            elif policy == "keep_essential":
                remove_transitive_arcs(dag, keep_timing_essential=True)
            backward_pass(dag)
            result = schedule_forward(dag, machine, PRIORITY)
            believed += result.makespan
            actual += simulate([truth.nodes[n.id] for n in result.order],
                               machine).makespan
        return believed, actual

    believed, actual = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("ablation_transitive",
               "Ablation: transitive-arc policy (lloops, true-delay "
               "re-timed)", {
                   "policy": policy,
                   "believed makespan": believed,
                   "actual makespan": actual,
                   "mistimed cycles": actual - believed,
               })
    if policy != "remove_all":
        # Retaining timing-essential arcs keeps the timing honest.
        assert actual == believed


@pytest.mark.parametrize("dropped", ["none", "max_path_to_leaf",
                                     "max_delay_to_leaf",
                                     "max_delay_to_child"])
def test_section6_heuristic_ablation(benchmark, lloops_blocks, machine,
                                     dropped):
    keys = [k for k in ("max_path_to_leaf", "max_delay_to_leaf",
                        "max_delay_to_child") if k != dropped]
    priority = winnowing(*keys)

    def run():
        total = 0
        for block in lloops_blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag)
            total += schedule_forward(dag, machine, priority).makespan
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("ablation_heuristics",
               "Ablation: section 6 priority with one heuristic dropped "
               "(lloops)", {
                   "dropped": dropped,
                   "total makespan": total,
               })


@pytest.mark.parametrize("variant", ["untimed", "timed"])
def test_backward_scheduler_clock_ablation(benchmark, lloops_blocks,
                                           machine, variant):
    """Extension ablation: Schlansker's backward pass with and without
    the reverse clock (the priority-only pass is blind to arc delays,
    which bench_table2 shows regressing on this machine)."""
    from repro.heuristics.passes import forward_pass
    from repro.scheduling.backward_timed import schedule_backward_timed
    from repro.scheduling.list_scheduler import schedule_backward
    from repro.scheduling.priority import weighted

    slack_priority = weighted(("slack", 10**8), ("lst", 1))
    scheduler_fn = (schedule_backward_timed if variant == "timed"
                    else schedule_backward)

    def run():
        total = 0
        for block in lloops_blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            forward_pass(dag)
            backward_pass(dag, require_est=False)
            total += scheduler_fn(dag, machine, slack_priority).makespan
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("ablation_backward_clock",
               "Extension: backward scheduling with/without the reverse "
               "clock (lloops)", {
                   "variant": variant,
                   "total makespan": total,
               })


@pytest.mark.parametrize("scheduler", ["list", "reservation"])
def test_reservation_vs_list_scheduler(benchmark, lloops_blocks, machine,
                                       scheduler):
    """Section 1's 'more refined form of scheduling': reservation
    tables vs the timing-heuristic list scheduler, on a machine with
    non-pipelined FP units."""
    from repro.scheduling.reservation_scheduler import (
        schedule_with_reservation,
    )

    def run():
        total = 0
        for block in lloops_blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag)
            if scheduler == "list":
                total += schedule_forward(dag, machine, PRIORITY).makespan
            else:
                total += schedule_with_reservation(
                    dag, machine, PRIORITY).makespan
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("ablation_reservation",
               "Ablation: list vs reservation-table scheduling (lloops, "
               "non-pipelined FP)", {
                   "scheduler": scheduler,
                   "total makespan": total,
               })


@pytest.mark.parametrize("policy", list(AliasPolicy),
                         ids=lambda p: p.value)
def test_memory_policy_ablation(benchmark, lloops_blocks, machine, policy):
    def run():
        arcs = makespan = 0
        for block in lloops_blocks:
            outcome = TableForwardBuilder(
                machine, alias_policy=policy).build(block)
            arcs += outcome.dag.n_arcs
            backward_pass(outcome.dag)
            makespan += schedule_forward(outcome.dag, machine,
                                         PRIORITY).makespan
        return arcs, makespan

    arcs, makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("ablation_memory",
               "Ablation: memory disambiguation policy (lloops)", {
                   "policy": policy.value,
                   "total arcs": arcs,
                   "total makespan": makespan,
               })
