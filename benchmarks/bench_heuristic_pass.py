"""Conclusion 4: level algorithm vs reverse walk.

"Level algorithms are no better for calculation of remaining static
heuristics than a reverse walk of a linked list of the instructions."
Both drivers are timed over the same pre-built DAGs; they must produce
identical annotations (asserted) and comparable times, with the level
algorithm paying extra for building its level lists.
"""

from __future__ import annotations

import time

import pytest

from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass, backward_pass_levels
from benchmarks.conftest import record_row


@pytest.fixture(scope="module")
def fpppp_dags(workloads, machine):
    return [TableForwardBuilder(machine).build(b).dag
            for b in workloads["fpppp"] if b.size]


@pytest.mark.parametrize("driver,label", [
    (backward_pass, "reverse walk"),
    (backward_pass_levels, "level algorithm"),
])
def test_heuristic_pass_driver(benchmark, fpppp_dags, driver, label):
    def run():
        for dag in fpppp_dags:
            driver(dag, require_est=False)

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=2, iterations=1)
    elapsed = time.perf_counter() - start
    record_row("heuristic_pass",
               "Conclusion 4: intermediate-pass drivers on fpppp", {
                   "driver": label,
                   "2-round seconds": round(elapsed, 3),
                   "blocks": len(fpppp_dags),
               })


def test_drivers_equivalent(benchmark, fpppp_dags, machine, workloads):
    a = benchmark.pedantic(
        lambda: TableForwardBuilder(machine).build(
            max(workloads["fpppp"], key=lambda b: b.size)).dag,
        rounds=1, iterations=1)
    b = TableForwardBuilder(machine).build(
        max(workloads["fpppp"], key=lambda b: b.size)).dag
    backward_pass(a, require_est=False)
    backward_pass_levels(b, require_est=False)
    for na, nb in zip(a.nodes, b.nodes):
        assert na.max_delay_to_leaf == nb.max_delay_to_leaf
        assert na.max_path_to_leaf == nb.max_path_to_leaf
