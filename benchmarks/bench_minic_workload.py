"""Compiler-output workloads: the six algorithms on mini-C code.

The Table 3 synthetic workloads match the paper's *statistics*; the
mini-C workload has real compiler-output *dataflow* (expression-tree
chains, redundant loads, conversion staging).  This bench runs all six
published algorithms over a batch of compiled programs and also
verifies semantic preservation via the architectural interpreter --
turning the paper's section 1 correctness requirement into a benched
assertion.
"""

from __future__ import annotations

import pytest

from repro.interp import execute, MachineState
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.workloads.minic_programs import minic_workload
from benchmarks.conftest import record_row


@pytest.fixture(scope="module")
def minic_blocks():
    return minic_workload(n_programs=30, seed=1991, n_statements=8,
                          double_fraction=0.6)


def _reference_states(blocks) -> list[tuple]:
    states = []
    for block in blocks:
        state = MachineState()
        state.write_int("%i6", 0x10000)
        states.append(execute(block.instructions, state).snapshot())
    return states


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS,
                         ids=lambda c: c.name.replace(" ", "_"))
def test_minic_workload(benchmark, machine, minic_blocks, algorithm_cls):
    references = _reference_states(minic_blocks)

    def run():
        total = original = 0
        for block, reference in zip(minic_blocks, references):
            result = algorithm_cls(machine).schedule_block(block)
            total += result.makespan
            original += result.original_timing.makespan
            state = MachineState()
            state.write_int("%i6", 0x10000)
            scheduled = execute([n.instr for n in result.order],
                                state).snapshot()
            assert scheduled == reference, "semantics violated"
        return total, original

    total, original = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row("minic_workload",
               "Compiler-output (mini-C) workload: schedule quality + "
               "semantic check", {
                   "algorithm": algorithm_cls.name,
                   "sched makespan": total,
                   "original": original,
                   "speedup": round(original / total, 3),
               })
