"""Future work 1: does optimal scheduling beat the heuristics on
small blocks?

The paper's planned extension: "determining if an optimal
branch-and-bound scheduler would benefit performance for small basic
blocks."  This bench runs the branch-and-bound scheduler against the
six published algorithms on small blocks (<= 10 instructions) of a
benchmark and reports how often each heuristic algorithm is already
optimal and the total cycles left on the table.

Blocks whose search exceeds the expansion budget (wide, flat DAGs have
factorial order spaces) are excluded from the comparison rather than
compared against an unproven bound; the emitted table reports how many
were proved.
"""

from __future__ import annotations

import pytest

from repro.dag.builders import TableForwardBuilder
from repro.heuristics.passes import backward_pass
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.scheduling.branch_and_bound import branch_and_bound_schedule
from benchmarks.conftest import record_row

MAX_SMALL_BLOCK = 10
MAX_EXPANSIONS = 300_000

_optimal: dict[int, int] = {}


@pytest.fixture(scope="module")
def small_blocks(workloads):
    return [b for b in workloads["lloops"]
            if 3 <= b.size <= MAX_SMALL_BLOCK][:80]


def test_optimal_baseline(benchmark, small_blocks, machine):
    def run():
        proved_count = 0
        for block in small_blocks:
            dag = TableForwardBuilder(machine).build(block).dag
            backward_pass(dag)
            result, proved = branch_and_bound_schedule(
                dag, machine, max_block_size=MAX_SMALL_BLOCK,
                max_expansions=MAX_EXPANSIONS)
            if proved:
                _optimal[block.index] = result.makespan
                proved_count += 1
        return proved_count

    proved_count = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(_optimal.values())
    record_row("branch_and_bound",
               "Future work 1: optimal vs heuristics (lloops blocks "
               f"<= {MAX_SMALL_BLOCK} insts)", {
                   "scheduler": "branch & bound (optimal)",
                   "total makespan": total,
                   "blocks optimal": proved_count,
                   "excess cycles": 0,
               })
    # The search must prove optimality for the large majority of
    # small blocks.
    assert proved_count >= 0.8 * len(small_blocks)


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS,
                         ids=lambda c: c.name.replace(" ", "_"))
def test_heuristic_vs_optimal(benchmark, small_blocks, machine,
                              algorithm_cls):
    if not _optimal:
        pytest.skip("optimal baseline did not run")
    proved_blocks = [b for b in small_blocks if b.index in _optimal]

    def run():
        total = 0
        hits = 0
        for block in proved_blocks:
            result = algorithm_cls(machine).schedule_block(block)
            total += result.makespan
            if result.makespan == _optimal[block.index]:
                hits += 1
        return total, hits

    total, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    optimal_total = sum(_optimal[b.index] for b in proved_blocks)
    record_row("branch_and_bound",
               "Future work 1: optimal vs heuristics (lloops blocks "
               f"<= {MAX_SMALL_BLOCK} insts)", {
                   "scheduler": algorithm_cls.name,
                   "total makespan": total,
                   "blocks optimal": hits,
                   "excess cycles": total - optimal_total,
               })
    assert total >= optimal_total
