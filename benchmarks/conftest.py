"""Shared benchmark fixtures: calibrated workloads, machines, and the
table collector that writes each regenerated paper table to
``benchmarks/results/``.

Scaling knobs (environment variables):

* ``REPRO_BENCH_SCALE`` -- scale factor for the eight ordinary
  benchmarks (default 1.0 = the paper's full Table 3 sizes; they are
  cheap).
* ``REPRO_FPPPP_SCALE`` -- scale factor for fpppp (default 0.25: the
  giant 11750-instruction block is kept full-size -- it carries the
  paper's story -- but the count of small blocks is reduced).  Set to
  1.0 to reproduce the full 25545-instruction benchmark.
"""

from __future__ import annotations

import os
from collections import defaultdict
from pathlib import Path

import pytest

from repro.analysis.report import render_rows
from repro.cfg import apply_window
from repro.machine import sparcstation2_like
from repro.workloads import generate_blocks, get_profile, scaled_profile
from repro.workloads.profiles import TABLE_ORDER

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FPPPP_SCALE = float(os.environ.get("REPRO_FPPPP_SCALE", "0.25"))

_RESULTS_DIR = Path(__file__).parent / "results"
_TABLES: dict[str, list[dict]] = defaultdict(list)
_TITLES: dict[str, str] = {}


def record_row(table: str, title: str, row: dict) -> None:
    """Collect one row of a regenerated table (written at session end)."""
    _TITLES[table] = title
    _TABLES[table].append(row)


def pytest_sessionfinish(session, exitstatus):
    if not _TABLES:
        return
    _RESULTS_DIR.mkdir(exist_ok=True)
    print("\n\n================ regenerated paper tables ================")
    for table in sorted(_TABLES):
        text = render_rows(_TABLES[table], _TITLES[table])
        (_RESULTS_DIR / f"{table}.txt").write_text(text + "\n")
        print(f"\n{text}")
    print(f"\n(also written to {_RESULTS_DIR}/)")


def _profile_for(name: str):
    if name == "fpppp":
        return (get_profile(name) if FPPPP_SCALE >= 1.0
                else scaled_profile(name, FPPPP_SCALE))
    if BENCH_SCALE >= 1.0:
        return get_profile(name)
    return scaled_profile(name, BENCH_SCALE)


@pytest.fixture(scope="session")
def machine():
    """The SPARCstation-2-flavoured measurement machine."""
    return sparcstation2_like()


@pytest.fixture(scope="session")
def workloads():
    """All nine benchmarks' basic blocks, generated once per session.

    The fpppp windowed variants (fpppp-1000/2000/4000) are derived by
    :func:`apply_window`, exactly as the paper derived them.
    """
    blocks = {name: generate_blocks(_profile_for(name))
              for name in TABLE_ORDER}
    for window in (1000, 2000, 4000):
        blocks[f"fpppp-{window}"] = apply_window(blocks["fpppp"], window)
    return blocks


#: Row order used by the Table 3/4/5 benchmarks.
TABLE3_ROWS = ("grep", "regex", "dfa", "cccp", "linpack", "lloops",
               "tomcatv", "nasa7", "fpppp-1000", "fpppp-2000",
               "fpppp-4000", "fpppp")
TABLE4_ROWS = ("grep", "regex", "dfa", "cccp", "linpack", "lloops",
               "tomcatv", "nasa7", "fpppp-1000")
TABLE5_ROWS = TABLE3_ROWS
