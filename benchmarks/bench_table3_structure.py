"""Table 3: structural data for benchmarks, independent of approach.

Regenerates the paper's Table 3 columns (#blocks, #insts, insts/block
max+avg, unique memory expressions/block max+avg) for all nine
benchmarks plus the three fpppp window variants, and benchmarks the
cost of the structural scan itself.

Paper values are embedded for side-by-side comparison in the emitted
table; exact block/instruction counts must match at full scale.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import table3_row
from benchmarks.conftest import (
    BENCH_SCALE,
    FPPPP_SCALE,
    TABLE3_ROWS,
    record_row,
)

#: Paper Table 3, for the emitted comparison table.
PAPER_TABLE3 = {
    "grep": (730, 1739, 34, 2.38, 5, 0.32),
    "regex": (873, 2417, 52, 2.77, 9, 0.31),
    "dfa": (1623, 4760, 45, 2.93, 13, 0.67),
    "cccp": (3480, 8831, 36, 2.54, 10, 0.35),
    "linpack": (390, 3391, 145, 8.69, 62, 2.58),
    "lloops": (263, 3753, 124, 14.27, 40, 4.37),
    "tomcatv": (112, 1928, 326, 17.21, 68, 5.24),
    "nasa7": (756, 10654, 284, 14.09, 60, 4.23),
    "fpppp-1000": (675, 25545, 1000, 37.84, 120, 5.92),
    "fpppp-2000": (668, 25545, 2000, 38.24, 161, 5.34),
    "fpppp-4000": (664, 25545, 4000, 38.47, 209, 5.02),
    "fpppp": (662, 25545, 11750, 38.59, 324, 4.76),
}


@pytest.mark.parametrize("name", TABLE3_ROWS)
def test_table3_structure(benchmark, workloads, name):
    blocks = workloads[name]
    row = benchmark.pedantic(lambda: table3_row(name, blocks),
                             rounds=1, iterations=1)
    paper = PAPER_TABLE3[name]
    record_row("table3", "Table 3: structural data (measured vs paper)", {
        "benchmark": name,
        "blocks": row["blocks"],
        "blocks(paper)": paper[0],
        "insts": row["insts"],
        "insts(paper)": paper[1],
        "bb max": row["insts/bb max"],
        "bb max(paper)": paper[2],
        "bb avg": row["insts/bb avg"],
        "bb avg(paper)": paper[3],
        "mem max": row["memexpr/bb max"],
        "mem max(paper)": paper[4],
        "mem avg": row["memexpr/bb avg"],
        "mem avg(paper)": paper[5],
    })

    full_scale = BENCH_SCALE >= 1.0 and (FPPPP_SCALE >= 1.0
                                         or not name.startswith("fpppp"))
    if full_scale:
        # Exact structural calibration at full scale.
        assert row["insts"] == paper[1]
        assert row["insts/bb max"] == paper[2]
        if not name.startswith("fpppp-"):
            assert row["blocks"] == paper[0]
