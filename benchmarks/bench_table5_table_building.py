"""Table 5: the two table-building approaches -- run times and
structural data.

Runs the section 6 pipeline with the forward and backward table
builders over all twelve benchmark rows (including full fpppp -- the
table-building methods "do not require the use of instruction
windows").  The paper's headline findings checked here:

* forward and backward table building are essentially equivalent
  (identical DAGs, near-identical work);
* arc density is far below the n**2 approach's (most transitive arcs
  omitted);
* cost grows roughly linearly with block size -- full fpppp is only a
  small factor more expensive than grep per instruction, where n**2
  blows up quadratically.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import table45_row
from repro.dag.builders import TableBackwardBuilder, TableForwardBuilder
from benchmarks.conftest import TABLE5_ROWS, record_row

#: Paper Table 5: fwd s, bwd s, children max/avg, arcs max/avg.
PAPER_TABLE5 = {
    "grep": (2.0, 2.0, 4, 0.52, 42, 1.23),
    "regex": (2.7, 2.7, 4, 0.53, 41, 1.46),
    "dfa": (4.5, 4.5, 10, 0.62, 65, 1.81),
    "cccp": (8.1, 8.0, 7, 0.52, 47, 1.31),
    "linpack": (3.4, 3.4, 17, 1.02, 258, 8.88),
    "lloops": (3.7, 3.7, 9, 1.07, 219, 15.29),
    "tomcatv": (2.3, 2.2, 9, 1.52, 744, 26.14),
    "nasa7": (9.3, 9.2, 26, 1.26, 572, 17.73),
    "fpppp-1000": (23.2, 23.1, 185, 2.33, 3098, 88.35),
    "fpppp-2000": (23.9, 23.6, 403, 2.43, 6345, 93.10),
    "fpppp-4000": (24.5, 24.5, 503, 2.53, 13059, 97.15),
    "fpppp": (26.5, 26.8, 503, 2.60, 37881, 100.27),
}

_rows_cache: dict[str, dict] = {}


@pytest.mark.parametrize("name", TABLE5_ROWS)
def test_table5_forward(benchmark, workloads, machine, name):
    blocks = workloads[name]
    row = benchmark.pedantic(
        lambda: table45_row(name, blocks, machine,
                            lambda: TableForwardBuilder(machine)),
        rounds=1, iterations=1)
    _rows_cache[name] = row
    assert row["comparisons"] == 0
    assert row["table probes"] > 0


@pytest.mark.parametrize("name", TABLE5_ROWS)
def test_table5_backward(benchmark, workloads, machine, name):
    blocks = workloads[name]
    bwd = benchmark.pedantic(
        lambda: table45_row(name, blocks, machine,
                            lambda: TableBackwardBuilder(machine)),
        rounds=1, iterations=1)
    fwd = _rows_cache.get(name)
    paper = PAPER_TABLE5[name]
    record_row("table5",
               "Table 5: table-building approaches (measured vs paper)", {
                   "benchmark": name,
                   "fwd (s)": fwd["run time (s)"] if fwd else "-",
                   "bwd (s)": bwd["run time (s)"],
                   "fwd/bwd(paper)": f"{paper[0]}/{paper[1]}",
                   "ch max": bwd["children max"],
                   "ch max(p)": paper[2],
                   "ch avg": bwd["children avg"],
                   "ch avg(p)": paper[3],
                   "arcs max": bwd["arcs/bb max"],
                   "arcs max(p)": paper[4],
                   "arcs avg": bwd["arcs/bb avg"],
                   "arcs avg(p)": paper[5],
               })
    if fwd is not None:
        # Paper finding: "the two table-building methods are
        # essentially equivalent even at large basic block sizes" --
        # they build identical DAGs here.
        assert fwd["children max"] == bwd["children max"]
        assert fwd["arcs/bb max"] == bwd["arcs/bb max"]
        assert fwd["makespan"] == bwd["makespan"]


def test_table5_shape(benchmark):
    """Arc-density ordering across benchmarks must match the paper's,
    and a single scale factor must roughly map measured onto paper."""
    benchmark(lambda: None)
    if len(_rows_cache) < len(TABLE5_ROWS):
        pytest.skip("table 5 benches did not all run")
    from repro.analysis.compare import log_ratio_spread, rank_correlation
    names = [n for n in TABLE5_ROWS if not n.startswith("fpppp")]
    measured = [_rows_cache[n]["arcs/bb avg"] for n in names]
    paper = [PAPER_TABLE5[n][5] for n in names]
    assert rank_correlation(measured, paper) > 0.85
    assert log_ratio_spread(measured, paper) < 0.4
