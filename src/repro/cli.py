"""Command-line interface: schedule assembly files from the shell.

Usage::

    python -m repro schedule kernel.s --algorithm warren --machine sparc
    python -m repro dag kernel.s --builder table-forward
    python -m repro stats kernel.s
    python -m repro verify kernel.s

Subcommands:

* ``schedule`` -- run one of the six published algorithms (or the
  plain section 6 pipeline) over every block and emit the reordered
  assembly, with a per-block cycle report on stderr-style comment
  lines.
* ``dag`` -- dump the dependence DAG of each block as text.
* ``stats`` -- print the Table 3 structural row for the file.
* ``verify`` -- schedule every block with every DAG construction
  algorithm and check each schedule against independently re-derived
  dependences (PASS/FAIL per block per builder; exit 1 on any FAIL).

Library errors (:class:`~repro.errors.ReproError`) are reported as a
one-line diagnostic with exit status 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis.report import render_rows
from repro.analysis.tables import table3_row
from repro.asm import parse_asm
from repro.cfg import (
    apply_window,
    partition_blocks,
    pin_delay_slot_occupants,
)
from repro.dag.builders import (
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.errors import ReproError
from repro.heuristics.passes import backward_pass
from repro.machine import (
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.pipeline import SECTION6_PRIORITY
from repro.scheduling.algorithms import (
    GibbonsMuchnick,
    Krishnamurthy,
    Schlansker,
    ShiehPapachristou,
    Tiemann,
    Warren,
)
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.timing import simulate
from repro.verify import verify_schedule

MACHINES = {
    "generic": generic_risc,
    "sparc": sparcstation2_like,
    "rs6000": rs6000_like,
    "superscalar2": superscalar2,
}

BUILDERS = {
    "n2": CompareAllBuilder,
    "landskov": LandskovBuilder,
    "table-forward": TableForwardBuilder,
    "table-backward": TableBackwardBuilder,
    "bitmap-backward": BitmapBackwardBuilder,
}

ALGORITHMS = {
    "gibbons-muchnick": GibbonsMuchnick,
    "krishnamurthy": Krishnamurthy,
    "schlansker": Schlansker,
    "shieh-papachristou": ShiehPapachristou,
    "tiemann": Tiemann,
    "warren": Warren,
}


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_schedule(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    machine = MACHINES[args.machine]()
    program = parse_asm(_read_source(args.file), args.file)
    # Pin delay-slot occupants so the emitted linear listing keeps the
    # same instruction in each branch's slot.
    blocks = pin_delay_slot_occupants(
        apply_window(partition_blocks(program), args.window))
    total = original_total = 0
    for block in blocks:
        if not block.size:
            continue
        if args.algorithm == "section6":
            outcome = TableForwardBuilder(machine).build(block)
            backward_pass(outcome.dag, require_est=False)
            result = schedule_forward(outcome.dag, machine,
                                      SECTION6_PRIORITY)
            order = result.order
            makespan = result.makespan
            original = simulate(list(outcome.dag.real_nodes()),
                                machine).makespan
        else:
            algorithm = ALGORITHMS[args.algorithm](machine)
            result = algorithm.schedule_block(block)
            order = result.order
            makespan = result.makespan
            original = result.original_timing.makespan
        total += makespan
        original_total += original
        out(f"! block {block.index}: {original} -> {makespan} cycles")
        for node in order:
            label = f"{node.instr.label}:\n" if node.instr.label else ""
            out(f"{label}\t{node.instr.render()}")
    out(f"! total: {original_total} -> {total} cycles "
        f"({original_total / max(1, total):.2f}x)")
    return 0


def _cmd_dag(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    machine = MACHINES[args.machine]()
    program = parse_asm(_read_source(args.file), args.file)
    for block in partition_blocks(program):
        if not block.size:
            continue
        outcome = BUILDERS[args.builder](machine).build(block)
        if args.dot:
            from repro.dag.export import to_dot
            out(to_dot(outcome.dag, name=f"block{block.index}",
                       highlight_transitive=True).rstrip("\n"))
            continue
        out(f"! block {block.index}: {block.size} instructions, "
            f"{outcome.dag.n_arcs} arcs")
        for node in outcome.dag.real_nodes():
            out(f"  {node.id:3d}: {node.instr.render()}")
            for arc in node.out_arcs:
                out(f"       -> {arc.child.id} "
                    f"[{arc.dep.value}, {arc.delay}] via {arc.resource}")
    return 0


def _cmd_stats(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    program = parse_asm(_read_source(args.file), args.file)
    blocks = apply_window(partition_blocks(program), args.window)
    out(render_rows([table3_row(args.file, blocks)]))
    return 0


def _cmd_verify(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    machine = MACHINES[args.machine]()
    program = parse_asm(_read_source(args.file), args.file)
    blocks = pin_delay_slot_occupants(
        apply_window(partition_blocks(program), args.window))
    builder_names = ([args.builder] if args.builder
                     else sorted(BUILDERS))
    n_checked = n_failed = 0
    for block in blocks:
        if not block.size:
            continue
        for name in builder_names:
            outcome = BUILDERS[name](machine).build(block)
            backward_pass(outcome.dag, require_est=False)
            result = schedule_forward(outcome.dag, machine,
                                      SECTION6_PRIORITY)
            report = verify_schedule(
                block, result.order, machine,
                claimed_issue_times=result.timing.issue_times,
                check_semantics=not args.no_semantics,
                approach=name)
            n_checked += 1
            if report.passed:
                out(f"block {block.index} [{name}]: PASS")
            else:
                n_failed += 1
                failed = ", ".join(c.name for c in report.failures)
                out(f"block {block.index} [{name}]: FAIL ({failed})")
                for check in report.failures:
                    out(f"  {check.name}: {check.detail}")
    out(f"! verified {n_checked} schedules: "
        f"{n_checked - n_failed} passed, {n_failed} failed")
    return 0 if n_failed == 0 else 1


def _cmd_minic(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    from repro.minic import compile_minic
    asm = compile_minic(_read_source(args.file))
    if not args.schedule:
        out(asm.rstrip("\n"))
        return 0
    machine = MACHINES[args.machine]()
    program = parse_asm(asm, args.file)
    for block in partition_blocks(program):
        if not block.size:
            continue
        outcome = TableForwardBuilder(machine).build(block)
        backward_pass(outcome.dag, require_est=False)
        result = schedule_forward(outcome.dag, machine, SECTION6_PRIORITY)
        original = simulate(list(outcome.dag.real_nodes()),
                            machine).makespan
        out(f"! block {block.index}: {original} -> "
            f"{result.makespan} cycles")
        for node in result.order:
            out(f"\t{node.instr.render()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAG-based basic-block instruction scheduling "
                    "(Smotherman et al., MICRO-24 1991 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="assembly file ('-' for stdin)")
    common.add_argument("--machine", choices=sorted(MACHINES),
                        default="generic", help="timing model")
    common.add_argument("--window", type=int, default=None,
                        help="maximum basic block size")

    schedule = sub.add_parser("schedule", parents=[common],
                              help="schedule each basic block")
    schedule.add_argument("--algorithm",
                          choices=sorted(ALGORITHMS) + ["section6"],
                          default="section6",
                          help="published algorithm, or the paper's "
                               "section 6 pipeline (default)")
    schedule.set_defaults(handler=_cmd_schedule)

    dag = sub.add_parser("dag", parents=[common],
                         help="dump dependence DAGs")
    dag.add_argument("--builder", choices=sorted(BUILDERS),
                     default="table-forward")
    dag.add_argument("--dot", action="store_true",
                     help="emit Graphviz DOT (transitive arcs in red)")
    dag.set_defaults(handler=_cmd_dag)

    stats = sub.add_parser("stats", parents=[common],
                           help="structural statistics (Table 3 row)")
    stats.set_defaults(handler=_cmd_stats)

    verify = sub.add_parser("verify", parents=[common],
                            help="verify every builder's schedules "
                                 "against independently re-derived "
                                 "dependences")
    verify.add_argument("--builder", choices=sorted(BUILDERS),
                        default=None,
                        help="check one builder only (default: all)")
    verify.add_argument("--no-semantics", action="store_true",
                        help="skip the interpreter-based semantic "
                             "equivalence check")
    verify.set_defaults(handler=_cmd_verify)

    minic = sub.add_parser("minic",
                           help="compile mini-C to assembly "
                                "(optionally scheduling it)")
    minic.add_argument("file", help="mini-C source file ('-' for stdin)")
    minic.add_argument("--machine", choices=sorted(MACHINES),
                       default="generic")
    minic.add_argument("--schedule", action="store_true",
                       help="schedule the compiled block and report "
                            "cycles")
    minic.set_defaults(handler=_cmd_minic)
    return parser


def main(argv: list[str] | None = None,
         out: Callable[[str], None] = print) -> int:
    """CLI entry point.

    Args:
        argv: argument vector (None = ``sys.argv[1:]``).
        out: line sink, injectable for tests.

    Returns:
        Process exit status.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except ReproError as exc:
        out(f"repro: error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
