"""Command-line interface: schedule assembly files from the shell.

Usage::

    python -m repro schedule kernel.s --algorithm warren --machine sparc
    python -m repro schedule big.s --journal run.jsonl --resume
    python -m repro schedule big.s --trace run.json --metrics run-metrics.json
    python -m repro report --journal run.jsonl --metrics run-metrics.json
    python -m repro dag kernel.s --builder table-forward
    python -m repro stats kernel.s
    python -m repro verify kernel.s
    python -m repro fuzz --seed 0 --iterations 100

Subcommands:

* ``schedule`` -- run one of the six published algorithms (or the
  plain section 6 pipeline) over every block and emit the reordered
  assembly, with a per-block cycle report on stderr-style comment
  lines.  The section 6 path runs on the resilient batch runner
  (:mod:`repro.runner`): ``--chain`` configures builder fallback,
  ``--block-timeout``/``--max-work`` arm the per-block watchdog, and
  ``--journal``/``--resume`` checkpoint the run block by block.
* ``dag`` -- dump the dependence DAG of each block as text.
* ``stats`` -- print the Table 3 structural row for the file.
* ``verify`` -- schedule every block with every DAG construction
  algorithm and check each schedule against independently re-derived
  dependences (PASS/FAIL per block per builder; exit 1 on any FAIL).
* ``fuzz`` -- differential fuzzing of the five builders on seeded
  random and mutated blocks; disagreements are minimized into
  reproducer files (exit 1 on any disagreement).
* ``chaos`` -- fault-injection soak of the supervised worker pool:
  kill/delay/corrupt workers at seeded rates and assert every healthy
  block's outcome is byte-identical to a clean serial run, poisoned
  blocks are quarantined with reproducers, and every block is
  accounted for (exit 1 on any violation).
* ``report`` -- render paper-style Tables 3/4/5 plus fallback, cache,
  resilience, and degradation summaries from a run journal and/or a
  metrics snapshot (see :mod:`repro.obs`).
* ``serve`` / ``loadtest`` -- the scheduling daemon and its seeded
  load generator; ``serve --wal-dir`` adds the crash-safe request WAL
  and ``serve --supervised`` the self-healing restart loop (see
  docs/durability.md).
* ``fsck`` -- scan journals, WALs, and snapshots for damage; classify
  torn tails vs mid-file corruption and repair what is safe (exit 0
  clean, 1 repairable, 2 unrepairable).

``schedule``, ``verify``, and ``bench`` accept ``--trace FILE`` and
``--metrics FILE``; both are observation-only and leave schedules,
journals, and stdout byte-identical to an uninstrumented run.

Library errors (:class:`~repro.errors.ReproError`) are reported as a
one-line diagnostic with exit status 2.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Callable

from repro.analysis.report import render_rows
from repro.analysis.tables import table3_row
from repro.asm import parse_asm
from repro.cfg import (
    apply_window,
    partition_blocks,
    pin_delay_slot_occupants,
)
from repro.dag.builders import (
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    PairwiseCache,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.errors import BatchInterrupted, ReproError
from repro.heuristics.passes import backward_pass
from repro.machine import (
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    load_journal_blocks,
    read_metrics,
    render_markdown,
    report_from,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import record_cache
from repro.pipeline import SECTION6_PRIORITY
from repro.runner import (
    DEFAULT_CHAIN,
    Budget,
    ChaosConfig,
    RetryPolicy,
    RunJournal,
    run_batch,
    run_chaos,
    run_fingerprint,
)
from repro.runner import fuzz as run_fuzz
from repro.scheduling.algorithms import (
    GibbonsMuchnick,
    Krishnamurthy,
    Schlansker,
    ShiehPapachristou,
    Tiemann,
    Warren,
)
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.timing import simulate
from repro.verify import verify_schedule

MACHINES = {
    "generic": generic_risc,
    "sparc": sparcstation2_like,
    "rs6000": rs6000_like,
    "superscalar2": superscalar2,
}

BUILDERS = {
    "n2": CompareAllBuilder,
    "landskov": LandskovBuilder,
    "table-forward": TableForwardBuilder,
    "table-backward": TableBackwardBuilder,
    "bitmap-backward": BitmapBackwardBuilder,
}

ALGORITHMS = {
    "gibbons-muchnick": GibbonsMuchnick,
    "krishnamurthy": Krishnamurthy,
    "schlansker": Schlansker,
    "shieh-papachristou": ShiehPapachristou,
    "tiemann": Tiemann,
    "warren": Warren,
}


def _obs_from_args(args: argparse.Namespace) -> tuple[
        Tracer | None, MetricsRegistry | None]:
    """Tracer/registry instances per the ``--trace``/``--metrics``
    flags (None when a flag is absent, so untraced runs pay nothing)."""
    tracer = Tracer() if getattr(args, "trace", None) else None
    registry = (MetricsRegistry()
                if getattr(args, "metrics", None) else None)
    return tracer, registry


def _write_obs(args: argparse.Namespace, tracer: Tracer | None,
               registry: MetricsRegistry | None) -> None:
    """Write the trace/metrics files, silently.

    No diagnostic line is printed: the observability contract is that
    ``--trace``/``--metrics`` leave stdout byte-identical to an
    uninstrumented run.
    """
    if tracer is not None:
        write_trace(tracer.entries, args.trace)
    if registry is not None:
        write_metrics(registry, args.metrics)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_program(source: str, args: argparse.Namespace,
                   out: Callable[[str], None]):
    """Parse a subcommand's input, honoring ``--lenient``.

    In lenient mode every skipped line is reported as a ``!`` comment
    diagnostic so the recovery is visible in the output.
    """
    lenient = getattr(args, "lenient", False)
    program = parse_asm(source, args.file, lenient=lenient)
    for skipped in program.skipped_lines:
        out(f"! skipped line {skipped.number}: {skipped.error} "
            f"[{skipped.text.strip()}]")
    return program


def _cmd_schedule(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    machine = MACHINES[args.machine]()
    source = _read_source(args.file)
    program = _parse_program(source, args, out)
    # Pin delay-slot occupants so the emitted linear listing keeps the
    # same instruction in each branch's slot.
    blocks = pin_delay_slot_occupants(
        apply_window(partition_blocks(program), args.window))
    tracer, registry = _obs_from_args(args)
    if args.algorithm == "section6":
        status = _schedule_resilient(args, source, machine, blocks, out,
                                     tracer=tracer, metrics=registry)
        _write_obs(args, tracer, registry)
        return status
    if args.journal or args.resume:
        raise ReproError(
            "--journal/--resume require the section 6 pipeline "
            "(--algorithm section6)")
    span_tracer = tracer if tracer is not None else None
    total = original_total = 0
    for block in blocks:
        if not block.size:
            continue
        algorithm = ALGORITHMS[args.algorithm](machine)
        if span_tracer is not None:
            with span_tracer.span("block", index=block.index,
                                  algorithm=args.algorithm,
                                  size=block.size):
                result = algorithm.schedule_block(block)
        else:
            result = algorithm.schedule_block(block)
        total += result.makespan
        original_total += result.original_timing.makespan
        out(f"! block {block.index}: {result.original_timing.makespan} "
            f"-> {result.makespan} cycles")
        for node in result.order:
            label = f"{node.instr.label}:\n" if node.instr.label else ""
            out(f"{label}\t{node.instr.render()}")
    out(f"! total: {original_total} -> {total} cycles "
        f"({original_total / max(1, total):.2f}x)")
    _write_obs(args, tracer, registry)
    return 0


def _schedule_resilient(args: argparse.Namespace, source: str, machine,
                        blocks, out: Callable[[str], None],
                        tracer: Tracer | None = None,
                        metrics: MetricsRegistry | None = None) -> int:
    """The section 6 path, on the resilient batch runner."""
    chain = (tuple(p.strip() for p in args.chain.split(",") if p.strip())
             if args.chain else DEFAULT_CHAIN)
    budget = None
    if args.block_timeout is not None or args.max_work is not None:
        budget = Budget(wall_clock=args.block_timeout,
                        max_work=args.max_work)
    journal = None
    if args.resume and not args.journal:
        raise ReproError("--resume requires --journal")
    if args.journal:
        # Everything outcome-determining goes in: the watchdog budgets
        # change which blocks degrade, so resuming under different
        # budgets is a different run and must be a typed mismatch.
        fingerprint = run_fingerprint(
            source, args.machine, chain, window=args.window,
            verify=bool(args.verify),
            lenient=bool(getattr(args, "lenient", False)),
            block_timeout=args.block_timeout,
            max_work=args.max_work)
        if args.resume and os.path.exists(args.journal):
            journal = RunJournal.open_resume(args.journal, fingerprint)
        else:
            journal = RunJournal.open_fresh(args.journal, fingerprint)
    blocks_by_index = {block.index: block for block in blocks}

    def emit(outcome) -> None:
        block = blocks_by_index[outcome.index]
        for failed in outcome.attempts[:-1]:
            out(f"! block {outcome.index} [{failed.builder}] "
                f"{failed.stage} failed: {failed.error}")
        note = " (degraded to original order)" if outcome.degraded else ""
        out(f"! block {outcome.index}: {outcome.original_makespan} -> "
            f"{outcome.makespan} cycles{note}")
        for position in outcome.order:
            instr = block.instructions[position]
            label = f"{instr.label}:\n" if instr.label else ""
            out(f"{label}\t{instr.render()}")

    jobs = getattr(args, "jobs", 1) or 1
    cache = None if getattr(args, "no_cache", False) else PairwiseCache()
    retry = None
    if getattr(args, "retries", None) is not None:
        retry = RetryPolicy(max_retries=args.retries)
    # SIGTERM gets the same graceful path as Ctrl-C: run_batch turns
    # the KeyboardInterrupt into a typed BatchInterrupted after the
    # pool is down and the journal is flushed.
    def to_interrupt(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, to_interrupt)
    except ValueError:  # not the main thread (embedded use)
        previous_sigterm = None
    try:
        result = run_batch(
            blocks, machine, chain=chain, budget=budget,
            verify=args.verify, journal=journal,
            on_block=emit, jobs=jobs, cache=cache,
            tracer=tracer, metrics=metrics,
            supervise=not getattr(args, "no_supervise", False),
            retry=retry,
            quarantine_dir=getattr(args, "quarantine_dir", None),
            mem_limit_mb=getattr(args, "worker_mem_mb", None),
            columnar=getattr(args, "columnar", False))
    except BatchInterrupted as exc:
        out(f"! interrupted: {exc}")
        return 130
    finally:
        if journal is not None:
            journal.close()
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    quarantined = [o for o in result.outcomes if o.quarantined]
    if quarantined:
        out(f"! quarantined {len(quarantined)} block(s): "
            + ", ".join(str(o.index) for o in quarantined))
    out(f"! total: {result.total_original_makespan} -> "
        f"{result.total_makespan} cycles "
        f"({result.total_original_makespan / max(1, result.total_makespan):.2f}x)")
    return 0


def _cmd_fuzz(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    result = run_fuzz(
        seed=args.seed, iterations=args.iterations,
        machine=MACHINES[args.machine](), out_dir=args.out,
        max_size=args.max_size, inject_fault=args.inject_fault)
    for failure in result.failures:
        out(f"FAIL {failure.case} [{failure.shape}] {failure.description}")
        out(f"  reproducer: {failure.reproducer} "
            f"({failure.original_size} -> {failure.minimized_size} "
            f"instructions)")
    out(f"! fuzz: seed {result.seed}, {result.iterations} iterations, "
        f"{result.n_blocks} blocks checked, "
        f"{len(result.failures)} disagreements")
    return 0 if result.passed else 1


def _cmd_chaos_serve(args: argparse.Namespace,
                     out: Callable[[str], None]) -> int:
    from repro.serve.chaosserve import (
        ServeChaosConfig,
        render_serve_chaos_report,
        run_serve_chaos,
    )
    tracer, registry = _obs_from_args(args)
    config = ServeChaosConfig(
        seed=args.seed,
        requests=3 if args.quick else args.requests,
        jobs=max(2, args.jobs),
        copies=4 if args.quick else args.copies,
        exit_rate=args.exit_rate,
        kill_rate=args.kill_rate,
        disconnect_rate=args.disconnect_rate,
        storm_rate=args.storm_rate,
        alloc_rate=args.alloc_rate,
        mem_limit_mb=args.worker_mem_mb)
    report = run_serve_chaos(config, metrics=registry)
    out(render_serve_chaos_report(report))
    _write_obs(args, tracer, registry)
    return 0 if report.ok else 1


def _cmd_chaos_storm(args: argparse.Namespace,
                     out: Callable[[str], None]) -> int:
    from repro.serve.chaosserve import (
        StormChaosConfig,
        render_storm_chaos_report,
        run_storm_chaos,
    )
    tracer, registry = _obs_from_args(args)
    config = StormChaosConfig(
        seed=args.seed,
        requests=16 if args.quick else 48,
        hog_mb=32 if args.quick else 48,
        cooldown_s=20.0 if args.quick else 30.0)
    report = run_storm_chaos(config, metrics=registry)
    out(render_storm_chaos_report(report))
    _write_obs(args, tracer, registry)
    return 0 if report.ok else 1


def _cmd_chaos_kill_daemon(args: argparse.Namespace,
                           out: Callable[[str], None]) -> int:
    from repro.serve.chaosserve import (
        KillDaemonConfig,
        render_kill_daemon_report,
        run_kill_daemon_chaos,
    )
    config = KillDaemonConfig(
        seed=args.seed,
        requests=3 if args.quick else args.requests,
        copies=2 if args.quick else args.copies,
        kills=1 if args.quick else args.kills,
        kill_interval_s=args.kill_interval)
    report = run_kill_daemon_chaos(config)
    out(render_kill_daemon_report(report))
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    if args.kill_daemon:
        if not args.serve:
            raise ReproError("--kill-daemon requires --serve")
        return _cmd_chaos_kill_daemon(args, out)
    if args.storm:
        if not args.serve:
            raise ReproError("--storm requires --serve")
        return _cmd_chaos_storm(args, out)
    if args.serve:
        return _cmd_chaos_serve(args, out)
    machine = MACHINES[args.machine]()
    copies = 1 if args.quick else args.copies
    poison = frozenset(range(args.poison))
    config = ChaosConfig(
        seed=args.seed, exit_rate=args.exit_rate,
        kill_rate=args.kill_rate, delay_rate=args.delay_rate,
        corrupt_rate=args.corrupt_rate, alloc_rate=args.alloc_rate,
        poison=poison)
    tracer, registry = _obs_from_args(args)
    report = run_chaos(
        machine, config, copies=copies, jobs=args.jobs,
        expect_quarantined=poison,
        quarantine_dir=args.quarantine_dir, metrics=registry,
        mem_limit_mb=args.worker_mem_mb)
    out(f"! chaos: seed {args.seed}, {report.n_blocks} blocks, "
        f"{args.jobs} workers, rates exit={args.exit_rate} "
        f"kill={args.kill_rate} delay={args.delay_rate} "
        f"corrupt={args.corrupt_rate}")
    kinds = ", ".join(f"{kind}: {count}" for kind, count
                      in report.crash_kinds.items()) or "none"
    out(f"! crashes: {report.crashes} ({kinds}), "
        f"restarts: {report.restarts}, retries: {report.retries}")
    out(f"! accounting: {report.n_scheduled} scheduled + "
        f"{report.n_degraded} degraded + "
        f"{report.n_quarantined} quarantined = "
        f"{report.n_scheduled + report.n_degraded + report.n_quarantined}"
        f" of {report.n_blocks}")
    if report.quarantined_indices:
        out(f"! quarantined blocks: "
            + ", ".join(str(i) for i in report.quarantined_indices))
    for mismatch in report.mismatches:
        out(f"! MISMATCH: {mismatch}")
    out(f"! healthy blocks identical to clean serial run: "
        f"{not report.mismatches}")
    _write_obs(args, tracer, registry)
    return 0 if report.ok else 1


def _cmd_serve_supervised(args: argparse.Namespace,
                          out: Callable[[str], None]) -> int:
    """``repro serve --supervised``: the self-healing parent.

    Re-execs the daemon (this interpreter, same flags minus the
    supervision ones) as a child process and restarts it with backoff
    when it crashes; the WAL/snapshot directory is preserved across
    generations, so every restart recovers acknowledged work.
    """
    from repro.errors import SupervisorError
    from repro.serve.supervise import (
        DaemonSupervisor,
        SupervisorPolicy,
        spawn_serve_child,
    )
    raw = list(getattr(args, "_argv", None) or [])
    child = raw[raw.index("serve") + 1:] if "serve" in raw else raw
    stripped: list[str] = []
    skip_value = False
    for token in child:
        if skip_value:
            skip_value = False
            continue
        if token == "--supervised":
            continue
        if token in ("--max-restarts", "--restart-window"):
            skip_value = True
            continue
        if token.startswith(("--max-restarts=", "--restart-window=")):
            continue
        stripped.append(token)
    pid_path = (os.path.join(args.wal_dir, "daemon.pid")
                if args.wal_dir else None)
    supervisor = DaemonSupervisor(
        spawn=lambda: spawn_serve_child(stripped),
        policy=SupervisorPolicy(max_restarts=args.max_restarts,
                                window_s=args.restart_window),
        pid_path=pid_path,
        log=out)
    supervisor.install_signal_handlers()
    out(f"! serve: supervised; restart limit {args.max_restarts} "
        f"per {args.restart_window:g}s"
        + (f", wal {args.wal_dir}" if args.wal_dir else ""))
    try:
        code = supervisor.run()
    except SupervisorError as exc:
        out(f"! serve: {exc}")
        return 1
    out(f"! serve: supervisor done after {supervisor.generation} "
        f"generation(s), final exit {code}")
    return code


def _cmd_serve(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    import asyncio

    from repro.serve.server import ReproServer, ServeConfig
    if args.supervised:
        return _cmd_serve_supervised(args, out)
    from repro.serve.overload import OverloadConfig
    tracer, registry = _obs_from_args(args)
    chain = (tuple(p.strip() for p in args.chain.split(",") if p.strip())
             if args.chain else None)
    overload = None
    if not args.no_overload:
        overload = OverloadConfig(
            rss_budget_mb=args.rss_budget_mb,
            priority_tenants=tuple(args.priority_tenant or ()))
    config = ServeConfig(
        address=args.address,
        workers=args.workers,
        max_queued=args.max_queued,
        jobs=args.jobs,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_max_blocks=args.tenant_max_blocks,
        max_request_blocks=args.max_request_blocks,
        block_wall_s=args.block_wall,
        default_deadline_s=args.default_deadline,
        drain_grace_s=args.drain_grace,
        drain_force_s=args.drain_force,
        cache_entries=args.cache_entries,
        chain=chain,
        breaker=args.breaker,
        mem_limit_mb=args.worker_mem_mb,
        quarantine_dir=args.quarantine_dir,
        wal_dir=args.wal_dir,
        columnar=args.columnar,
        telemetry=args.telemetry,
        overload=overload)
    server = ReproServer(config, metrics=registry, tracer=tracer)
    out(f"! serve: listening on {args.address} "
        f"({args.workers} workers, queue {args.max_queued}, "
        f"jobs {args.jobs})")
    if args.telemetry:
        out(f"! serve: telemetry endpoint on {args.telemetry} "
            f"(/metrics, /healthz)")
    # Cover the startup window before the event loop installs its own
    # handlers: a SIGTERM that lands while the WAL is still replaying
    # must schedule a drain, not kill the process mid-recovery.
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig,
                          lambda signum, frame: server.request_drain())
        except ValueError:  # not the main thread (embedded use)
            break
    # Blocks until SIGTERM/SIGINT, then drains gracefully: admission
    # closes, in-flight requests finish or shed, exit status 0.  A
    # request wedged past the --drain-force backstop is abandoned and
    # the daemon exits 1 instead of hanging.
    asyncio.run(server.run())
    _write_obs(args, tracer, registry)
    if server.drain_abandoned:
        out(f"! serve: drain abandoned "
            f"{len(server.drain_abandoned)} wedged request(s): "
            f"{', '.join(server.drain_abandoned)}")
        return 1
    out("! serve: drained, all requests accounted")
    return 0


def _cmd_loadtest(args: argparse.Namespace,
                  out: Callable[[str], None]) -> int:
    from repro.serve.loadtest import (
        LoadtestConfig,
        render_loadtest_report,
        run_loadtest,
    )
    tracer, registry = _obs_from_args(args)
    config = LoadtestConfig(
        address=args.address,
        seed=args.seed,
        requests=8 if args.quick else args.requests,
        concurrency=4 if args.quick else args.concurrency,
        tenants=args.tenants,
        copies_max=args.copies_max,
        deadline_s=args.deadline,
        deadline_fraction=args.deadline_fraction,
        machine=args.machine,
        idempotency_retry=args.idempotency_retry,
        storm=args.storm)
    report = run_loadtest(config, metrics=registry)
    out(render_loadtest_report(report))
    _write_obs(args, tracer, registry)
    # Silent loss anywhere voids the report: every request must have
    # reached a typed terminal frame.  With --idempotency-retry, a
    # single re-executed duplicate key also fails the run -- the
    # exactly-once result contract admits no partial credit.  With
    # --storm, a ladder that never came back to L0 is a failure too.
    accounted = (report.completed + report.rejected + report.errored
                 == report.sent)
    recovered = (report.storm is None
                 or bool(report.storm.get("recovered")))
    return (0 if accounted and report.errored == 0
            and report.duplicate_results == 0 and recovered else 1)


def _cmd_fsck(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    """``repro fsck``: scan, classify, and optionally repair.

    Exit status: 0 when everything is clean, 1 when damage was found
    but every damaged file is repairable (or was repaired with
    ``--repair``), 2 (via :class:`~repro.errors.ReproError`) when any
    file carries unrepairable damage.
    """
    from repro.runner.fsck import fsck_paths, render_fsck_report
    findings = fsck_paths(args.paths, repair=args.repair)
    if not findings:
        raise ReproError(
            "fsck found no journal, WAL, or snapshot files under: "
            + ", ".join(args.paths))
    out(render_fsck_report(findings))
    corrupt = [f for f in findings if f.status == "corrupt"]
    if corrupt:
        raise ReproError(
            f"fsck: {len(corrupt)} file(s) carry unrepairable damage "
            f"(mid-file corruption is never safe to truncate away): "
            + ", ".join(f.path for f in corrupt))
    if all(f.status == "clean" for f in findings):
        return 0
    return 1


def _cmd_dag(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    machine = MACHINES[args.machine]()
    program = _parse_program(_read_source(args.file), args, out)
    for block in partition_blocks(program):
        if not block.size:
            continue
        outcome = BUILDERS[args.builder](machine).build(block)
        if args.dot:
            from repro.dag.export import to_dot
            out(to_dot(outcome.dag, name=f"block{block.index}",
                       highlight_transitive=True).rstrip("\n"))
            continue
        out(f"! block {block.index}: {block.size} instructions, "
            f"{outcome.dag.n_arcs} arcs")
        for node in outcome.dag.real_nodes():
            out(f"  {node.id:3d}: {node.instr.render()}")
            for arc in node.out_arcs:
                out(f"       -> {arc.child.id} "
                    f"[{arc.dep.value}, {arc.delay}] via {arc.resource}")
    return 0


def _cmd_stats(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    program = _parse_program(_read_source(args.file), args, out)
    blocks = apply_window(partition_blocks(program), args.window)
    out(render_rows([table3_row(args.file, blocks)]))
    return 0


def _cmd_verify(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    machine = MACHINES[args.machine]()
    program = _parse_program(_read_source(args.file), args, out)
    blocks = pin_delay_slot_occupants(
        apply_window(partition_blocks(program), args.window))
    builder_names = ([args.builder] if args.builder
                     else sorted(BUILDERS))
    # One shared dependence cache across builders x blocks: each
    # builder still records its own arc recipe, but the pairwise
    # preparation and the verifier's reference builds are reused.
    cache = None if getattr(args, "no_cache", False) else PairwiseCache()
    tracer, registry = _obs_from_args(args)
    n_checked = n_failed = 0
    for block in blocks:
        if not block.size:
            continue
        for name in builder_names:
            outcome = BUILDERS[name](machine, cache=cache).build(block)
            backward_pass(outcome.dag, require_est=False)
            result = schedule_forward(outcome.dag, machine,
                                      SECTION6_PRIORITY)
            report = verify_schedule(
                block, result.order, machine,
                claimed_issue_times=result.timing.issue_times,
                check_semantics=not args.no_semantics,
                approach=name, cache=cache, tracer=tracer,
                metrics=registry)
            n_checked += 1
            if report.passed:
                out(f"block {block.index} [{name}]: PASS")
            else:
                n_failed += 1
                failed = ", ".join(c.name for c in report.failures)
                out(f"block {block.index} [{name}]: FAIL ({failed})")
                for check in report.failures:
                    out(f"  {check.name}: {check.detail}")
    out(f"! verified {n_checked} schedules: "
        f"{n_checked - n_failed} passed, {n_failed} failed")
    if registry is not None and cache is not None:
        info = cache.info()
        record_cache(registry, info["hits"], info["misses"],
                     entries=info["entries"], recipes=info["recipes"])
    _write_obs(args, tracer, registry)
    return 0 if n_failed == 0 else 1


def _cmd_bench(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    from repro.runner.bench import (
        DEFAULT_BENCH_PATH,
        compare_bench,
        load_bench,
        render_compare,
        run_bench,
        write_bench,
    )
    out_path = args.out or DEFAULT_BENCH_PATH
    compare = args.compare or []
    if len(compare) > 2:
        raise ReproError(
            "--compare takes OLD.json or OLD.json NEW.json")
    if len(compare) == 2:
        # Pure gate mode: compare two existing documents, run nothing.
        result = compare_bench(load_bench(compare[0]),
                               load_bench(compare[1]),
                               wall_ratio=args.wall_ratio)
        out(render_compare(result, compare[0], compare[1],
                           args.wall_ratio))
        return 0 if result["ok"] else 1
    machine = MACHINES[args.machine]()
    tracer, registry = _obs_from_args(args)
    doc = run_bench(machine, machine_name=args.machine,
                    copies=args.copies, repeats=args.repeats,
                    jobs=args.jobs, quick=args.quick,
                    columnar=args.columnar,
                    tracer=tracer, metrics=registry)
    write_bench(doc, out_path)
    _write_obs(args, tracer, registry)
    batch = doc["batch"]
    out(f"! bench: {doc['workload']['n_blocks']} blocks, "
        f"{doc['workload']['n_instructions']} instructions "
        f"({'quick' if doc['quick'] else 'full'})")
    parallel = (f", parallel {batch['parallel_s']:.3f}s"
                if batch["parallel_s"] is not None else "")
    out(f"! batch: baseline {batch['baseline_s']:.3f}s, "
        f"cached {batch['cached_s']:.3f}s{parallel} -> "
        f"{batch['reduction_fraction'] * 100:.1f}% reduction")
    out(f"! schedules identical across variants: "
        f"{batch['schedules_identical']}")
    out(f"! wrote {out_path}")
    if compare:
        result = compare_bench(load_bench(compare[0]), doc,
                               wall_ratio=args.wall_ratio)
        out(render_compare(result, compare[0], out_path,
                           args.wall_ratio))
        return 0 if result["ok"] else 1
    return 0


def _cmd_profile(args: argparse.Namespace,
                 out: Callable[[str], None]) -> int:
    from repro.obs.profile import profile_workload, write_profile
    builders = (tuple(b.strip() for b in args.builders.split(",")
                      if b.strip()) if args.builders else None)
    copies = 2 if args.quick else args.copies
    profile = profile_workload(args.machine, copies=copies,
                               builders=builders, jobs=args.jobs)
    write_profile(profile, args.out, args.markdown)
    out(f"! profile: machine {args.machine}, {copies} copies/kernel, "
        f"{profile.total()} work units over {len(profile.stacks)} "
        f"stacks (deterministic; identical across runs and --jobs)")
    heaviest = sorted(profile.stacks.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:5]
    for stack, units in heaviest:
        out(f"!   {';'.join(stack)} {units}")
    out(f"! wrote {args.out}"
        + (f" and {args.markdown}" if args.markdown else ""))
    return 0


def _cmd_top(args: argparse.Namespace,
             out: Callable[[str], None]) -> int:
    from repro.serve.top import poll_ops, render_top, run_top
    if args.once:
        out(render_top(poll_ops(args.address), args.address))
        return 0
    run_top(args.address, interval_s=args.interval)
    return 0


def _cmd_report(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    blocks = (load_journal_blocks(args.journal)
              if args.journal else None)
    snapshot = None
    if args.metrics:
        try:
            snapshot = read_metrics(args.metrics)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"cannot read metrics snapshot {args.metrics!r}: {exc}")
    doc = report_from(blocks, snapshot)
    if args.format in ("markdown", "both"):
        out(render_markdown(doc).rstrip("\n"))
    if args.format in ("json", "both"):
        out(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _cmd_minic(args: argparse.Namespace, out: Callable[[str], None]) -> int:
    from repro.minic import compile_minic
    asm = compile_minic(_read_source(args.file))
    if not args.schedule:
        out(asm.rstrip("\n"))
        return 0
    machine = MACHINES[args.machine]()
    program = parse_asm(asm, args.file)
    for block in partition_blocks(program):
        if not block.size:
            continue
        outcome = TableForwardBuilder(machine).build(block)
        backward_pass(outcome.dag, require_est=False)
        result = schedule_forward(outcome.dag, machine, SECTION6_PRIORITY)
        original = simulate(list(outcome.dag.real_nodes()),
                            machine).makespan
        out(f"! block {block.index}: {original} -> "
            f"{result.makespan} cycles")
        for node in result.order:
            out(f"\t{node.instr.render()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAG-based basic-block instruction scheduling "
                    "(Smotherman et al., MICRO-24 1991 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="assembly file ('-' for stdin)")
    common.add_argument("--machine", choices=sorted(MACHINES),
                        default="generic", help="timing model")
    common.add_argument("--window", type=int, default=None,
                        help="maximum basic block size")
    common.add_argument("--lenient", action="store_true",
                        help="skip unparseable lines (reported as "
                             "'! skipped' diagnostics) instead of "
                             "aborting")

    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument("--trace", default=None, metavar="FILE",
                           help="write a structured trace of the run "
                                "(.jsonl = raw entries; any other "
                                "suffix = Chrome trace-event format "
                                "for chrome://tracing).  Never changes "
                                "schedules, journals, or stdout")
    obs_flags.add_argument("--metrics", default=None, metavar="FILE",
                           help="write a metrics snapshot (JSON: work "
                                "counters, block structure, fallback "
                                "and cache accounting).  Never changes "
                                "schedules, journals, or stdout")

    schedule = sub.add_parser("schedule", parents=[common, obs_flags],
                              help="schedule each basic block")
    schedule.add_argument("--algorithm",
                          choices=sorted(ALGORITHMS) + ["section6"],
                          default="section6",
                          help="published algorithm, or the paper's "
                               "section 6 pipeline (default)")
    schedule.add_argument("--chain", default=None, metavar="B1,B2,...",
                          help="builder fallback chain for the section 6 "
                               f"pipeline (default: "
                               f"{','.join(DEFAULT_CHAIN)})")
    schedule.add_argument("--block-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock watchdog per block attempt")
    schedule.add_argument("--max-work", type=int, default=None,
                          metavar="UNITS",
                          help="construction work budget per block "
                               "attempt (comparisons + table probes + "
                               "alias checks + bitmap ops)")
    schedule.add_argument("--verify", action="store_true",
                          help="independently verify every accepted "
                               "schedule (failures fall back through "
                               "the chain)")
    schedule.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for the section 6 "
                               "pipeline (outcomes and journal stay "
                               "identical to --jobs 1)")
    schedule.add_argument("--no-supervise", action="store_true",
                          help="use the legacy unsupervised process "
                               "pool with --jobs N (a worker death "
                               "then aborts the batch instead of "
                               "retrying/quarantining the block)")
    schedule.add_argument("--retries", type=int, default=None,
                          metavar="N",
                          help="crash retries per block before "
                               "quarantine (supervised pool; "
                               "default 3)")
    schedule.add_argument("--quarantine-dir", default=None,
                          metavar="DIR",
                          help="write a minimized reproducer .s file "
                               "here for every quarantined block")
    schedule.add_argument("--worker-mem-mb", type=int, default=None,
                          metavar="MB",
                          help="per-worker address-space ceiling "
                               "(RLIMIT_AS) with --jobs N; a worker "
                               "that exceeds it dies as an attributed "
                               "'oom' crash and its block is retried "
                               "on a fresh worker")
    schedule.add_argument("--no-cache", action="store_true",
                          help="disable the pairwise-dependence cache "
                               "(schedules are identical either way; "
                               "this exists for timing comparisons)")
    schedule.add_argument("--columnar", action="store_true",
                          help="structure-of-arrays fast path (numpy): "
                               "columnar table-forward builder and "
                               "vectorized heuristic passes; "
                               "schedules, journals, and work "
                               "counters are byte-identical")
    schedule.add_argument("--journal", default=None, metavar="PATH",
                          help="write per-block outcomes to a JSONL "
                               "journal as the run progresses")
    schedule.add_argument("--resume", action="store_true",
                          help="replay completed blocks from --journal "
                               "and continue from the first missing "
                               "one (starts fresh if the journal does "
                               "not exist)")
    schedule.set_defaults(handler=_cmd_schedule)

    dag = sub.add_parser("dag", parents=[common],
                         help="dump dependence DAGs")
    dag.add_argument("--builder", choices=sorted(BUILDERS),
                     default="table-forward")
    dag.add_argument("--dot", action="store_true",
                     help="emit Graphviz DOT (transitive arcs in red)")
    dag.set_defaults(handler=_cmd_dag)

    stats = sub.add_parser("stats", parents=[common],
                           help="structural statistics (Table 3 row)")
    stats.set_defaults(handler=_cmd_stats)

    verify = sub.add_parser("verify", parents=[common, obs_flags],
                            help="verify every builder's schedules "
                                 "against independently re-derived "
                                 "dependences")
    verify.add_argument("--builder", choices=sorted(BUILDERS),
                        default=None,
                        help="check one builder only (default: all)")
    verify.add_argument("--no-semantics", action="store_true",
                        help="skip the interpreter-based semantic "
                             "equivalence check")
    verify.add_argument("--no-cache", action="store_true",
                        help="disable the shared dependence cache")
    verify.set_defaults(handler=_cmd_verify)

    bench = sub.add_parser("bench", parents=[obs_flags],
                           help="benchmark builders, heuristic passes, "
                                "and the cached/parallel batch path "
                                "(writes a JSON report)")
    bench.add_argument("--machine", choices=sorted(MACHINES),
                       default="sparc", help="timing model")
    bench.add_argument("--copies", type=int, default=32,
                       help="straight-line body repetitions per kernel")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing runs per measurement (minimum "
                            "is reported)")
    bench.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="workers for the parallel batch variant "
                            "(1 skips it)")
    bench.add_argument("--quick", action="store_true",
                       help="small workload and fewer repeats "
                            "(CI smoke mode)")
    bench.add_argument("--columnar", action="store_true",
                       help="also run the batch comparison on the "
                            "columnar fast path and gate on schedule "
                            "identity (numpy required)")
    bench.add_argument("--out", "--out-json", dest="out", default=None,
                       metavar="PATH",
                       help="output document path (default: "
                            "BENCH_v<schema>.json for the current "
                            "bench schema version)")
    bench.add_argument("--compare", nargs="+", default=None,
                       metavar="JSON",
                       help="regression gate: with one path, run the "
                            "bench and compare the fresh document "
                            "against it; with two paths, compare the "
                            "existing documents without running. "
                            "Deterministic counters must match "
                            "exactly; wall clocks gate at "
                            "--wall-ratio. Exits 1 on violations.")
    bench.add_argument("--wall-ratio", type=float, default=2.0,
                       metavar="R",
                       help="max allowed NEW/OLD wall-clock ratio "
                            "for --compare (default 2.0)")
    bench.set_defaults(handler=_cmd_bench)

    profile = sub.add_parser("profile",
                             help="deterministic work profile: "
                                  "attribute builder work counters to "
                                  "a workload x builder x phase call "
                                  "tree (collapsed-stack + Markdown)")
    profile.add_argument("--machine", choices=sorted(MACHINES),
                         default="generic", help="timing model")
    profile.add_argument("--copies", type=int, default=8,
                         help="straight-line body repetitions per "
                              "kernel")
    profile.add_argument("--quick", action="store_true",
                         help="2 copies per kernel (CI smoke mode)")
    profile.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="profile blocks in N processes (the "
                              "profile is byte-identical for any N)")
    profile.add_argument("--builders", default=None, metavar="A,B",
                         help="comma-separated builder subset "
                              "(default: all registered builders)")
    profile.add_argument("--out", default="profile.collapsed",
                         metavar="PATH",
                         help="collapsed-stack output path (feed to "
                              "flamegraph.pl / inferno / speedscope)")
    profile.add_argument("--markdown", default=None, metavar="PATH",
                         help="also write a 'where the work goes' "
                              "Markdown table")
    profile.set_defaults(handler=_cmd_profile)

    report = sub.add_parser("report",
                            help="render paper-style Tables 3/4/5 and "
                                 "fallback/cache summaries from a run "
                                 "journal and/or metrics snapshot")
    report.add_argument("--journal", default=None, metavar="PATH",
                        help="run journal written by "
                             "'schedule --journal'")
    report.add_argument("--metrics", default=None, metavar="PATH",
                        help="metrics snapshot written by --metrics")
    report.add_argument("--format",
                        choices=("markdown", "json", "both"),
                        default="markdown",
                        help="output rendering (default: markdown)")
    report.set_defaults(handler=_cmd_report)

    minic = sub.add_parser("minic",
                           help="compile mini-C to assembly "
                                "(optionally scheduling it)")
    minic.add_argument("file", help="mini-C source file ('-' for stdin)")
    minic.add_argument("--machine", choices=sorted(MACHINES),
                       default="generic")
    minic.add_argument("--schedule", action="store_true",
                       help="schedule the compiled block and report "
                            "cycles")
    minic.set_defaults(handler=_cmd_minic)

    fuzz = sub.add_parser("fuzz",
                          help="differential fuzzing of the DAG "
                               "builders (seeded, deterministic)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (fixes the whole run)")
    fuzz.add_argument("--iterations", type=int, default=100,
                      help="generated cases")
    fuzz.add_argument("--machine", choices=sorted(MACHINES),
                      default="generic", help="timing model")
    fuzz.add_argument("--out", default="fuzz-failures", metavar="DIR",
                      help="directory for minimized reproducer files")
    fuzz.add_argument("--max-size", type=int, default=24,
                      help="instruction cap for generated blocks")
    fuzz.add_argument("--inject-fault", action="store_true",
                      help="add a deliberately broken builder to the "
                           "differential set (self-test: must be "
                           "detected)")
    fuzz.set_defaults(handler=_cmd_fuzz)

    chaos = sub.add_parser("chaos", parents=[obs_flags],
                           help="fault-injection soak of the "
                                "supervised pool: crash/delay/corrupt "
                                "workers at seeded rates and assert "
                                "healthy blocks match a clean serial "
                                "run")
    chaos.add_argument("--seed", type=int, default=0,
                       help="injection seed (fixes every fault)")
    chaos.add_argument("--machine", choices=sorted(MACHINES),
                       default="generic", help="timing model")
    chaos.add_argument("--copies", type=int, default=4,
                       help="bench-workload size multiplier")
    chaos.add_argument("--jobs", type=int, default=4, metavar="N",
                       help="supervised workers (>= 2)")
    chaos.add_argument("--exit-rate", type=float, default=0.1,
                       help="probability a dispatch dies via os._exit")
    chaos.add_argument("--kill-rate", type=float, default=0.1,
                       help="probability a dispatch dies via SIGKILL")
    chaos.add_argument("--delay-rate", type=float, default=0.05,
                       help="probability a dispatch sleeps first")
    chaos.add_argument("--corrupt-rate", type=float, default=0.05,
                       help="probability a task payload is corrupted")
    chaos.add_argument("--poison", type=int, default=1, metavar="N",
                       help="blocks that crash on every attempt "
                            "(must end up quarantined; 0 disables)")
    chaos.add_argument("--quarantine-dir", default="chaos-quarantine",
                       metavar="DIR",
                       help="directory for quarantine reproducers")
    chaos.add_argument("--quick", action="store_true",
                       help="small workload (CI smoke mode)")
    chaos.add_argument("--alloc-rate", type=float, default=0.0,
                       help="probability a dispatch allocates a "
                            "memory burst first (with --worker-mem-mb "
                            "this exercises attributed OOM crashes)")
    chaos.add_argument("--worker-mem-mb", type=int, default=None,
                       metavar="MB",
                       help="per-worker address-space ceiling "
                            "(RLIMIT_AS); allocation bursts above it "
                            "die as attributed 'oom' crashes")
    chaos.add_argument("--serve", action="store_true",
                       help="chaos the serve daemon instead of a "
                            "batch: worker crashes + client "
                            "disconnects + deadline storms against a "
                            "live server, asserting zero lost and "
                            "zero double-scheduled blocks")
    chaos.add_argument("--requests", type=int, default=6,
                       help="(--serve) schedule requests to send")
    chaos.add_argument("--disconnect-rate", type=float, default=0.25,
                       help="(--serve) probability a client hangs up "
                            "mid-stream")
    chaos.add_argument("--storm-rate", type=float, default=0.25,
                       help="(--serve) probability a request carries "
                            "a too-small deadline")
    chaos.add_argument("--storm", action="store_true",
                       help="(--serve) overload storm: flood a tiny "
                            "daemon with mixed-priority traffic while "
                            "an in-process memory hog inflates its "
                            "RSS; asserts the daemon survives, block "
                            "accounting stays exact, priority "
                            "tenants' error budget holds, and the "
                            "degradation ladder returns to L0")
    chaos.add_argument("--kill-daemon", action="store_true",
                       help="(--serve) SIGKILL the daemon itself at "
                            "seeded instants under a real supervisor; "
                            "the WAL audit must show zero acknowledged "
                            "requests lost and zero double-scheduled "
                            "blocks across restarts")
    chaos.add_argument("--kills", type=int, default=2,
                       help="(--kill-daemon) SIGKILLs to deliver "
                            "mid-load")
    chaos.add_argument("--kill-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="(--kill-daemon) nominal spacing between "
                            "kills (seeded jitter applied)")
    chaos.set_defaults(handler=_cmd_chaos)

    serve = sub.add_parser("serve", parents=[obs_flags],
                           help="scheduling-as-a-service daemon: "
                                "NDJSON over a unix socket or "
                                "localhost TCP, with admission "
                                "control, backpressure, deadline "
                                "propagation, and graceful drain "
                                "on SIGTERM (see docs/serving.md)")
    serve.add_argument("--address", default="unix:repro.sock",
                       help="listen address: unix:/path, /path, "
                            "HOST:PORT, or PORT (loopback only)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="concurrently running requests")
    serve.add_argument("--max-queued", type=int, default=16,
                       metavar="N",
                       help="admitted requests allowed to wait "
                            "(beyond this the daemon sheds load with "
                            "typed 'queue-full' rejections)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="per-request engine parallelism (>= 2 "
                            "runs each request on a supervised "
                            "worker pool)")
    serve.add_argument("--tenant-rate", type=float, default=50.0,
                       help="per-tenant token-bucket refill, req/s")
    serve.add_argument("--tenant-burst", type=float, default=100.0,
                       help="per-tenant token-bucket capacity")
    serve.add_argument("--tenant-max-blocks", type=int, default=None,
                       metavar="N",
                       help="per-tenant cumulative block budget")
    serve.add_argument("--max-request-blocks", type=int,
                       default=10_000, metavar="N",
                       help="largest admissible single request")
    serve.add_argument("--block-wall", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-block wall-clock cap (tightened to "
                            "each request's remaining deadline)")
    serve.add_argument("--default-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="deadline applied to requests that carry "
                            "none")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       metavar="SECONDS",
                       help="SIGTERM drain grace before in-flight "
                            "requests shed their remainder")
    serve.add_argument("--drain-force", type=float, default=10.0,
                       metavar="SECONDS",
                       help="hard backstop after the forced shed: "
                            "requests still wedged are abandoned "
                            "(reported, exit 1) so drain always "
                            "terminates")
    serve.add_argument("--cache-entries", type=int, default=512,
                       metavar="N",
                       help="LRU cap for each per-thread warm "
                            "dependence cache")
    serve.add_argument("--chain", default=None, metavar="B1,B2,...",
                       help="default builder fallback chain")
    serve.add_argument("--breaker", action="store_true",
                       help="share a per-builder circuit breaker "
                            "across requests (outcome-changing, "
                            "opt-in)")
    serve.add_argument("--worker-mem-mb", type=int, default=None,
                       metavar="MB",
                       help="per-worker address-space ceiling for "
                            "jobs >= 2 (RLIMIT_AS; OOM deaths are "
                            "attributed crashes)")
    serve.add_argument("--quarantine-dir", default=None, metavar="DIR",
                       help="reproducer directory for jobs >= 2")
    serve.add_argument("--columnar", action="store_true",
                       help="serve on the structure-of-arrays fast "
                            "path (numpy required; byte-identical "
                            "frames and summaries)")
    serve.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="durability directory: every admitted "
                            "request is fsynced to a write-ahead log "
                            "here before it is acknowledged, warm "
                            "state is snapshotted atomically, and a "
                            "restarted daemon replays acknowledged-"
                            "but-unfinished work and dedups finished "
                            "idempotency keys (see docs/durability.md)")
    serve.add_argument("--telemetry", default=None, metavar="ADDR",
                       help="also expose a loopback-only HTTP "
                            "telemetry endpoint (GET /metrics in "
                            "Prometheus text exposition format, "
                            "GET /healthz) at HOST:PORT or PORT; "
                            "implies a live metrics registry")
    serve.add_argument("--no-overload", action="store_true",
                       help="disable the adaptive overload ladder "
                            "(pressure sentinel + degradation "
                            "levels; see docs/overload.md)")
    serve.add_argument("--rss-budget-mb", type=float, default=None,
                       metavar="MB",
                       help="RSS pressure budget for the overload "
                            "ladder (unset: RSS is not a pressure "
                            "signal)")
    serve.add_argument("--priority-tenant", action="append",
                       default=None, metavar="TENANT",
                       help="tenant kept flowing at degradation "
                            "level L3 (repeatable; tenants named "
                            "'priority*' are priority class by "
                            "convention)")
    serve.add_argument("--supervised", action="store_true",
                       help="run under a self-healing parent that "
                            "restarts a crashed daemon with "
                            "exponential backoff (pair with --wal-dir "
                            "so restarts lose nothing); a crash loop "
                            "stops with a typed error instead of "
                            "flapping")
    serve.add_argument("--max-restarts", type=int, default=5,
                       metavar="N",
                       help="(--supervised) unexpected exits "
                            "tolerated inside --restart-window before "
                            "declaring a crash loop")
    serve.add_argument("--restart-window", type=float, default=60.0,
                       metavar="SECONDS",
                       help="(--supervised) sliding window for the "
                            "crash-loop count")
    serve.set_defaults(handler=_cmd_serve)

    fsck = sub.add_parser("fsck",
                          help="scan run journals, serve WALs, and "
                               "warm-state snapshots for damage; "
                               "classify it (torn tail vs CRC "
                               "mismatch vs truncated frame) and "
                               "repair what is safely repairable")
    fsck.add_argument("paths", nargs="+", metavar="PATH",
                      help="journal/WAL/snapshot files or directories "
                           "containing them")
    fsck.add_argument("--repair", action="store_true",
                      help="write a '.repaired' copy (good prefix "
                           "up to the torn tail) next to every "
                           "repairable file; originals are never "
                           "modified")
    fsck.set_defaults(handler=_cmd_fsck)

    loadtest = sub.add_parser("loadtest", parents=[obs_flags],
                              help="seeded load generator against a "
                                   "running serve daemon: p50/p99 "
                                   "latency, throughput, shed rate, "
                                   "and error-budget report")
    loadtest.add_argument("--address", default="unix:repro.sock",
                          help="daemon address to connect to")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="mix seed (fixes the whole workload)")
    loadtest.add_argument("--requests", type=int, default=40,
                          help="schedule requests to send")
    loadtest.add_argument("--concurrency", type=int, default=8,
                          help="parallel client connections")
    loadtest.add_argument("--tenants", type=int, default=2,
                          help="distinct tenants to spread over")
    loadtest.add_argument("--copies-max", type=int, default=4,
                          help="request size knob (blocks/request)")
    loadtest.add_argument("--deadline", type=float, default=10.0,
                          metavar="SECONDS",
                          help="deadline carried by deadlined "
                               "requests")
    loadtest.add_argument("--deadline-fraction", type=float,
                          default=0.5,
                          help="fraction of requests carrying a "
                               "deadline")
    loadtest.add_argument("--machine", choices=sorted(MACHINES),
                          default="generic", help="timing model")
    loadtest.add_argument("--quick", action="store_true",
                          help="small mix (CI smoke mode)")
    loadtest.add_argument("--idempotency-retry", type=float,
                          default=0.0, metavar="FRACTION",
                          help="after the mix settles, resend this "
                               "seeded fraction of requests with "
                               "their original idempotency keys; "
                               "every resend must be answered from "
                               "the WAL result store (duplicate-"
                               "result rate must be exactly 0, else "
                               "exit 1).  Requires the daemon to run "
                               "with --wal-dir")
    loadtest.add_argument("--storm", action="store_true",
                          help="overload storm mode: flood the "
                               "daemon with mixed-priority traffic "
                               "and report SLOs split by priority "
                               "class plus the degradation-ladder "
                               "trajectory (max level, transitions, "
                               "recovery to L0; non-recovery exits "
                               "1)")
    loadtest.set_defaults(handler=_cmd_loadtest)

    top = sub.add_parser("top",
                         help="live terminal dashboard over a running "
                              "serve daemon: sliding-window p50/p99, "
                              "occupancy, shed/reject rates, per-"
                              "thread warm caches")
    top.add_argument("--address", default="unix:repro.sock",
                     help="daemon address to poll")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS", help="refresh period")
    top.add_argument("--once", action="store_true",
                     help="print a single panel and exit (for CI "
                          "smoke and scripting)")
    top.set_defaults(handler=_cmd_top)
    return parser


def main(argv: list[str] | None = None,
         out: Callable[[str], None] = print) -> int:
    """CLI entry point.

    Args:
        argv: argument vector (None = ``sys.argv[1:]``).
        out: line sink, injectable for tests.

    Returns:
        Process exit status.
    """
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(raw_argv)
    # The supervised serve path re-execs the daemon with these tokens
    # (minus the supervision flags); parsed Namespaces cannot be
    # turned back into argv faithfully, so keep the original.
    args._argv = raw_argv
    try:
        return args.handler(args, out)
    except ReproError as exc:
        out(f"repro: error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
