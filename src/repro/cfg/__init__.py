"""Basic blocks: partitioning and instruction windows."""

from repro.cfg.basic_block import BasicBlock
from repro.cfg.partition import partition_blocks, pin_delay_slot_occupants
from repro.cfg.windows import apply_window

__all__ = ["BasicBlock", "partition_blocks", "pin_delay_slot_occupants",
           "apply_window"]
