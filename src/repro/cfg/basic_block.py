"""The :class:`BasicBlock` value object."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import InstructionClass
from repro.isa.resources import defs_and_uses, ResourceKind


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending at most once in control flow.

    Attributes:
        index: 0-based block number within the program.
        instructions: the block's instructions in original order.
        label: label of the first instruction, if any.
        windowed_from: when this block was produced by instruction-
            window splitting (:func:`repro.cfg.windows.apply_window`),
            the index of the original unsplit block; else None.
    """

    index: int
    instructions: list[Instruction] = field(default_factory=list)
    label: str | None = None
    windowed_from: int | None = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    @property
    def terminator(self) -> Instruction | None:
        """The block-ending control transfer / window op, if the block
        ends with one."""
        if not self.instructions:
            return None
        last = self.instructions[-1]
        return last if last.opcode.ends_block else None

    def unique_memory_exprs(self) -> set[str]:
        """Keys of the distinct symbolic memory expressions in the block.

        This is the quantity tabulated per block in the paper's
        Table 3: one expression per load/store *operand*, counted
        textually (a double-word access is one expression here even
        though dependence analysis tracks both of its word slots).
        """
        keys: set[str] = set()
        for instr in self.instructions:
            mem = instr.mem_operand()
            if mem is not None:
                keys.add(mem.expr.key())
        return keys

    def instruction_class_counts(self) -> dict[InstructionClass, int]:
        """Histogram of instruction classes in the block."""
        counts: dict[InstructionClass, int] = {}
        for instr in self.instructions:
            counts[instr.opcode.iclass] = counts.get(
                instr.opcode.iclass, 0) + 1
        return counts
