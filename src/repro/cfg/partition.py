"""Leader-based basic-block partitioning.

Block boundaries follow section 2 of the paper:

* branches, calls, and returns end the block they appear in;
* on this delayed-branch target, the *delay-slot* instruction
  (including an annulling branch's slot) "is included in the counts
  for the basic block following the branch" -- so the slot instruction
  becomes the first instruction of the next block;
* register-window instructions SAVE and RESTORE also end basic blocks,
  "since register identifiers name different physical resources on
  different sides of these instructions";
* every branch-target label starts a new block.
"""

from __future__ import annotations

from repro.asm.program import Program
from repro.cfg.basic_block import BasicBlock
from repro.isa.instruction import Instruction


def _leaders(program: Program) -> set[int]:
    """Indices of instructions that start a basic block."""
    n = len(program.instructions)
    if n == 0:
        return set()
    leaders = {0}
    leaders.update(program.label_targets())
    for instr in program.instructions:
        if instr.opcode.ends_block:
            # The instruction after the terminator starts a new block.
            # For delayed transfers that instruction is the delay slot,
            # which the paper counts with the FOLLOWING block.
            if instr.index + 1 < n:
                leaders.add(instr.index + 1)
    return leaders


def pin_delay_slot_occupants(blocks: list[BasicBlock]) -> list[BasicBlock]:
    """Isolate delay-slot occupants into single-instruction blocks.

    The paper counts a delay-slot instruction with the *following*
    block, and per-block scheduling is free to reorder that block --
    which would change WHICH instruction sits in the preceding
    branch's delay slot when the program is re-linearized.  For
    layout-preserving transformations (``repro.transform``, the CLI),
    the occupant must stay put: this pass splits it into its own
    block so schedulers cannot move anything across it.

    Blocks are renumbered consecutively; labels stay with the
    occupant (the original block start).
    """
    out: list[BasicBlock] = []
    previous_delayed = False
    for block in blocks:
        instrs = block.instructions
        if previous_delayed and instrs:
            out.append(BasicBlock(len(out), [instrs[0]], block.label,
                                  block.windowed_from))
            rest = instrs[1:]
            if rest:
                out.append(BasicBlock(len(out), list(rest), None,
                                      block.windowed_from))
        else:
            out.append(BasicBlock(len(out), list(instrs), block.label,
                                  block.windowed_from))
        last = instrs[-1] if instrs else None
        previous_delayed = (last is not None and last.opcode.ends_block
                            and last.opcode.delayed)
    return out


def partition_blocks(program: Program) -> list[BasicBlock]:
    """Partition a program into basic blocks.

    Every instruction lands in exactly one block; blocks preserve the
    original instruction order.
    """
    leaders = sorted(_leaders(program))
    blocks: list[BasicBlock] = []
    for block_number, start in enumerate(leaders):
        end = (leaders[block_number + 1]
               if block_number + 1 < len(leaders)
               else len(program.instructions))
        instrs: list[Instruction] = program.instructions[start:end]
        blocks.append(BasicBlock(
            index=block_number,
            instructions=instrs,
            label=instrs[0].label if instrs else None,
        ))
    return blocks
