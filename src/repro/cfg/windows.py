"""Instruction windows: capping the maximum basic block size.

The paper evaluates fpppp at window sizes 1000/2000/4000 as well as
unwindowed (maximum block 11750 instructions), concluding that the
``n**2`` construction algorithm needs a window of 300-400 instructions
to stay practical while the table-building algorithms need none.

:func:`apply_window` splits oversized blocks into consecutive chunks
of at most the window size; chunks keep a back-reference to the
original block.  Splitting a block is conservative with respect to
scheduling: dependences crossing the cut are simply honored by keeping
the chunks in order.
"""

from __future__ import annotations

from repro.cfg.basic_block import BasicBlock


def apply_window(blocks: list[BasicBlock],
                 window: int | None) -> list[BasicBlock]:
    """Split any block larger than ``window`` into chunks.

    Args:
        blocks: the program's basic blocks.
        window: maximum block size, or None for unbounded.

    Returns:
        A new block list (never shares :class:`BasicBlock` objects with
        the input when splitting occurred), renumbered consecutively.

    Raises:
        ValueError: if ``window`` is not positive.
    """
    if window is None:
        return blocks
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    out: list[BasicBlock] = []
    for block in blocks:
        if block.size <= window:
            out.append(BasicBlock(len(out), block.instructions, block.label,
                                  block.windowed_from))
            continue
        for start in range(0, block.size, window):
            chunk = block.instructions[start:start + window]
            out.append(BasicBlock(
                index=len(out),
                instructions=chunk,
                label=block.label if start == 0 else None,
                windowed_from=(block.windowed_from
                               if block.windowed_from is not None
                               else block.index),
            ))
    return out
