"""Re-emit programs and schedules as assembly text."""

from __future__ import annotations

from typing import Iterable

from repro.asm.program import Program
from repro.isa.instruction import Instruction


def render_instruction(instr: Instruction, with_label: bool = True) -> str:
    """Render one instruction, label first when present."""
    body = "\t" + instr.render()
    if with_label and instr.label:
        return f"{instr.label}:\n{body}"
    return body


def render_instructions(instructions: Iterable[Instruction]) -> str:
    """Render a sequence of instructions, one per line."""
    return "\n".join(render_instruction(i) for i in instructions)


def render_program(program: Program) -> str:
    """Render a whole program back to assembly text.

    Labels that map past the last instruction are emitted at the end;
    directives are not round-tripped into position (they are appended
    as a header) because their placement is semantically irrelevant to
    this library.
    """
    lines: list[str] = list(program.directives)
    end_labels = [name for name, idx in program.labels.items()
                  if idx >= len(program.instructions)]
    lines.append(render_instructions(program.instructions))
    for name in end_labels:
        lines.append(f"{name}:")
    return "\n".join(lines) + "\n"
