"""Line-oriented lexer for the SPARC-like assembly dialect.

The dialect is deliberately simple:

* one instruction per line;
* ``!`` and ``#`` start a comment running to end of line;
* a label is an identifier followed by ``:``, optionally sharing the
  line with an instruction;
* lines starting with ``.`` are assembler directives and are passed
  through untouched for the parser to record or skip;
* operands are comma-separated at the top level; commas inside
  ``[...]`` or ``(...)`` do not split.

Every :class:`LexedLine` carries the raw source text plus 1-based
columns for the mnemonic and each operand, so downstream diagnostics
(:class:`~repro.errors.AsmSyntaxError`) can point at the offending
construct, not just the offending line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AsmSyntaxError

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")


@dataclass(frozen=True)
class LexError:
    """One unlexable line recorded during a lenient pass.

    Attributes:
        number: 1-based line number.
        text: the raw source line.
        error: the diagnostic that would have been raised.
    """

    number: int
    text: str
    error: AsmSyntaxError


@dataclass(frozen=True, slots=True)
class LexedLine:
    """One meaningful source line, split into its parts.

    Attributes:
        number: 1-based line number.
        labels: labels defined on this line (before any instruction).
        mnemonic: instruction mnemonic (lower case, annul suffix kept),
            or None for a label-only or directive line.
        operand_texts: raw operand strings, stripped.
        directive: the directive text for ``.``-lines, else None.
        raw: the raw source line (comments included).
        mnemonic_column: 1-based column of the mnemonic, 0 if absent.
        operand_columns: 1-based column of each operand.
    """

    number: int
    labels: tuple[str, ...] = ()
    mnemonic: str | None = None
    operand_texts: tuple[str, ...] = ()
    directive: str | None = None
    raw: str = ""
    mnemonic_column: int = 0
    operand_columns: tuple[int, ...] = ()


def strip_comment(text: str) -> str:
    """Remove ``!`` / ``#`` comments (quotes are not part of the dialect)."""
    for marker in ("!", "#"):
        pos = text.find(marker)
        if pos >= 0:
            text = text[:pos]
    return text


def split_operands_spans(text: str, line_number: int,
                         base_column: int = 1) -> tuple[
                             tuple[str, ...], tuple[int, ...]]:
    """Split an operand list on top-level commas, tracking columns.

    Commas nested inside ``[...]`` or ``(...)`` (memory operands,
    ``%hi(...)``) do not split.  ``base_column`` is the 1-based column
    of ``text[0]`` within the source line; the returned columns locate
    each stripped operand in that line.

    Returns:
        ``(operand_texts, operand_columns)``, parallel tuples.

    Raises:
        AsmSyntaxError: on unbalanced brackets or an empty operand.
    """
    parts: list[str] = []
    columns: list[int] = []
    open_stack: list[int] = []
    current: list[str] = []
    start = 0

    def flush() -> None:
        piece = "".join(current)
        lead = len(piece) - len(piece.lstrip())
        parts.append(piece.strip())
        columns.append(base_column + start + lead)

    for i, ch in enumerate(text):
        if ch in "([":
            open_stack.append(i)
        elif ch in ")]":
            if not open_stack:
                raise AsmSyntaxError("unbalanced brackets", line_number,
                                     text, column=base_column + i)
            open_stack.pop()
        if ch == "," and not open_stack:
            flush()
            current = []
            start = i + 1
        else:
            current.append(ch)
    if open_stack:
        raise AsmSyntaxError("unbalanced brackets", line_number, text,
                             column=base_column + open_stack[-1])
    if "".join(current).strip():
        flush()
    for part, column in zip(parts, columns):
        if not part:
            raise AsmSyntaxError("empty operand", line_number, text,
                                 column=column)
    return tuple(parts), tuple(columns)


def split_operands(text: str, line_number: int) -> tuple[str, ...]:
    """Split an operand list on top-level commas (columns discarded).

    Raises:
        AsmSyntaxError: on unbalanced brackets or an empty operand.
    """
    return split_operands_spans(text, line_number)[0]


def lex_lines(text: str,
              errors: list[LexError] | None = None) -> list[LexedLine]:
    """Lex assembly source into :class:`LexedLine` records.

    Blank and comment-only lines are dropped; labels stack onto the
    next instruction-bearing line only if they are on that line, else
    they appear as label-only records.

    Args:
        text: assembly source.
        errors: when given, unlexable lines are skipped and recorded
            here instead of raising (the lenient mode used by the
            fuzzing mutator and ``--lenient`` CLI flag).

    Raises:
        AsmSyntaxError: on an unlexable line, unless ``errors`` is
            given.
    """
    out: list[LexedLine] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw)
        column = len(line) - len(line.lstrip()) + 1
        line = line.strip()
        if not line:
            continue
        labels: list[str] = []
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            labels.append(match.group(1))
            consumed = match.end()
            rest = line[consumed:]
            column += consumed + (len(rest) - len(rest.lstrip()))
            line = rest.strip()
        if not line:
            out.append(LexedLine(number, tuple(labels), raw=raw))
            continue
        if line.startswith("."):
            out.append(LexedLine(number, tuple(labels), directive=line,
                                 raw=raw))
            continue
        fields = line.split(None, 1)
        mnemonic = fields[0].lower()
        mnemonic_column = column
        operand_texts: tuple[str, ...] = ()
        operand_columns: tuple[int, ...] = ()
        if len(fields) == 2:
            after = line[len(fields[0]):]
            rest_column = (column + len(fields[0])
                           + len(after) - len(after.lstrip()))
            try:
                operand_texts, operand_columns = split_operands_spans(
                    fields[1], number, rest_column)
            except AsmSyntaxError as exc:
                if errors is None:
                    raise
                errors.append(LexError(number, raw, exc))
                continue
        out.append(LexedLine(number, tuple(labels), mnemonic,
                             operand_texts, raw=raw,
                             mnemonic_column=mnemonic_column,
                             operand_columns=operand_columns))
    return out
