"""Line-oriented lexer for the SPARC-like assembly dialect.

The dialect is deliberately simple:

* one instruction per line;
* ``!`` and ``#`` start a comment running to end of line;
* a label is an identifier followed by ``:``, optionally sharing the
  line with an instruction;
* lines starting with ``.`` are assembler directives and are passed
  through untouched for the parser to record or skip;
* operands are comma-separated at the top level; commas inside
  ``[...]`` or ``(...)`` do not split.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import AsmSyntaxError

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")


@dataclass(frozen=True, slots=True)
class LexedLine:
    """One meaningful source line, split into its parts.

    Attributes:
        number: 1-based line number.
        labels: labels defined on this line (before any instruction).
        mnemonic: instruction mnemonic (lower case, annul suffix kept),
            or None for a label-only or directive line.
        operand_texts: raw operand strings, stripped.
        directive: the directive text for ``.``-lines, else None.
    """

    number: int
    labels: tuple[str, ...] = ()
    mnemonic: str | None = None
    operand_texts: tuple[str, ...] = ()
    directive: str | None = None


def strip_comment(text: str) -> str:
    """Remove ``!`` / ``#`` comments (quotes are not part of the dialect)."""
    for marker in ("!", "#"):
        pos = text.find(marker)
        if pos >= 0:
            text = text[:pos]
    return text


def split_operands(text: str, line_number: int) -> tuple[str, ...]:
    """Split an operand list on top-level commas.

    Commas nested inside ``[...]`` or ``(...)`` (memory operands,
    ``%hi(...)``) do not split.

    Raises:
        AsmSyntaxError: on unbalanced brackets.
    """
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth < 0:
                raise AsmSyntaxError("unbalanced brackets", line_number, text)
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise AsmSyntaxError("unbalanced brackets", line_number, text)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    if any(not p for p in parts):
        raise AsmSyntaxError("empty operand", line_number, text)
    return tuple(parts)


def lex_lines(text: str) -> list[LexedLine]:
    """Lex assembly source into :class:`LexedLine` records.

    Blank and comment-only lines are dropped; labels stack onto the
    next instruction-bearing line only if they are on that line, else
    they appear as label-only records.
    """
    out: list[LexedLine] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw).strip()
        if not line:
            continue
        labels: list[str] = []
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            labels.append(match.group(1))
            line = line[match.end():].strip()
        if not line:
            out.append(LexedLine(number, tuple(labels)))
            continue
        if line.startswith("."):
            out.append(LexedLine(number, tuple(labels), directive=line))
            continue
        fields = line.split(None, 1)
        mnemonic = fields[0].lower()
        operand_texts: tuple[str, ...] = ()
        if len(fields) == 2:
            operand_texts = split_operands(fields[1], number)
        out.append(LexedLine(number, tuple(labels), mnemonic, operand_texts))
    return out
