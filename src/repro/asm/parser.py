"""Parser: lexed lines -> :class:`~repro.asm.program.Program`.

Operands are recognized by shape:

* ``%``-prefixed register names -> :class:`RegOperand`;
* ``%hi(sym)`` / ``%lo(sym)`` -> :class:`SymImmOperand`;
* ``[...]`` -> :class:`MemOperand` (see :func:`parse_mem_expr` for the
  accepted addressing shapes);
* integers (decimal or ``0x`` hex, optionally negative) ->
  :class:`ImmOperand`;
* anything else that looks like an identifier -> :class:`LabelOperand`.
"""

from __future__ import annotations

import re

from repro.errors import AsmSyntaxError, OperandError
from repro.asm.lexer import LexedLine, lex_lines, split_operands
from repro.asm.program import Program
from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import lookup_opcode
from repro.isa.operands import (
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    RegOperand,
    SymImmOperand,
)
from repro.isa.registers import canonical_name, is_register_name, parse_register

_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")
_HILO_RE = re.compile(r"^%(hi|lo)\(([\w.$]+)\)$")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _parse_int(text: str) -> int:
    return int(text, 0)


def parse_mem_expr(inner: str, line_number: int = 0) -> MemExpr:
    """Parse the inside of a ``[...]`` memory operand.

    Accepted shapes: ``reg``, ``reg+reg``, ``reg+imm``, ``reg-imm``,
    ``sym``, ``sym+imm``, ``sym-imm``, ``reg+%lo(sym)``.

    Raises:
        AsmSyntaxError: on any other shape.
    """
    text = inner.replace(" ", "")
    if not text:
        raise AsmSyntaxError("empty memory expression", line_number, inner)

    # Split on the FIRST top-level + or - (not the leading sign).
    split_at = -1
    depth = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch in "+-" and i > 0 and depth == 0:
            split_at = i
            break
    head = text[:split_at] if split_at >= 0 else text
    tail = text[split_at:] if split_at >= 0 else ""

    def as_reg(token: str) -> str | None:
        if token.startswith("%") and is_register_name(token):
            return canonical_name(token)
        return None

    head_reg = as_reg(head)
    if head_reg is not None:
        if not tail:
            return MemExpr(base=head_reg)
        op_sign, rest = tail[0], tail[1:]
        rest_reg = as_reg(rest)
        if rest_reg is not None:
            if op_sign == "-":
                raise AsmSyntaxError("register index cannot be subtracted",
                                     line_number, inner)
            return MemExpr(base=head_reg, index=rest_reg)
        lo = _HILO_RE.match(rest)
        if lo is not None:
            if lo.group(1) != "lo" or op_sign == "-":
                raise AsmSyntaxError("only +%lo(sym) is addressable",
                                     line_number, inner)
            return MemExpr(base=head_reg, symbol=lo.group(2))
        if _INT_RE.match(rest):
            offset = _parse_int(rest)
            return MemExpr(base=head_reg,
                           offset=-offset if op_sign == "-" else offset)
        raise AsmSyntaxError(f"bad memory displacement {rest!r}",
                             line_number, inner)

    if _IDENT_RE.match(head):
        if not tail:
            return MemExpr(symbol=head)
        op_sign, rest = tail[0], tail[1:]
        if _INT_RE.match(rest):
            offset = _parse_int(rest)
            return MemExpr(symbol=head,
                           offset=-offset if op_sign == "-" else offset)
        raise AsmSyntaxError(f"bad symbol displacement {rest!r}",
                             line_number, inner)

    raise AsmSyntaxError(f"bad memory expression {inner!r}", line_number,
                         inner)


def parse_operand(text: str, line_number: int = 0) -> Operand:
    """Parse one operand string (see module docstring for shapes)."""
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        return MemOperand(parse_mem_expr(text[1:-1], line_number))
    hilo = _HILO_RE.match(text)
    if hilo is not None:
        return SymImmOperand(hilo.group(1), hilo.group(2))
    if text.startswith("%"):
        if is_register_name(text):
            return RegOperand(parse_register(text))
        raise AsmSyntaxError(f"unknown register {text!r}", line_number, text)
    if _INT_RE.match(text):
        return ImmOperand(_parse_int(text))
    if _IDENT_RE.match(text):
        return LabelOperand(text)
    raise AsmSyntaxError(f"cannot parse operand {text!r}", line_number, text)


def _parse_mnemonic(raw: str, line_number: int) -> tuple[str, bool]:
    """Split an ``,a`` annul suffix off a branch mnemonic."""
    if "," not in raw:
        return raw, False
    base, _, suffix = raw.partition(",")
    if suffix != "a":
        raise AsmSyntaxError(f"unknown mnemonic suffix {suffix!r}",
                             line_number, raw)
    return base, True


def parse_asm(text: str, name: str = "<asm>") -> Program:
    """Parse assembly source text into a :class:`Program`.

    Args:
        text: assembly source.
        name: source name for diagnostics and reports.

    Raises:
        AsmSyntaxError: on lexical or syntactic errors.
        UnknownOpcodeError: for unknown mnemonics.
        CfgError: for duplicate labels.
    """
    program = Program(name)
    pending_labels: list[str] = []
    for line in lex_lines(text):
        pending_labels.extend(line.labels)
        if line.directive is not None:
            program.directives.append(line.directive)
            continue
        if line.mnemonic is None:
            continue
        mnemonic, annulled = _parse_mnemonic(line.mnemonic, line.number)
        opcode = lookup_opcode(mnemonic)
        if annulled and not opcode.delayed:
            raise AsmSyntaxError(
                f"{mnemonic} cannot carry an annul suffix", line.number)
        operands = tuple(parse_operand(t, line.number)
                         for t in line.operand_texts)
        index = len(program.instructions)
        label = pending_labels[0] if pending_labels else None
        instr = Instruction(index, opcode, operands, label=label,
                            annulled=annulled, source_line=line.number)
        # Validate operands eagerly so parse errors surface here, not
        # at DAG-build time.
        from repro.isa.resources import defs_and_uses
        try:
            defs_and_uses(instr)
        except OperandError as exc:
            raise AsmSyntaxError(str(exc), line.number) from exc
        program.instructions.append(instr)
        for lbl in pending_labels:
            program.add_label(lbl, index)
        pending_labels = []
    for lbl in pending_labels:
        program.add_label(lbl, len(program.instructions))
    return program


def parse_instruction_text(text: str, index: int = 0) -> Instruction:
    """Parse a single instruction line (convenience for tests/examples)."""
    program = parse_asm(text)
    if len(program) != 1:
        raise AsmSyntaxError(
            f"expected exactly one instruction, got {len(program)}")
    return program.instructions[0].with_index(index)
