"""Parser: lexed lines -> :class:`~repro.asm.program.Program`.

Operands are recognized by shape:

* ``%``-prefixed register names -> :class:`RegOperand`;
* ``%hi(sym)`` / ``%lo(sym)`` -> :class:`SymImmOperand`;
* ``[...]`` -> :class:`MemOperand` (see :func:`parse_mem_expr` for the
  accepted addressing shapes);
* integers (decimal or ``0x`` hex, optionally negative) ->
  :class:`ImmOperand`;
* anything else that looks like an identifier -> :class:`LabelOperand`.

Diagnostics carry the source name, line, column, and offending text.
:func:`parse_asm` has two error regimes: strict (the default) aborts
on the first malformed line; lenient records each malformed line as a
:class:`~repro.asm.program.SkippedLine` on the returned program and
keeps going -- the recovery mode the mutation fuzzer and the CLI's
``--lenient`` flag rely on.
"""

from __future__ import annotations

import re

from repro.errors import AsmSyntaxError, OperandError
from repro.asm.lexer import LexedLine, LexError, lex_lines, split_operands
from repro.asm.program import Program, SkippedLine
from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import lookup_opcode
from repro.isa.operands import (
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    RegOperand,
    SymImmOperand,
)
from repro.isa.registers import canonical_name, is_register_name, parse_register

_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")
_HILO_RE = re.compile(r"^%(hi|lo)\(([\w.$]+)\)$")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _parse_int(text: str) -> int:
    return int(text, 0)


def parse_mem_expr(inner: str, line_number: int = 0,
                   column: int = 0) -> MemExpr:
    """Parse the inside of a ``[...]`` memory operand.

    Accepted shapes: ``reg``, ``reg+reg``, ``reg+imm``, ``reg-imm``,
    ``sym``, ``sym+imm``, ``sym-imm``, ``reg+%lo(sym)``.

    Raises:
        AsmSyntaxError: on any other shape.
    """
    col = column or None
    text = inner.replace(" ", "")
    if not text:
        raise AsmSyntaxError("empty memory expression", line_number, inner,
                             column=col)

    # Split on the FIRST top-level + or - (not the leading sign).
    split_at = -1
    depth = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch in "+-" and i > 0 and depth == 0:
            split_at = i
            break
    head = text[:split_at] if split_at >= 0 else text
    tail = text[split_at:] if split_at >= 0 else ""

    def as_reg(token: str) -> str | None:
        if token.startswith("%") and is_register_name(token):
            return canonical_name(token)
        return None

    head_reg = as_reg(head)
    if head_reg is not None:
        if not tail:
            return MemExpr(base=head_reg)
        op_sign, rest = tail[0], tail[1:]
        rest_reg = as_reg(rest)
        if rest_reg is not None:
            if op_sign == "-":
                raise AsmSyntaxError("register index cannot be subtracted",
                                     line_number, inner, column=col)
            return MemExpr(base=head_reg, index=rest_reg)
        lo = _HILO_RE.match(rest)
        if lo is not None:
            if lo.group(1) != "lo" or op_sign == "-":
                raise AsmSyntaxError("only +%lo(sym) is addressable",
                                     line_number, inner, column=col)
            return MemExpr(base=head_reg, symbol=lo.group(2))
        if _INT_RE.match(rest):
            offset = _parse_int(rest)
            return MemExpr(base=head_reg,
                           offset=-offset if op_sign == "-" else offset)
        raise AsmSyntaxError(f"bad memory displacement {rest!r}",
                             line_number, inner, column=col)

    if _IDENT_RE.match(head):
        if not tail:
            return MemExpr(symbol=head)
        op_sign, rest = tail[0], tail[1:]
        if _INT_RE.match(rest):
            offset = _parse_int(rest)
            return MemExpr(symbol=head,
                           offset=-offset if op_sign == "-" else offset)
        raise AsmSyntaxError(f"bad symbol displacement {rest!r}",
                             line_number, inner, column=col)

    raise AsmSyntaxError(f"bad memory expression {inner!r}", line_number,
                         inner, column=col)


def parse_operand(text: str, line_number: int = 0,
                  column: int = 0) -> Operand:
    """Parse one operand string (see module docstring for shapes)."""
    col = column or None
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        return MemOperand(parse_mem_expr(text[1:-1], line_number, column))
    hilo = _HILO_RE.match(text)
    if hilo is not None:
        return SymImmOperand(hilo.group(1), hilo.group(2))
    if text.startswith("%"):
        if is_register_name(text):
            return RegOperand(parse_register(text))
        raise AsmSyntaxError(f"unknown register {text!r}", line_number,
                             text, column=col)
    if _INT_RE.match(text):
        return ImmOperand(_parse_int(text))
    if _IDENT_RE.match(text):
        return LabelOperand(text)
    raise AsmSyntaxError(f"cannot parse operand {text!r}", line_number,
                         text, column=col)


def _parse_mnemonic(raw: str, line_number: int,
                    column: int = 0) -> tuple[str, bool]:
    """Split an ``,a`` annul suffix off a branch mnemonic."""
    if "," not in raw:
        return raw, False
    base, _, suffix = raw.partition(",")
    if suffix != "a":
        raise AsmSyntaxError(f"unknown mnemonic suffix {suffix!r}",
                             line_number, raw, column=column or None)
    return base, True


def _parse_line(line: LexedLine, index: int) -> Instruction:
    """Parse one instruction-bearing lexed line (label not yet attached).

    Raises:
        AsmSyntaxError: with line/column/text diagnostics.
    """
    assert line.mnemonic is not None
    mnemonic, annulled = _parse_mnemonic(line.mnemonic, line.number,
                                         line.mnemonic_column)
    try:
        opcode = lookup_opcode(mnemonic)
    except AsmSyntaxError as exc:
        raise type(exc)(str(exc), line.number, line.raw,
                        column=line.mnemonic_column or None) from exc
    if annulled and not opcode.delayed:
        raise AsmSyntaxError(
            f"{mnemonic} cannot carry an annul suffix", line.number,
            line.raw, column=line.mnemonic_column or None)
    columns = line.operand_columns or (0,) * len(line.operand_texts)
    operands = tuple(parse_operand(t, line.number, c)
                     for t, c in zip(line.operand_texts, columns))
    instr = Instruction(index, opcode, operands, annulled=annulled,
                        source_line=line.number)
    # Validate operands eagerly so parse errors surface here, not at
    # DAG-build time.
    from repro.isa.resources import defs_and_uses
    try:
        defs_and_uses(instr)
    except OperandError as exc:
        raise AsmSyntaxError(str(exc), line.number, line.raw,
                             column=line.mnemonic_column or None) from exc
    return instr


def parse_asm(text: str, name: str = "<asm>",
              lenient: bool = False) -> Program:
    """Parse assembly source text into a :class:`Program`.

    Args:
        text: assembly source.
        name: source name for diagnostics and reports.
        lenient: skip-and-continue over malformed lines, recording each
            as a :class:`~repro.asm.program.SkippedLine` in
            ``program.skipped_lines`` instead of aborting the file.
            Labels on a skipped line still attach to the next parsed
            instruction.

    Raises:
        AsmSyntaxError: on lexical or syntactic errors (strict mode).
        UnknownOpcodeError: for unknown mnemonics (strict mode).
        CfgError: for duplicate labels.
    """
    program = Program(name)
    lex_errors: list[LexError] | None = [] if lenient else None
    try:
        lines = lex_lines(text, errors=lex_errors)
    except AsmSyntaxError as exc:
        raise _with_filename(exc, name)
    for err in lex_errors or ():
        program.skipped_lines.append(SkippedLine(
            err.number, err.error.column or 0, err.text, str(err.error)))
    pending_labels: list[str] = []
    for line in lines:
        pending_labels.extend(line.labels)
        if line.directive is not None:
            program.directives.append(line.directive)
            continue
        if line.mnemonic is None:
            continue
        index = len(program.instructions)
        try:
            instr = _parse_line(line, index)
        except AsmSyntaxError as exc:
            if not lenient:
                raise _with_filename(exc, name)
            program.skipped_lines.append(SkippedLine(
                line.number, exc.column or line.mnemonic_column,
                line.raw, str(exc)))
            continue
        if pending_labels:
            instr = Instruction(index, instr.opcode, instr.operands,
                                label=pending_labels[0],
                                annulled=instr.annulled,
                                source_line=instr.source_line)
        program.instructions.append(instr)
        for lbl in pending_labels:
            program.add_label(lbl, index)
        pending_labels = []
    for lbl in pending_labels:
        program.add_label(lbl, len(program.instructions))
    program.skipped_lines.sort(key=lambda skipped: skipped.number)
    return program


def _with_filename(exc: AsmSyntaxError, name: str) -> AsmSyntaxError:
    """Stamp the source name onto a diagnostic (message and attribute)."""
    if exc.filename is None and name and name != "<asm>":
        exc.filename = name
        exc.args = (f"{name}: {exc.args[0]}",) + exc.args[1:]
    return exc


def parse_instruction_text(text: str, index: int = 0) -> Instruction:
    """Parse a single instruction line (convenience for tests/examples)."""
    program = parse_asm(text)
    if len(program) != 1:
        raise AsmSyntaxError(
            f"expected exactly one instruction, got {len(program)}")
    return program.instructions[0].with_index(index)
