"""The :class:`Program` container produced by the parser."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CfgError
from repro.isa.instruction import Instruction


@dataclass(frozen=True)
class SkippedLine:
    """One source line skipped by a lenient parse.

    Attributes:
        number: 1-based line number.
        column: 1-based column of the offending construct (0 unknown).
        text: the raw source line.
        error: the diagnostic that would have aborted a strict parse.
    """

    number: int
    column: int
    text: str
    error: str


@dataclass
class Program:
    """A parsed assembly program (one translation unit).

    Attributes:
        name: source name, for reports.
        instructions: all instructions in source order, with
            ``Instruction.index`` equal to list position.
        labels: label name -> index of the labeled instruction.  A
            label at end-of-file maps to ``len(instructions)``.
        directives: assembler directives in source order (kept for
            round-tripping; semantically ignored).
        skipped_lines: malformed lines recorded (instead of raised)
            by a lenient parse; empty after a strict parse.
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    directives: list[str] = field(default_factory=list)
    skipped_lines: list[SkippedLine] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def add_label(self, name: str, index: int) -> None:
        """Record a label definition.

        Raises:
            CfgError: if the label is already defined at another index.
        """
        existing = self.labels.get(name)
        if existing is not None and existing != index:
            raise CfgError(f"duplicate label {name!r}")
        self.labels[name] = index

    def label_targets(self) -> set[int]:
        """Instruction indices that are branch-target label sites."""
        return {i for i in self.labels.values() if i < len(self.instructions)}
