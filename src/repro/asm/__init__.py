"""Assembly front end: lexing, parsing, and re-emitting SPARC-like text."""

from repro.asm.lexer import LexedLine, LexError, lex_lines
from repro.asm.parser import parse_asm, parse_instruction_text
from repro.asm.program import Program, SkippedLine
from repro.asm.writer import render_program

__all__ = [
    "LexedLine",
    "LexError",
    "SkippedLine",
    "lex_lines",
    "parse_asm",
    "parse_instruction_text",
    "Program",
    "render_program",
]
