"""Assembly front end: lexing, parsing, and re-emitting SPARC-like text."""

from repro.asm.lexer import LexedLine, lex_lines
from repro.asm.parser import parse_asm, parse_instruction_text
from repro.asm.program import Program
from repro.asm.writer import render_program

__all__ = [
    "LexedLine",
    "lex_lines",
    "parse_asm",
    "parse_instruction_text",
    "Program",
    "render_program",
]
