"""DAG export: Graphviz DOT and networkx.

Visual inspection of dependence DAGs (and interop with graph
libraries) for debugging and teaching; Figure 1 rendered with
:func:`to_dot` shows the WAR-then-RAW path and the timing-essential
transitive arc at a glance.
"""

from __future__ import annotations

from repro.dep import DepType
from repro.dag.graph import Dag

_DEP_STYLE = {
    DepType.RAW: "solid",
    DepType.WAR: "dashed",
    DepType.WAW: "dotted",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(dag: Dag, name: str = "dag",
           highlight_transitive: bool = False) -> str:
    """Render a DAG as Graphviz DOT text.

    Args:
        dag: the DAG to render.
        name: graph name.
        highlight_transitive: color transitive arcs red and
            timing-essential ones bold red (runs the classification).

    Returns:
        DOT source.
    """
    transitive: set[int] = set()
    essential: set[int] = set()
    if highlight_transitive:
        from repro.dag.transitive import (
            classify_arcs,
            timing_essential_arcs,
        )
        labels = classify_arcs(dag)
        transitive = {id(a) for a, t in labels.items() if t}
        essential = {id(a) for a in timing_essential_arcs(dag)}

    lines = [f'digraph "{_escape(name)}" {{',
             "  rankdir=TB;",
             "  node [shape=box, fontname=monospace];"]
    for node in dag.nodes:
        if node.is_dummy:
            lines.append(f'  n{node.id} [label="entry/exit", '
                         "shape=circle, style=dashed];")
        else:
            text = _escape(node.instr.render())
            lines.append(
                f'  n{node.id} [label="{node.id}: {text}\\n'
                f'exec={node.execution_time}"];')
    for arc in dag.arcs():
        style = _DEP_STYLE[arc.dep]
        attrs = [f'label="{arc.dep.value} {arc.delay}"',
                 f"style={style}"]
        if id(arc) in essential:
            attrs.append('color=red penwidth=2')
        elif id(arc) in transitive:
            attrs.append("color=red")
        lines.append(f"  n{arc.parent.id} -> n{arc.child.id} "
                     f"[{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_networkx(dag: Dag):
    """Convert a DAG to a ``networkx.DiGraph``.

    Node attributes: ``text`` and ``execution_time``; edge attributes:
    ``dep`` and ``delay``.
    """
    import networkx as nx
    graph = nx.DiGraph()
    for node in dag.nodes:
        graph.add_node(node.id,
                       text=(node.instr.render() if node.instr
                             else "<dummy>"),
                       execution_time=node.execution_time,
                       dummy=node.is_dummy)
    for arc in dag.arcs():
        graph.add_edge(arc.parent.id, arc.child.id,
                       dep=arc.dep.value, delay=arc.delay)
    return graph
