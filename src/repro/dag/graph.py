"""The dependence DAG.

Nodes are instructions; arcs are data dependences weighted by delay
(paper section 2).  ``Dag.add_arc`` is the single choke point every
construction algorithm funnels through, and it maintains -- exactly as
Table 1's legend describes for the ``a`` entries -- the heuristic
values "determined when an instruction node or dependency arc is added
to the DAG": #children, #parents, the φ-delay aggregates, and the
interlock-with-child predicate.

Parallel arcs (same parent and child through different resources) are
merged into a single arc keeping the maximum delay; the merge count is
reported so builders can account for the work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dep import DepType
from repro.errors import DagError
from repro.isa.instruction import Instruction
from repro.isa.resources import Resource


@dataclass(slots=True, eq=False)
class Arc:
    """One dependence arc.

    Attributes:
        parent: the earlier instruction's node.
        child: the later, dependent node.
        dep: dependence type of the strongest (max-delay) merge.
        delay: arc weight in cycles.
        resource: the resource that carried the (strongest) dependence,
            None for structural arcs to/from dummy nodes.
    """

    parent: "DagNode"
    child: "DagNode"
    dep: DepType
    delay: int
    resource: Resource | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Arc({self.parent.id}->{self.child.id}, {self.dep}, "
                f"delay={self.delay})")


class DagNode:
    """One DAG node: an instruction plus its heuristic annotations.

    Attribute groups:

    * structural: ``out_arcs`` / ``in_arcs`` and the ``a``-class
      counters maintained by :meth:`Dag.add_arc`;
    * static heuristics filled by the intermediate passes
      (:mod:`repro.heuristics.passes`): path/delay extrema, EST/LST/
      slack, descendant aggregates, register-usage measures;
    * dynamic scheduling state, reset by
      :meth:`Dag.reset_schedule_state` before every scheduling pass.
    """

    __slots__ = (
        "id", "instr", "out_arcs", "in_arcs",
        # a-class heuristics (maintained by add_arc)
        "n_children", "n_parents",
        "sum_delays_to_children", "max_delay_to_child",
        "sum_delays_from_parents", "max_delay_from_parent",
        "interlock_with_child", "execution_time",
        # pass-computed static heuristics
        "max_path_to_leaf", "max_delay_to_leaf",
        "max_path_from_root", "max_delay_from_root",
        "est", "lst", "slack",
        "n_descendants", "sum_exec_descendants",
        "registers_born", "registers_killed", "liveness",
        "level",
        # dynamic scheduling state
        "unscheduled_parents", "unscheduled_children",
        "earliest_exec_time", "issue_time", "scheduled",
        "priority_bias",
    )

    def __init__(self, node_id: int, instr: Instruction | None,
                 execution_time: int = 1) -> None:
        self.id = node_id
        self.instr = instr
        self.out_arcs: list[Arc] = []
        self.in_arcs: list[Arc] = []
        self.n_children = 0
        self.n_parents = 0
        self.sum_delays_to_children = 0
        self.max_delay_to_child = 0
        self.sum_delays_from_parents = 0
        self.max_delay_from_parent = 0
        self.interlock_with_child = False
        self.execution_time = execution_time
        self.max_path_to_leaf = 0
        self.max_delay_to_leaf = 0
        self.max_path_from_root = 0
        self.max_delay_from_root = 0
        self.est = 0
        self.lst = 0
        self.slack = 0
        self.n_descendants = 0
        self.sum_exec_descendants = 0
        self.registers_born = 0
        self.registers_killed = 0
        self.liveness = 0
        self.level = 0
        self.unscheduled_parents = 0
        self.unscheduled_children = 0
        self.earliest_exec_time = 0
        self.issue_time = -1
        self.scheduled = False
        self.priority_bias = 0

    @property
    def is_dummy(self) -> bool:
        """True for synthetic root/leaf nodes with no instruction."""
        return self.instr is None

    @property
    def is_root(self) -> bool:
        """True when the node has no parents."""
        return self.n_parents == 0

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return self.n_children == 0

    def children(self) -> list["DagNode"]:
        """Child nodes (one per deduplicated out-arc)."""
        return [arc.child for arc in self.out_arcs]

    def parents(self) -> list["DagNode"]:
        """Parent nodes (one per deduplicated in-arc)."""
        return [arc.parent for arc in self.in_arcs]

    def arc_to(self, child: "DagNode") -> Arc | None:
        """The arc to ``child``, if one exists."""
        for arc in self.out_arcs:
            if arc.child is child:
                return arc
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        text = self.instr.render() if self.instr else "<dummy>"
        return f"DagNode({self.id}: {text})"


class Dag:
    """A dependence DAG (possibly a forest) over one basic block.

    Nodes are created up front in original instruction order; arcs are
    added by a construction algorithm through :meth:`add_arc`.
    """

    def __init__(self) -> None:
        self.nodes: list[DagNode] = []
        self.n_arcs = 0
        self.n_merged_arcs = 0
        self.dummy_root: DagNode | None = None
        self.dummy_leaf: DagNode | None = None
        # Maps child id -> Arc per parent for O(1) duplicate detection.
        self._arc_index: dict[tuple[int, int], Arc] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    def add_node(self, instr: Instruction | None,
                 execution_time: int = 1) -> DagNode:
        """Append a node; its id is its position in creation order."""
        node = DagNode(len(self.nodes), instr, execution_time)
        self.nodes.append(node)
        return node

    def real_nodes(self) -> list[DagNode]:
        """Nodes that carry instructions (dummies excluded)."""
        return [n for n in self.nodes if not n.is_dummy]

    def add_arc(self, parent: DagNode, child: DagNode, dep: DepType,
                delay: int, resource: Resource | None = None) -> Arc | None:
        """Add (or merge) a dependence arc and maintain ``a``-heuristics.

        A second arc between the same node pair is merged into the
        existing one, keeping the larger delay; merged arcs do not
        change #children/#parents but do update the delay aggregates
        when the delay grew.

        Args:
            parent: the earlier node.
            child: the later node.
            dep: dependence type.
            delay: arc weight in cycles (>= 0; 0 only for dummy arcs).

        Returns:
            The new arc, or None when the arc merged into an existing
            one.

        Raises:
            DagError: on a self-arc or an arc from a later to an
                earlier node (which would create a cycle).
        """
        if parent is child:
            raise DagError(f"self-arc on node {parent.id}")
        if (not parent.is_dummy and not child.is_dummy
                and parent.id > child.id):
            raise DagError(
                f"arc {parent.id}->{child.id} points backwards in time")
        key = (parent.id, child.id)
        existing = self._arc_index.get(key)
        if existing is not None:
            self.n_merged_arcs += 1
            if delay > existing.delay:
                parent.sum_delays_to_children += delay - existing.delay
                child.sum_delays_from_parents += delay - existing.delay
                existing.delay = delay
                existing.dep = dep
                existing.resource = resource
                if delay > parent.max_delay_to_child:
                    parent.max_delay_to_child = delay
                if delay > child.max_delay_from_parent:
                    child.max_delay_from_parent = delay
                if delay > 1:
                    parent.interlock_with_child = True
            return None
        arc = Arc(parent, child, dep, delay, resource)
        self._arc_index[key] = arc
        parent.out_arcs.append(arc)
        child.in_arcs.append(arc)
        self.n_arcs += 1
        parent.n_children += 1
        child.n_parents += 1
        parent.sum_delays_to_children += delay
        child.sum_delays_from_parents += delay
        if delay > parent.max_delay_to_child:
            parent.max_delay_to_child = delay
        if delay > child.max_delay_from_parent:
            child.max_delay_from_parent = delay
        if delay > 1:
            parent.interlock_with_child = True
        return arc

    def remove_arc(self, arc: Arc) -> None:
        """Remove an arc, reversing its effect on the simple counters.

        The φ-delay *max* aggregates are recomputed from the remaining
        arcs (removal is used by transitive-arc experiments, not hot
        paths).
        """
        key = (arc.parent.id, arc.child.id)
        if self._arc_index.get(key) is not arc:
            raise DagError(f"arc {key} is not in this DAG")
        del self._arc_index[key]
        arc.parent.out_arcs.remove(arc)
        arc.child.in_arcs.remove(arc)
        self.n_arcs -= 1
        parent, child = arc.parent, arc.child
        parent.n_children -= 1
        child.n_parents -= 1
        parent.sum_delays_to_children -= arc.delay
        child.sum_delays_from_parents -= arc.delay
        parent.max_delay_to_child = max(
            (a.delay for a in parent.out_arcs), default=0)
        child.max_delay_from_parent = max(
            (a.delay for a in child.in_arcs), default=0)
        parent.interlock_with_child = any(
            a.delay > 1 for a in parent.out_arcs)

    def arcs(self) -> list[Arc]:
        """All arcs, in parent-id order."""
        return [arc for node in self.nodes for arc in node.out_arcs]

    def roots(self) -> list[DagNode]:
        """Nodes with no parents (dummies included if present)."""
        return [n for n in self.nodes if n.n_parents == 0]

    def leaves(self) -> list[DagNode]:
        """Nodes with no children (dummies included if present)."""
        return [n for n in self.nodes if n.n_children == 0]

    def reset_schedule_state(self) -> None:
        """Prepare the dynamic per-node state for a scheduling pass.

        Dummy nodes do not gate readiness: the counters only track
        real parents/children.
        """
        for node in self.nodes:
            node.unscheduled_parents = sum(
                1 for a in node.in_arcs if not a.parent.is_dummy)
            node.unscheduled_children = sum(
                1 for a in node.out_arcs if not a.child.is_dummy)
            node.earliest_exec_time = 0
            node.issue_time = -1
            node.scheduled = False
            node.priority_bias = 0

    def topological_order(self) -> list[DagNode]:
        """Nodes in a topological order (original order is one, since
        arcs always point forward in time; dummies are placed at the
        boundaries)."""
        real = [n for n in self.nodes if not n.is_dummy]
        order: list[DagNode] = []
        if self.dummy_root is not None:
            order.append(self.dummy_root)
        order.extend(real)
        if self.dummy_leaf is not None:
            order.append(self.dummy_leaf)
        return order
