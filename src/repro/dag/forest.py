"""Forests and dummy nodes.

"A basic block may result in a collection of one or more DAGs, called a
*forest*.  Some construction algorithms connect all DAGs in a forest by
using a unique dummy root node as the parent of all true roots ...
Additionally, some algorithms use a unique dummy leaf node or connect
all true leaves to the block-ending branch node to ensure that the
branch is the last node to be scheduled." (paper section 2)
"""

from __future__ import annotations

from repro.dep import DepType
from repro.dag.graph import Dag, DagNode


def forest_roots(dag: Dag) -> list[DagNode]:
    """True roots of the forest (dummy nodes excluded)."""
    return [n for n in dag.nodes
            if not n.is_dummy and all(a.parent.is_dummy for a in n.in_arcs)]


def forest_leaves(dag: Dag) -> list[DagNode]:
    """True leaves of the forest (dummy nodes excluded)."""
    return [n for n in dag.nodes
            if not n.is_dummy and all(a.child.is_dummy for a in n.out_arcs)]


def forest_components(dag: Dag) -> list[list[DagNode]]:
    """Connected components of the (undirected view of the) forest.

    Dummy nodes are ignored; each component is returned in node-id
    order.
    """
    real = [n for n in dag.nodes if not n.is_dummy]
    seen: set[int] = set()
    components: list[list[DagNode]] = []
    for start in real:
        if start.id in seen:
            continue
        stack = [start]
        seen.add(start.id)
        component: list[DagNode] = []
        while stack:
            node = stack.pop()
            component.append(node)
            for arc in node.out_arcs:
                other = arc.child
                if not other.is_dummy and other.id not in seen:
                    seen.add(other.id)
                    stack.append(other)
            for arc in node.in_arcs:
                other = arc.parent
                if not other.is_dummy and other.id not in seen:
                    seen.add(other.id)
                    stack.append(other)
        component.sort(key=lambda n: n.id)
        components.append(component)
    return components


def attach_dummy_root(dag: Dag) -> DagNode:
    """Connect all true roots under a unique dummy root (delay 0 arcs).

    The dummy root represents the initial candidate list for a
    forward scheduling pass.  Idempotent.
    """
    if dag.dummy_root is not None:
        return dag.dummy_root
    roots = forest_roots(dag)
    dummy = dag.add_node(None, execution_time=0)
    dag.dummy_root = dummy
    for root in roots:
        dag.add_arc(dummy, root, DepType.RAW, 0)
    return dummy


def attach_dummy_leaf(dag: Dag) -> DagNode:
    """Connect all true leaves to a unique dummy leaf.

    The arc delay is the leaf's execution time, so the dummy leaf's
    earliest start time equals the block's critical-path length --
    exactly what the Schlansker EST/LST formulation needs.  Idempotent.
    """
    if dag.dummy_leaf is not None:
        return dag.dummy_leaf
    leaves = forest_leaves(dag)
    dummy = dag.add_node(None, execution_time=0)
    dag.dummy_leaf = dummy
    for leaf in leaves:
        dag.add_arc(leaf, dummy, DepType.RAW, leaf.execution_time)
    return dummy
