"""Transitive-arc analysis.

"A transitive arc is a parent-to-child connection between two nodes
that also have an indirect ancestor-to-descendant connection through
intermediate nodes." (paper section 2)

The paper's Figure 1 argument: a transitive arc is *timing-essential*
when its delay exceeds the total delay of every alternative path, so
removing it corrupts earliest-execution-time and delay-sum heuristics.
This module classifies arcs, finds the timing-essential ones, and can
strip transitive arcs (the Landskov policy the paper recommends
against) so the damage can be measured.
"""

from __future__ import annotations

from repro.dag.bitmap import ReachabilityMap, compute_reachability
from repro.dag.graph import Arc, Dag


def classify_arcs(dag: Dag,
                  rmap: ReachabilityMap | None = None) -> dict[Arc, bool]:
    """Label every arc as transitive (True) or essential (False).

    An arc ``u -> v`` is transitive iff some *other* child ``w`` of
    ``u`` reaches ``v``.

    Args:
        dag: the DAG to analyze.
        rmap: a precomputed reachability map, or None to compute one.
    """
    if rmap is None:
        rmap = compute_reachability(dag)
    labels: dict[Arc, bool] = {}
    for node in dag.nodes:
        for arc in node.out_arcs:
            transitive = any(
                other.child is not arc.child
                and rmap.reaches(other.child.id, arc.child.id)
                for other in node.out_arcs)
            labels[arc] = transitive
    return labels


def longest_alternative_delay(dag: Dag, arc: Arc) -> int | None:
    """Longest total delay from ``arc.parent`` to ``arc.child`` not
    using ``arc`` itself.

    Returns None when no alternative path exists (the arc is
    essential).  Runs a longest-path DP over the parent's descendant
    cone, in node-id (= topological) order.
    """
    source, target = arc.parent, arc.child
    best: dict[int, int] = {source.id: 0}
    order = dag.topological_order()
    start = next(i for i, n in enumerate(order) if n is source)
    for node in order[start:]:
        here = best.get(node.id)
        if here is None:
            continue
        for out in node.out_arcs:
            if out is arc:
                continue
            child_id = out.child.id
            candidate = here + out.delay
            if candidate > best.get(child_id, -1):
                best[child_id] = candidate
    return best.get(target.id)


def timing_essential_arcs(dag: Dag,
                          rmap: ReachabilityMap | None = None) -> list[Arc]:
    """Transitive arcs whose delay exceeds every alternative path.

    These are exactly the arcs Figure 1 warns about: structurally
    redundant but carrying timing information (e.g. a 20-cycle RAW arc
    bridging a WAR(1)+RAW(4) path).
    """
    labels = classify_arcs(dag, rmap)
    essential: list[Arc] = []
    for arc, transitive in labels.items():
        if not transitive:
            continue
        alternative = longest_alternative_delay(dag, arc)
        if alternative is None or arc.delay > alternative:
            essential.append(arc)
    return essential


def remove_transitive_arcs(dag: Dag,
                           keep_timing_essential: bool = False) -> list[Arc]:
    """Strip transitive arcs from the DAG.

    Args:
        dag: mutated in place.
        keep_timing_essential: when True, transitive arcs whose delay
            exceeds every alternative path are retained (the policy a
            timing-aware pruner would want; the plain Landskov policy
            uses False).

    Returns:
        The arcs removed.
    """
    labels = classify_arcs(dag)
    removed: list[Arc] = []
    for arc, transitive in labels.items():
        if not transitive:
            continue
        if keep_timing_essential:
            alternative = longest_alternative_delay(dag, arc)
            if alternative is None or arc.delay > alternative:
                continue
        dag.remove_arc(arc)
        removed.append(arc)
    return removed
