"""DAG structural statistics (Tables 4 and 5 columns).

The paper reports, per benchmark and per construction approach, the
maximum and average number of children per instruction and the maximum
and average number of arcs per basic block.  :class:`ProgramDagStats`
accumulates those across the blocks of a benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.graph import Dag


@dataclass(frozen=True, slots=True)
class BlockDagStats:
    """Structural numbers for one block's DAG (dummies excluded)."""

    n_nodes: int
    n_arcs: int
    max_children: int

    @property
    def avg_children(self) -> float:
        """Average out-degree per instruction (equals arcs / nodes)."""
        return self.n_arcs / self.n_nodes if self.n_nodes else 0.0


def dag_stats(dag: Dag) -> BlockDagStats:
    """Structural statistics of one DAG, ignoring dummy nodes/arcs."""
    real = dag.real_nodes()
    n_arcs = 0
    max_children = 0
    for node in real:
        out = sum(1 for a in node.out_arcs if not a.child.is_dummy)
        n_arcs += out
        if out > max_children:
            max_children = out
    return BlockDagStats(len(real), n_arcs, max_children)


class ProgramDagStats:
    """Accumulates per-block DAG statistics across a benchmark.

    Produces the Table 4 / Table 5 columns: children/inst (max, avg)
    and arcs/basic-block (max, avg).
    """

    def __init__(self) -> None:
        self.n_blocks = 0
        self.n_instructions = 0
        self.total_arcs = 0
        self.max_children = 0
        self.max_arcs_per_block = 0

    def add(self, stats: BlockDagStats) -> None:
        """Fold in one block's statistics."""
        self.n_blocks += 1
        self.n_instructions += stats.n_nodes
        self.total_arcs += stats.n_arcs
        if stats.max_children > self.max_children:
            self.max_children = stats.max_children
        if stats.n_arcs > self.max_arcs_per_block:
            self.max_arcs_per_block = stats.n_arcs

    def add_dag(self, dag: Dag) -> None:
        """Convenience: compute and fold in one DAG's statistics."""
        self.add(dag_stats(dag))

    @property
    def avg_children(self) -> float:
        """Average children per instruction across the benchmark."""
        return (self.total_arcs / self.n_instructions
                if self.n_instructions else 0.0)

    @property
    def avg_arcs_per_block(self) -> float:
        """Average arcs per basic block across the benchmark."""
        return self.total_arcs / self.n_blocks if self.n_blocks else 0.0

    def as_row(self) -> dict[str, float | int]:
        """The Table 4/5 column values as a flat mapping."""
        return {
            "children_max": self.max_children,
            "children_avg": round(self.avg_children, 2),
            "arcs_max": self.max_arcs_per_block,
            "arcs_avg": round(self.avg_arcs_per_block, 2),
        }
