"""Reachability bit maps.

Section 2 of the paper: "These maps use one bit position per node to
indicate descendants.  Each node's map is initialized to indicate that
a node can reach itself."  The paper recommends them both for
preventing transitive arcs during backward construction and for
computing the #descendants heuristic cheaply ("the #descendants is
then merely the population count on the reachability bit map minus
one").

Python integers are arbitrary-precision bit vectors with C-speed OR
and popcount, so a map is just an ``int`` per node.
"""

from __future__ import annotations

from repro.dag.graph import Dag, DagNode

try:  # numpy is optional at this layer; see weighted_descendant_sum
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None


class ReachabilityMap:
    """Descendant bitsets, one per node id.

    The map for node ``i`` has bit ``j`` set iff ``j`` is ``i`` itself
    or a descendant of ``i``.
    """

    #: bits per machine word, for the words_touched accounting
    _WORD_BITS = 64

    def __init__(self, n_nodes: int) -> None:
        self._maps: list[int] = [1 << i for i in range(n_nodes)]
        # Initializing the map for node i writes the word holding bit
        # i, which is word i // 64 -- so the map *spans* i // 64 + 1
        # words.  Charge that span, so sizing up front and growing
        # incrementally report the same initialization cost.
        self.words_touched = sum(
            i // self._WORD_BITS + 1 for i in range(n_nodes))

    def __len__(self) -> int:
        return len(self._maps)

    def grow_to(self, n_nodes: int) -> None:
        """Extend the map set to cover ``n_nodes`` node ids.

        Each appended map is charged the number of words it spans
        (``i // 64 + 1`` for node id ``i``), matching ``__init__`` --
        a flat charge of one word per map under-counted every map for
        a node id >= 64, the same wide-block under-count ``absorb``
        used to have.
        """
        for i in range(len(self._maps), n_nodes):
            self._maps.append(1 << i)
            self.words_touched += i // self._WORD_BITS + 1

    def reaches(self, a: int, b: int) -> bool:
        """True when node ``a`` can already reach node ``b``."""
        return bool(self._maps[a] >> b & 1)

    def absorb(self, a: int, b: int) -> None:
        """Record that ``a`` now reaches everything ``b`` reaches.

        This is the paper's ``bitmap_for_a = bitmap_for_a OR
        bitmap_for_b`` step, performed when the arc a->b is inserted.
        The work charge is the number of machine words the OR actually
        spans, so blocks wider than one word cost proportionally more
        (a flat charge of 1 under-counted wide blocks).
        """
        combined = self._maps[a] | self._maps[b]
        self._maps[a] = combined
        bits = combined.bit_length()
        self.words_touched += max(
            1, (bits + self._WORD_BITS - 1) // self._WORD_BITS)

    def descendant_count(self, a: int) -> int:
        """#descendants of ``a``: popcount of its map minus one."""
        return self._maps[a].bit_count() - 1

    def descendants(self, a: int) -> list[int]:
        """Descendant node ids of ``a`` (excluding ``a``), ascending."""
        bits = self._maps[a] & ~(1 << a)
        out: list[int] = []
        while bits:
            low = bits & -bits
            out.append(low.bit_length() - 1)
            bits ^= low
        return out

    def weighted_descendant_sum(self, a: int, weights) -> int:
        """Sum of ``weights[d]`` over the descendants ``d`` of ``a``.

        Replaces the per-bit extraction loop the backward heuristic
        pass used to run per node (quadratic over dense maps): the map
        is viewed as a byte string, expanded to a 0/1 mask, and dotted
        with the weight vector in one vectorized step.  Falls back to
        the bit-extraction loop when numpy is unavailable.  Touches no
        work counters, like the other descendant accessors.
        """
        bits = self._maps[a] & ~(1 << a)
        if not bits:
            return 0
        if _np is not None:
            raw = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
            mask = _np.unpackbits(
                _np.frombuffer(raw, dtype=_np.uint8), bitorder="little")
            n = min(mask.size, len(weights))
            w = _np.asarray(weights[:n], dtype=_np.int64)
            return int(mask[:n].astype(_np.int64) @ w)
        total = 0
        while bits:
            low = bits & -bits
            total += weights[low.bit_length() - 1]
            bits ^= low
        return total

    def raw(self, a: int) -> int:
        """The raw bitset for node ``a`` (self bit included)."""
        return self._maps[a]


def compute_reachability(dag: Dag) -> ReachabilityMap:
    """Compute full descendant maps for an already-built DAG.

    Works in reverse topological order so each node ORs its children's
    completed maps -- the same discipline backward table-building uses
    incrementally.
    """
    rmap = ReachabilityMap(len(dag))
    for node in reversed(dag.topological_order()):
        for arc in node.out_arcs:
            rmap.absorb(node.id, arc.child.id)
    return rmap


def ancestor_maps(dag: Dag) -> list[int]:
    """Ancestor bitsets (self bit included), the mirror of descendants.

    Used by the Landskov-style builder, which excludes the ancestors of
    any node already connected to the new node.
    """
    maps = [1 << i for i in range(len(dag))]
    for node in dag.topological_order():
        for arc in node.out_arcs:
            maps[arc.child.id] |= maps[node.id]
    return maps
