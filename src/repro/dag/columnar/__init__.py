"""Columnar (structure-of-arrays) DAG core.

The object representation in :mod:`repro.dag.graph` walks per-node
Python objects in every hot loop.  This package holds the int-indexed
mirror of that world: opcodes, def/use occurrences, latencies, and
adjacency as packed numpy arrays (:mod:`repro.dag.columnar.block`,
:mod:`repro.dag.columnar.graph`), reachability as ``uint64`` bitmap
matrices with whole-row OR and popcount
(:mod:`repro.dag.columnar.bitmatrix`), table-driven construction as
array kernels (:mod:`repro.dag.columnar.builders`), and vectorized
forward/backward heuristic passes (:mod:`repro.dag.columnar.passes`).

The contract throughout is *byte identity* with the object path:
identical arcs (in identical order), identical heuristic annotations,
identical schedules, and identical :class:`~repro.dag.builders.base.
BuildStats` work counters -- the same discipline the pairwise cache's
replay already enforces.  The fast path is strictly opt-in
(``--columnar``); numpy is gated here so numpy-free hosts degrade with
a typed error instead of an import crash.
"""

from __future__ import annotations

from repro.errors import ReproError

try:
    import numpy  # noqa: F401 - presence probe only

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    HAVE_NUMPY = False


def require_numpy() -> None:
    """Raise a typed error when the columnar fast path is unavailable."""
    if not HAVE_NUMPY:
        raise ReproError(
            "the columnar fast path requires numpy, which is not "
            "installed; re-run without --columnar")


if HAVE_NUMPY:
    from repro.dag.columnar.bitmatrix import BitMatrix
    from repro.dag.columnar.block import ColumnarBlock
    from repro.dag.columnar.builders import ColumnarTableForwardBuilder
    from repro.dag.columnar.graph import ColumnarDag
    from repro.dag.columnar.passes import (
        columnar_backward_pass,
        columnar_forward_pass,
    )

    __all__ = [
        "BitMatrix",
        "ColumnarBlock",
        "ColumnarDag",
        "ColumnarTableForwardBuilder",
        "columnar_backward_pass",
        "columnar_forward_pass",
        "HAVE_NUMPY",
        "require_numpy",
    ]
