"""Table-building forward construction over packed arrays.

:class:`ColumnarTableForwardBuilder` reproduces
:class:`repro.dag.builders.table_forward.TableForwardBuilder` exactly
-- same arcs in the same insertion order, same merge winners, same
``table_probes``/``alias_checks`` counters, same resource space -- but
replaces the per-candidate dictionary probes and per-arc object
creation with numpy kernels over the occurrence tables of a
:class:`~repro.dag.columnar.block.ColumnarBlock`.

How byte identity is kept
-------------------------

The object builder's arc stream is fully determined by a sort key we
can reconstruct: node id, phase (uses before defs), operand position,
candidate resource id (``alias_candidates`` sweeps the memory
population in intern = ascending-id order), WAW-before-WAR within one
(def, candidate), and pending-list rank for WAR arcs.  The kernel
generates every *emission* the object builder would have made, sorts
by that key, reduces duplicate (parent, child) pairs exactly as
``Dag.add_arc`` merges them (max delay wins; the first emission
attaining the max supplies dep/resource), and materializes the merged
arcs in first-emission order.

Work counters are charged in bulk *before* any arc materializes, the
same whole-field-step discipline
:meth:`repro.dag.builders.cache.ArcRecipe.replay` uses: a work budget
trips on the columnar path exactly when it would on the object path
(the one tolerated difference is the budget-trip ``spent``
diagnostic's granularity, already documented for the cache).
"""

from __future__ import annotations

import numpy as np

from repro.dag.builders.base import (
    AliasOracle,
    BuildStats,
    DagBuilder,
)
from repro.dag.columnar.block import MEM_CODE, REG_CODE, ColumnarBlock
from repro.dag.columnar.graph import DEP_OF_CODE, ColumnarDag
from repro.dag.graph import Dag
from repro.isa.resources import ResourceSpace
from repro.machine.model import MachineModel

_RAW, _WAR, _WAW = 0, 1, 2


def _group_by_rid(rids: np.ndarray, n_rids: int) -> list[np.ndarray]:
    """Occurrence indices grouped per resource id, occurrence-ordered."""
    order = np.argsort(rids, kind="stable")
    counts = np.bincount(rids, minlength=n_rids)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    return [order[bounds[i]:bounds[i + 1]] for i in range(n_rids)]


class _Emissions:
    """Append-only arc-emission accumulator (column lists)."""

    def __init__(self) -> None:
        self.parent: list[np.ndarray] = []
        self.child: list[np.ndarray] = []
        self.dep: list[np.ndarray] = []
        self.rid: list[np.ndarray] = []
        self.dpos: list[np.ndarray] = []
        self.upos: list[np.ndarray] = []
        # sort-key columns: (child, phase, operand pos, candidate,
        # WAW/WAR sub-order, pending rank)
        self.kphase: list[np.ndarray] = []
        self.kopnd: list[np.ndarray] = []
        self.kcand: list[np.ndarray] = []
        self.ksub: list[np.ndarray] = []
        self.kpend: list[np.ndarray] = []

    def add(self, parent, child, dep_code, rid, dpos, upos,
            kphase, kopnd, kcand, ksub, kpend) -> None:
        size = len(parent)

        def col(value):
            arr = np.asarray(value, dtype=np.int64)
            return np.broadcast_to(arr, (size,)) if arr.ndim == 0 else arr

        self.parent.append(col(parent))
        self.child.append(col(child))
        self.dep.append(col(dep_code))
        self.rid.append(col(rid))
        self.dpos.append(col(dpos))
        self.upos.append(col(upos))
        self.kphase.append(col(kphase))
        self.kopnd.append(col(kopnd))
        self.kcand.append(col(kcand))
        self.ksub.append(col(ksub))
        self.kpend.append(col(kpend))

    def columns(self):
        cat = (lambda parts: np.concatenate(parts) if parts
               else np.zeros(0, dtype=np.int64))
        return tuple(cat(parts) for parts in (
            self.parent, self.child, self.dep, self.rid, self.dpos,
            self.upos, self.kphase, self.kopnd, self.kcand, self.ksub,
            self.kpend))


def table_forward_kernel(cb: ColumnarBlock, machine: MachineModel,
                         oracle: AliasOracle, stats: BuildStats):
    """Run table-building forward construction over packed arrays.

    Returns ``(parent, child, dep_code, delay, resource_rid,
    n_merged)`` with the merged arc set in first-emission order.
    Charges ``alias_checks`` (through ``oracle``) and ``table_probes``
    to ``stats`` -- totals identical to the object builder's.
    """
    space = cb.space
    n_rids = len(space)
    mem_ids = list(space.memory_ids)

    # --- alias closure over the full memory population --------------
    # Every unordered pair of interned memory ids is disambiguated
    # exactly once by the object builder too (the later id's first
    # occurrence sweeps all earlier ids), so consulting them up front
    # charges the same alias_checks total.
    partners: dict[int, list[int]] = {k: [k] for k in mem_ids}
    for a in range(len(mem_ids)):
        ka = mem_ids[a]
        ra = space.resource(ka)
        for b in range(a + 1, len(mem_ids)):
            kb = mem_ids[b]
            if oracle.aliases(ka, ra, kb, space.resource(kb)):
                partners[ka].append(kb)
                partners[kb].append(ka)

    defs_of = _group_by_rid(cb.d_rid, n_rids)
    uses_of = _group_by_rid(cb.u_rid, n_rids)

    # --- table_probes: candidate count per occurrence ----------------
    # Non-memory occurrences probe their own id once; a memory
    # occurrence at node j probes every aliasing partner already
    # interned (first_node <= j, node-level cutoff: a node interns all
    # its operands before its sweeps).
    probes = 0
    partner_first: dict[int, np.ndarray] = {}
    for k in mem_ids:
        partner_first[k] = np.sort(cb.first_node[partners[k]])
    for k in range(n_rids):
        n_occ = len(defs_of[k]) + len(uses_of[k])
        if not n_occ:
            continue
        if cb.rid_kind[k] != MEM_CODE:
            probes += n_occ
            continue
        pfn = partner_first[k]
        occ_nodes = np.concatenate(
            (cb.d_node[defs_of[k]], cb.u_node[uses_of[k]]))
        probes += int(
            np.searchsorted(pfn, occ_nodes, side="right").sum())
    stats.table_probes += probes

    # --- emissions, one candidate resource id at a time --------------
    out = _Emissions()
    for k in range(n_rids):
        writers = defs_of[k]
        is_mem = cb.rid_kind[k] == MEM_CODE
        if is_mem:
            group = partners[k]
            reads = (np.sort(np.concatenate([uses_of[m] for m in group]))
                     if group else np.zeros(0, dtype=np.intp))
            covers = (np.sort(np.concatenate([defs_of[m] for m in group]))
                      if group else np.zeros(0, dtype=np.intp))
            fk = cb.first_node[k]
            reads = reads[cb.u_node[reads] >= fk]
            covers = covers[cb.d_node[covers] >= fk]
        else:
            reads = uses_of[k]
            covers = writers
        wnodes = cb.d_node[writers]
        wpos = cb.d_pos[writers]

        # RAW: each read probes last_def[k]; the last writer strictly
        # before the reading node (tables update after both phases).
        if len(writers) and len(reads):
            rnodes = cb.u_node[reads]
            sel = np.searchsorted(wnodes, rnodes, side="left") - 1
            ok = sel >= 0
            if ok.any():
                sel = sel[ok]
                rsel = reads[ok]
                rn = rnodes[ok]
                upos = cb.u_pos[rsel]
                out.add(parent=wnodes[sel], child=rn, dep_code=_RAW,
                        rid=k, dpos=wpos[sel], upos=upos,
                        kphase=0, kopnd=upos, kcand=k, ksub=0, kpend=0)

        # WAW: each covering def probes last_def[k] the same way.
        if len(writers) and len(covers):
            cnodes = cb.d_node[covers]
            sel = np.searchsorted(wnodes, cnodes, side="left") - 1
            ok = sel >= 0
            if ok.any():
                sel = sel[ok]
                csel = covers[ok]
                out.add(parent=wnodes[sel], child=cnodes[ok],
                        dep_code=_WAW, rid=k, dpos=0, upos=0,
                        kphase=1, kopnd=cb.d_pos[csel], kcand=k,
                        ksub=0, kpend=0)

        # WAR: uses of exactly k pend until a covering def flushes
        # them (in append order); later defs reach them transitively.
        # Each pending use is flushed by the first cover at a strictly
        # later node, so its arc target is one searchsorted away.
        appends = uses_of[k]
        if len(appends) and len(covers):
            anodes = cb.u_node[appends]
            cnodes = cb.d_node[covers]
            cover_for = np.searchsorted(cnodes, anodes, side="right")
            ok = cover_for < len(covers)
            if ok.any():
                asel = appends[ok]
                cf = cover_for[ok]
                # pending-list rank: position within each contiguous
                # run of appends flushed by the same cover
                run_start = np.flatnonzero(np.concatenate(
                    ([True], cf[1:] != cf[:-1])))
                run_len = np.diff(np.concatenate(
                    (run_start, [len(cf)])))
                pend = (np.arange(len(cf))
                        - np.repeat(run_start, run_len))
                cov = covers[cf]
                out.add(parent=cb.u_node[asel],
                        child=cb.d_node[cov], dep_code=_WAR,
                        rid=cb.d_rid[cov], dpos=0, upos=0,
                        kphase=1, kopnd=cb.d_pos[cov], kcand=k,
                        ksub=1, kpend=pend)

    (parent, child, dep, rid, dpos, upos,
     kphase, kopnd, kcand, ksub, kpend) = out.columns()
    n_emissions = len(parent)
    if not n_emissions:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty.astype(np.int8), empty, empty, 0

    # --- delays (vectorized LatencyModel) ----------------------------
    lat = machine.latency
    delay = np.empty(n_emissions, dtype=np.int64)
    delay[dep == _WAR] = max(1, lat.war_delay)
    delay[dep == _WAW] = max(1, lat.waw_delay)
    raw = np.flatnonzero(dep == _RAW)
    if raw.size:
        rp, rc = parent[raw], child[raw]
        d = cb.exec_time[rp].copy()
        if lat.pair_second_extra:
            d += lat.pair_second_extra * (
                cb.is_load_double[rp] & (dpos[raw] == 1))
        if lat.raw_store_forward_discount:
            hit = cb.is_store[rc] & (cb.rid_kind[rid[raw]] == REG_CODE)
            d[hit] = np.maximum(
                1, d[hit] - lat.raw_store_forward_discount)
        if lat.bypass_second_operand_penalty:
            d += lat.bypass_second_operand_penalty * (upos[raw] >= 1)
        delay[raw] = np.maximum(1, d)

    # --- replay order, then merge like Dag.add_arc -------------------
    order = np.lexsort((kpend, ksub, kcand, kopnd, kphase, child))
    parent, child, dep, rid, delay = (
        parent[order], child[order], dep[order], rid[order],
        delay[order])
    pair = parent * np.int64(cb.n + 1) + child
    uniq, first_idx = np.unique(pair, return_index=True)
    winner_order = np.lexsort((np.arange(n_emissions), -delay, pair))
    sorted_pairs = pair[winner_order]
    heads = np.flatnonzero(np.concatenate(
        ([True], sorted_pairs[1:] != sorted_pairs[:-1])))
    winners = winner_order[heads]          # aligned with sorted uniq
    insertion = np.argsort(first_idx, kind="stable")
    w = winners[insertion]
    n_merged = n_emissions - len(uniq)
    return (parent[w], child[w], dep[w].astype(np.int8), delay[w],
            rid[w], n_merged)


class ColumnarTableForwardBuilder(DagBuilder):
    """Table-building forward construction, columnar fast path.

    Drop-in for :class:`~repro.dag.builders.table_forward.
    TableForwardBuilder` behind the same :class:`DagBuilder` contract:
    ``build`` returns a byte-identical DAG, stats, and resource space.
    ``cache_key`` deliberately matches the object builder so recorded
    recipes replay interchangeably between the two.
    """

    name = "table forward (columnar)"

    @property
    def cache_key(self) -> str:
        return "TableForwardBuilder"

    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        cb = ColumnarBlock.from_instructions(
            [node.instr for node in dag.nodes], self.machine, space)
        parent, child, dep, delay, rid, n_merged = table_forward_kernel(
            cb, self.machine, oracle, stats)
        nodes = dag.nodes
        resource = space.resource
        for p, c, d, dl, r in zip(
                parent.tolist(), child.tolist(), dep.tolist(),
                delay.tolist(), rid.tolist()):
            dag.add_arc(nodes[p], nodes[c], DEP_OF_CODE[d], dl,
                        resource(r))
        dag.n_merged_arcs = n_merged

    def build_packed(self, block, stats: BuildStats | None = None):
        """Packed construction with no object-DAG materialization.

        The table-building fast path the benchmarks measure: returns
        ``(ColumnarDag, BuildStats)`` without creating any per-arc
        Python objects.  ``ColumnarDag.to_dag()`` materializes the
        identical object DAG on demand.
        """
        if stats is None:
            stats = BuildStats()
        space = ResourceSpace()
        oracle = AliasOracle(self.alias_policy, stats)
        cb = ColumnarBlock.from_block(block, self.machine, space)
        parent, child, dep, delay, rid, n_merged = table_forward_kernel(
            cb, self.machine, oracle, stats)
        stats.arcs_added = len(parent)
        stats.arcs_merged = n_merged
        cdag = ColumnarDag(
            n_nodes=cb.n, parent=parent, child=child, dep=dep,
            delay=delay, resource_rid=rid, n_merged_arcs=n_merged,
            space=space, instrs=cb.instrs, exec_time=cb.exec_time)
        return cdag, stats
