"""Reachability as a ``uint64`` bitmap matrix.

The object path (:class:`repro.dag.bitmap.ReachabilityMap`) keeps one
arbitrary-precision int per node; :class:`BitMatrix` keeps the same
bitsets as rows of an ``n x ceil(n/64)`` ``uint64`` matrix, so the
paper's ``bitmap_a |= bitmap_b`` step is a whole-row OR and the
``#descendants`` heuristic is a row popcount -- no per-word Python
loop.

``words_touched`` accounting deliberately matches ``ReachabilityMap``
charge for charge: initialization charges the ``i // 64 + 1`` words
each map spans, and an absorb charges the words up to the highest set
bit of the combined row.  Identical absorb sequences therefore report
identical word counts in either representation.
"""

from __future__ import annotations

import sys

import numpy as np

_WORD_BITS = 64

#: whole-matrix popcount; numpy >= 2.0 has a ufunc for it
_POPCOUNT = getattr(np, "bitwise_count", None)


class BitMatrix:
    """Descendant bitsets as rows of a packed ``uint64`` matrix.

    Row ``i`` has bit ``j`` set iff ``j`` is ``i`` itself or a
    descendant of ``i`` (the self bit mirrors the paper's "initialized
    to indicate that a node can reach itself").
    """

    def __init__(self, n_nodes: int) -> None:
        self.n = n_nodes
        self.n_words = (n_nodes + _WORD_BITS - 1) // _WORD_BITS
        self._rows = np.zeros((n_nodes, self.n_words), dtype=np.uint64)
        if n_nodes:
            idx = np.arange(n_nodes)
            self._rows[idx, idx // _WORD_BITS] = np.left_shift(
                np.uint64(1), (idx % _WORD_BITS).astype(np.uint64))
        self.words_touched = sum(
            i // _WORD_BITS + 1 for i in range(n_nodes))

    def __len__(self) -> int:
        return self.n

    def absorb(self, a: int, b: int) -> None:
        """Whole-row ``rows[a] |= rows[b]``; charge the words spanned."""
        row = self._rows[a]
        np.bitwise_or(row, self._rows[b], out=row)
        nz = np.flatnonzero(row)
        # row a always holds its self bit, so nz is never empty
        self.words_touched += int(nz[-1]) + 1

    def reaches(self, a: int, b: int) -> bool:
        """True when node ``a`` can already reach node ``b``."""
        word = self._rows[a, b // _WORD_BITS]
        return bool((int(word) >> (b % _WORD_BITS)) & 1)

    def row_int(self, a: int) -> int:
        """Row ``a`` as an arbitrary-precision int (self bit included),
        bit-compatible with ``ReachabilityMap.raw``."""
        total = 0
        for w, word in enumerate(self._rows[a].tolist()):
            total |= word << (w * _WORD_BITS)
        return total

    def descendant_counts(self) -> np.ndarray:
        """#descendants per node: row popcount minus the self bit."""
        if self.n == 0:
            return np.zeros(0, dtype=np.int64)
        if _POPCOUNT is not None:
            counts = _POPCOUNT(self._rows).sum(axis=1, dtype=np.int64)
        else:  # pragma: no cover - numpy < 2.0
            bits = np.unpackbits(self._rows.view(np.uint8), axis=1)
            counts = bits.sum(axis=1, dtype=np.int64)
        return counts - 1

    def weighted_sums(self, weights) -> np.ndarray:
        """Per row, the sum of ``weights[d]`` over its descendants.

        The matrix is expanded to a 0/1 mask in row chunks and dotted
        with the weight vector; the self bit's contribution is
        subtracted afterwards.
        """
        w = np.asarray(weights, dtype=np.int64)[:self.n]
        out = np.empty(self.n, dtype=np.int64)
        if self.n == 0:
            return out
        if sys.byteorder != "little":  # pragma: no cover - BE hosts
            for i in range(self.n):
                bits = self.row_int(i) & ~(1 << i)
                total = 0
                while bits:
                    low = bits & -bits
                    total += int(w[low.bit_length() - 1])
                    bits ^= low
                out[i] = total
            return out
        row_bytes = self.n_words * 8
        chunk = max(1, (1 << 22) // max(1, row_bytes))
        for start in range(0, self.n, chunk):
            rows = self._rows[start:start + chunk]
            bits = np.unpackbits(
                np.ascontiguousarray(rows).view(np.uint8), axis=1,
                bitorder="little")[:, :self.n]
            out[start:start + chunk] = bits.astype(np.int64) @ w
        return out - w
