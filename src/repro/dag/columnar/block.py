"""Int-indexed structure-of-arrays view of a basic block.

:class:`ColumnarBlock` packs everything the table-driven construction
kernel needs into flat numpy arrays: per-node opcodes, execution
times, annulled flags and latency-relevant opcode predicates, plus the
def/use occurrence tables (node, resource id, operand position) in
exactly the order the object builders visit them.

Interning discipline matters for byte identity: operands are interned
into the :class:`~repro.isa.resources.ResourceSpace` per node, defs
before uses, precisely like
:func:`repro.dag.builders.base.intern_node_operands` -- so resource
ids, the memory population, and every id-ordered sweep match the
object path.  ``defs_and_uses`` results are memoized per
(mnemonic, operands) because windowed and unrolled workloads repeat
instruction bodies many times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstructionClass
from repro.isa.resources import (
    ResourceKind,
    ResourceSpace,
    defs_and_uses,
)
from repro.machine.model import MachineModel

#: dense codes for Resource.kind, used by the latency kernel
KIND_CODES = {ResourceKind.REG: 0, ResourceKind.CC: 1,
              ResourceKind.SPECIAL: 2, ResourceKind.MEM: 3}
MEM_CODE = KIND_CODES[ResourceKind.MEM]
REG_CODE = KIND_CODES[ResourceKind.REG]


@dataclass
class ColumnarBlock:
    """One basic block as packed arrays.

    Attributes:
        n: number of instructions (== nodes).
        space: the resource space the occurrence tables index into.
        instrs: the source instructions (for materialization back into
            the object world).
        opcode_id: per-node index into ``opcode_names``.
        opcode_names: interned mnemonic table.
        exec_time: per-node operation latency (``int64``).
        annulled: per-node delay-slot annulled flag.
        is_store: per-node STORE-class predicate (RAW store-forward
            discount).
        is_load_double: per-node double-word-LOAD predicate (load-pair
            skew).
        d_node / d_rid / d_pos: def occurrences in node-major order --
            node id, interned resource id, position in the def list.
        u_node / u_rid / u_pos: use occurrences, likewise.
        first_node: per resource id, the node at which the id was
            interned (candidate sweeps only see ids interned at or
            before the probing node).
        rid_kind: per resource id, its :data:`KIND_CODES` code.
    """

    n: int
    space: ResourceSpace
    instrs: list[Instruction]
    opcode_id: np.ndarray
    opcode_names: list[str]
    exec_time: np.ndarray
    annulled: np.ndarray
    is_store: np.ndarray
    is_load_double: np.ndarray
    d_node: np.ndarray
    d_rid: np.ndarray
    d_pos: np.ndarray
    u_node: np.ndarray
    u_rid: np.ndarray
    u_pos: np.ndarray
    first_node: np.ndarray
    rid_kind: np.ndarray

    @classmethod
    def from_instructions(cls, instrs, machine: MachineModel,
                          space: ResourceSpace | None = None
                          ) -> "ColumnarBlock":
        """Pack a sequence of instructions against ``machine``.

        ``space`` is populated in the same first-seen order as the
        object builders (per node: defs, then uses); pass the space a
        builder handed you to keep ids aligned.
        """
        instrs = list(instrs)
        if space is None:
            space = ResourceSpace()
        n = len(instrs)

        # Pass 1: collapse repeated bodies onto (mnemonic, operands)
        # keys so interning and defs_and_uses run once per distinct
        # instruction; key ids are assigned in first-appearance order.
        key_of: dict = {}
        key_instrs: list[Instruction] = []
        first_j: list[int] = []
        key_ids = np.empty(n, dtype=np.int64)
        annulled = np.zeros(n, dtype=bool)
        for j, instr in enumerate(instrs):
            key = (instr.opcode.mnemonic, instr.operands)
            try:
                kid = key_of.get(key)
            except TypeError:  # unhashable operand; unique key
                key, kid = None, None
            if kid is None:
                kid = len(key_instrs)
                if key is not None:
                    key_of[key] = kid
                key_instrs.append(instr)
                first_j.append(j)
            key_ids[j] = kid
            annulled[j] = instr.annulled

        # Resources interned before this block (a shared space) keep
        # their original nodes unknowable; treat them as always live.
        first_node: list[int] = [0] * len(space)
        intern = space.intern

        # Pass 2: intern each distinct instruction once, at its first
        # occurrence, defs before uses.  Keys are visited in
        # first-appearance order, so resource ids and first_node come
        # out exactly as a sequential per-node intern would have
        # produced them (later occurrences only re-intern).
        n_keys = len(key_instrs)
        kd_rids: list[list[int]] = []
        ku_rids: list[list[int]] = []
        opcode_ids: dict[str, int] = {}
        opcode_names: list[str] = []
        kid_oid = np.empty(n_keys, dtype=np.int64)
        kid_exec = np.empty(n_keys, dtype=np.int64)
        kid_store = np.zeros(n_keys, dtype=bool)
        kid_ld = np.zeros(n_keys, dtype=bool)
        exec_memo: dict[str, int] = {}
        for kid, instr in enumerate(key_instrs):
            op = instr.opcode
            oid = opcode_ids.get(op.mnemonic)
            if oid is None:
                oid = opcode_ids[op.mnemonic] = len(opcode_names)
                opcode_names.append(op.mnemonic)
            kid_oid[kid] = oid
            et = exec_memo.get(op.mnemonic)
            if et is None:
                et = exec_memo[op.mnemonic] = machine.execution_time(instr)
            kid_exec[kid] = et
            kid_store[kid] = op.iclass is InstructionClass.STORE
            kid_ld[kid] = (op.double
                           and op.iclass is InstructionClass.LOAD)
            defs, uses = defs_and_uses(instr)
            j = first_j[kid]
            for rids, resources in ((kd_rids, defs), (ku_rids, uses)):
                row: list[int] = []
                for resource in resources:
                    rid = intern(resource)
                    if rid == len(first_node):
                        first_node.append(j)
                    row.append(rid)
                rids.append(row)

        # Occurrence tables, assembled by broadcasting each key's rid
        # pattern over the nodes that carry it (node-major, in-list
        # position order -- row-major boolean selection guarantees it).
        def occurrence_tables(k_rids: list[list[int]]):
            lens = np.fromiter(
                (len(r) for r in k_rids), np.int64, n_keys)
            nodes = np.repeat(np.arange(n), lens[key_ids])
            width = int(lens.max()) if n_keys else 0
            table = np.zeros((n_keys, width), dtype=np.int64)
            mask = np.zeros((n_keys, width), dtype=bool)
            for kid, row in enumerate(k_rids):
                table[kid, :len(row)] = row
                mask[kid, :len(row)] = True
            sel = mask[key_ids]
            rid = table[key_ids][sel]
            pos = np.broadcast_to(np.arange(width), (n, width))[sel]
            return nodes, rid, pos

        d_node, d_rid, d_pos = occurrence_tables(kd_rids)
        u_node, u_rid, u_pos = occurrence_tables(ku_rids)

        rid_kind = np.fromiter(
            (KIND_CODES[space.resource(r).kind] for r in range(len(space))),
            dtype=np.int8, count=len(space))
        return cls(
            n=n, space=space, instrs=instrs,
            opcode_id=kid_oid[key_ids].astype(np.int32),
            opcode_names=opcode_names,
            exec_time=kid_exec[key_ids], annulled=annulled,
            is_store=kid_store[key_ids],
            is_load_double=kid_ld[key_ids],
            d_node=d_node, d_rid=d_rid, d_pos=d_pos,
            u_node=u_node, u_rid=u_rid, u_pos=u_pos,
            first_node=np.asarray(first_node, dtype=np.int64),
            rid_kind=rid_kind)

    @classmethod
    def from_block(cls, block, machine: MachineModel,
                   space: ResourceSpace | None = None) -> "ColumnarBlock":
        """Pack a :class:`~repro.cfg.basic_block.BasicBlock`."""
        return cls.from_instructions(block.instructions, machine, space)
