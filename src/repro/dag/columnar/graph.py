"""Packed adjacency: the columnar mirror of :class:`repro.dag.graph.Dag`.

:class:`ColumnarDag` stores the *merged* arc set as parallel arrays in
first-emission order -- the same order ``Dag.add_arc`` would have
created the arcs, so materializing back into the object world
reproduces ``out_arcs``/``arcs()`` ordering exactly (the discipline
:class:`~repro.dag.builders.cache.ArcRecipe` replay established).

The converter covers the builder-produced DAG, i.e. real nodes only;
dummy root/leaf nodes are attached by downstream passes after
materialization, exactly as they are after an object build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dag.graph import Dag
from repro.dep import DepType
from repro.errors import DagError
from repro.isa.instruction import Instruction
from repro.isa.resources import ResourceSpace

#: dense dependence-type codes for the packed ``dep`` column
DEP_CODES = {DepType.RAW: 0, DepType.WAR: 1, DepType.WAW: 2}
DEP_OF_CODE = (DepType.RAW, DepType.WAR, DepType.WAW)


@dataclass
class ColumnarDag:
    """A dependence DAG as parallel arrays.

    Attributes:
        n_nodes: number of (real) nodes.
        parent / child: arc endpoints (node ids, ``int64``).
        dep: dependence-type codes (:data:`DEP_CODES`).
        delay: arc weights in cycles.
        resource_rid: resource id per arc into ``space`` (-1 for a
            resource-less arc).
        n_merged_arcs: duplicate emissions merged away when the arc set
            was reduced (mirrors ``Dag.n_merged_arcs``).
        space: the resource space ``resource_rid`` indexes.
        instrs: source instructions, for materialization.
        exec_time: per-node operation latencies.
    """

    n_nodes: int
    parent: np.ndarray
    child: np.ndarray
    dep: np.ndarray
    delay: np.ndarray
    resource_rid: np.ndarray
    n_merged_arcs: int
    space: ResourceSpace
    instrs: list[Instruction] = field(default_factory=list)
    exec_time: np.ndarray | None = None

    @property
    def n_arcs(self) -> int:
        return len(self.parent)

    @classmethod
    def from_dag(cls, dag: Dag,
                 space: ResourceSpace | None = None) -> "ColumnarDag":
        """Pack an object DAG (real nodes only).

        Arcs are captured in ``dag.arcs()`` order; ``space`` defaults
        to a fresh resource space that interns each arc's resource
        (pass the build's own space to keep ids aligned with it).
        """
        real = dag.real_nodes()
        if any(node.id != i for i, node in enumerate(real)):
            raise DagError("from_dag requires contiguous real-node ids")
        if space is None:
            space = ResourceSpace()
        parent: list[int] = []
        child: list[int] = []
        dep: list[int] = []
        delay: list[int] = []
        rid: list[int] = []
        for arc in dag.arcs():
            if arc.parent.is_dummy or arc.child.is_dummy:
                continue
            parent.append(arc.parent.id)
            child.append(arc.child.id)
            dep.append(DEP_CODES[arc.dep])
            delay.append(arc.delay)
            rid.append(-1 if arc.resource is None
                       else space.intern(arc.resource))
        return cls(
            n_nodes=len(real),
            parent=np.asarray(parent, dtype=np.int64),
            child=np.asarray(child, dtype=np.int64),
            dep=np.asarray(dep, dtype=np.int8),
            delay=np.asarray(delay, dtype=np.int64),
            resource_rid=np.asarray(rid, dtype=np.int64),
            n_merged_arcs=dag.n_merged_arcs,
            space=space,
            instrs=[node.instr for node in real],
            exec_time=np.asarray(
                [node.execution_time for node in real], dtype=np.int64))

    def to_dag(self) -> Dag:
        """Materialize back into the object representation.

        Arcs are replayed in stored (first-emission) order through
        ``Dag.add_arc``, which recomputes every ``a``-class heuristic;
        ``n_merged_arcs`` is restored directly, like a cache replay.
        """
        dag = Dag()
        if self.exec_time is None:  # pragma: no cover - defensive
            raise DagError("cannot materialize without execution times")
        for instr, et in zip(self.instrs, self.exec_time.tolist()):
            dag.add_node(instr, int(et))
        nodes = dag.nodes
        resource = self.space.resource
        for p, c, d, dl, r in zip(
                self.parent.tolist(), self.child.tolist(),
                self.dep.tolist(), self.delay.tolist(),
                self.resource_rid.tolist()):
            dag.add_arc(nodes[p], nodes[c], DEP_OF_CODE[d], dl,
                        None if r < 0 else resource(r))
        dag.n_merged_arcs = self.n_merged_arcs
        return dag
