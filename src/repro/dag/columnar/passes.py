"""Vectorized forward/backward heuristic passes.

Mirrors :mod:`repro.heuristics.passes` over packed arc arrays: the
same max/min recurrences, evaluated frontier-by-frontier (Kahn rounds)
with ``np.maximum.at`` / ``np.minimum.at`` scatter instead of a
per-node Python walk.  All arithmetic is integer, so every annotation
-- EST, LST, slack, path/delay extrema, descendant aggregates -- is
exactly equal to the object passes' output; the functions share the
object drivers' signature so the runner can swap them in as the
``--columnar`` heuristic driver.

Descendant aggregates use the :class:`~repro.dag.columnar.bitmatrix.
BitMatrix` whole-row OR in the same reverse-topological absorb order
as ``_backward_visit``, so even ``words_touched`` matches the object
path's ``ReachabilityMap`` charge for charge.
"""

from __future__ import annotations

import numpy as np

from repro.dag.columnar.bitmatrix import BitMatrix
from repro.dag.graph import Dag


def _arc_arrays(dag: Dag):
    """(parent ids, child ids, delays) over every arc, dummies included."""
    arcs = dag.arcs()
    m = len(arcs)
    parent = np.fromiter((a.parent.id for a in arcs), np.int64, m)
    child = np.fromiter((a.child.id for a in arcs), np.int64, m)
    delay = np.fromiter((a.delay for a in arcs), np.int64, m)
    return parent, child, delay


def _csr(keys: np.ndarray, n: int):
    """Group arc indices by ``keys``: (order, starts, counts)."""
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=n)
    starts = np.concatenate(([0], np.cumsum(counts)))
    return order, starts, counts


def _gather(order, starts, counts, frontier):
    """Arc indices belonging to the frontier nodes, concatenated."""
    cnt = counts[frontier]
    total = int(cnt.sum())
    if not total:
        return np.zeros(0, dtype=np.intp)
    flat = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
    return order[np.repeat(starts[frontier], cnt) + flat]


def columnar_forward_pass(dag: Dag) -> None:
    """Vectorized :func:`repro.heuristics.passes.forward_pass`."""
    n = len(dag.nodes)
    parent, child, delay = _arc_arrays(dag)
    est = np.zeros(n, dtype=np.int64)
    max_path = np.zeros(n, dtype=np.int64)
    max_delay = np.zeros(n, dtype=np.int64)
    order, starts, counts = _csr(parent, n)
    indeg = np.bincount(child, minlength=n)
    frontier = np.flatnonzero(indeg == 0)
    while frontier.size:
        arcs_i = _gather(order, starts, counts, frontier)
        if arcs_i.size:
            p, c, d = parent[arcs_i], child[arcs_i], delay[arcs_i]
            np.maximum.at(est, c, est[p] + d)
            np.maximum.at(max_delay, c, max_delay[p] + d)
            np.maximum.at(max_path, c, max_path[p] + 1)
            np.subtract.at(indeg, c, 1)
            touched = np.unique(c)
            frontier = touched[indeg[touched] == 0]
        else:
            frontier = np.zeros(0, dtype=np.int64)
    for node, e, mp, md in zip(dag.nodes, est.tolist(),
                               max_path.tolist(), max_delay.tolist()):
        node.est = e
        node.max_path_from_root = mp
        node.max_delay_from_root = md


def columnar_backward_pass(dag: Dag, descendants: bool = False,
                           require_est: bool = True) -> None:
    """Vectorized :func:`repro.heuristics.passes.backward_pass`.

    Same signature and semantics as the object reverse-walk driver
    (and therefore also the level driver -- section 4's conclusion 4
    says they agree), so the resilient runner can use it verbatim as
    a heuristic driver.
    """
    if require_est and all(n.est == 0 for n in dag.nodes):
        columnar_forward_pass(dag)
    nodes = dag.nodes
    n = len(nodes)
    est = np.fromiter((node.est for node in nodes), np.int64, n)
    exec_t = np.fromiter(
        (node.execution_time for node in nodes), np.int64, n)
    real = np.fromiter(
        (not node.is_dummy for node in nodes), bool, n)
    critical = int((est[real] + exec_t[real]).max()) if real.any() else 0
    dag.critical_length = critical  # for incremental updates
    parent, child, delay = _arc_arrays(dag)
    lst = critical - exec_t
    max_path = np.zeros(n, dtype=np.int64)
    max_delay = np.zeros(n, dtype=np.int64)
    order, starts, counts = _csr(child, n)
    outdeg = np.bincount(parent, minlength=n)
    frontier = np.flatnonzero(outdeg == 0)
    while frontier.size:
        arcs_i = _gather(order, starts, counts, frontier)
        if arcs_i.size:
            p, c, d = parent[arcs_i], child[arcs_i], delay[arcs_i]
            np.maximum.at(max_path, p, max_path[c] + 1)
            np.maximum.at(max_delay, p, max_delay[c] + d)
            np.minimum.at(lst, p, lst[c] - d)
            np.subtract.at(outdeg, p, 1)
            touched = np.unique(p)
            frontier = touched[outdeg[touched] == 0]
        else:
            frontier = np.zeros(0, dtype=np.int64)
    slack = lst - est
    for node, mp, md, ls, sl in zip(
            nodes, max_path.tolist(), max_delay.tolist(),
            lst.tolist(), slack.tolist()):
        node.max_path_to_leaf = mp
        node.max_delay_to_leaf = md
        node.lst = ls
        node.slack = sl
    if descendants:
        bm = BitMatrix(n)
        for node in reversed(dag.topological_order()):
            for arc in node.out_arcs:
                bm.absorb(node.id, arc.child.id)
        n_desc = bm.descendant_counts().tolist()
        sums = bm.weighted_sums(exec_t).tolist()
        for node in nodes:
            node.n_descendants = n_desc[node.id]
            node.sum_exec_descendants = sums[node.id]
