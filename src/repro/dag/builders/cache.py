"""Memoised per-block construction results: the pairwise-dependence cache.

The resilient runner re-derives the same dependences many times: a
fallback-chain retry rebuilds the block with the next builder, ``repro
verify`` re-derives the compare-against-all reference once per builder
per block, and an unrolled loop body windows into many textually
identical blocks that each pay full construction cost.  The paper's
practicality argument (sections 2-3) is about making exactly this work
cheap, so :class:`PairwiseCache` memoises it at two levels, keyed by a
fingerprint of the block text, the alias policy, and the machine:

* the **pairwise level** shares the
  :class:`~repro.dag.builders.compare_all.PairwiseData` bitsets (and
  the alias-oracle verdicts behind them) between the builders that use
  them, so a chain retry does not re-run the memory disambiguation
  sweep;
* the **recipe level** records, per builder, the finished arc set and
  the work-counter delta of a successful construction; a later build of
  the same block replays the arcs directly and *charges the recorded
  counters* to the caller's stats object.

Charging the recorded counters is what keeps cached runs
indistinguishable from uncached ones: a
:class:`~repro.runner.watchdog.BudgetedStats` work budget trips on a
replayed build exactly when it would have tripped on a fresh one, so
fallback decisions, journal records, and schedules are byte-identical
with the cache on or off -- only the wall clock changes.  (The one
visible difference: a budget-trip diagnostic may report a larger
``spent`` value, because replay charges counters in whole-field steps.)

A recipe is recorded only after a construction *completes*; an attempt
that trips its budget mid-build leaves no partial recipe behind.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.base import BuildStats
from repro.dag.graph import Dag
from repro.dep import DepType
from repro.isa.memory import AliasPolicy
from repro.isa.resources import Resource, ResourceSpace
from repro.machine.model import MachineModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dag.builders.compare_all import PairwiseData

#: one recorded arc: (parent id, child id, dep, delay, resource)
ArcSpec = tuple[int, int, DepType, int, Resource | None]


def block_fingerprint(block: BasicBlock, policy: AliasPolicy,
                      machine: MachineModel) -> str:
    """Content fingerprint of everything that determines a block's DAG.

    Two blocks with the same fingerprint produce identical dependence
    DAGs under every builder: the rendered instruction text fixes the
    resources, the policy fixes the aliasing verdicts, and the machine
    fixes the arc delays.  Labels are deliberately excluded
    (``Instruction.render`` omits them), so the identical bodies of an
    unrolled or windowed loop share one cache entry.
    """
    digest = hashlib.sha256()
    digest.update(policy.name.encode("utf-8"))
    digest.update(machine.name.encode("utf-8"))
    for instr in block.instructions:
        digest.update(b"\x00")
        digest.update(instr.render().encode("utf-8"))
        if instr.annulled:
            digest.update(b"\x01")
    return digest.hexdigest()


@dataclass
class PairwiseBundle:
    """The shared pairwise-dependence state for one block fingerprint.

    Attributes:
        space: the resource space the pairwise bitsets index into
            (both pairwise builders intern in forward node order, so
            one space serves them all).
        verdicts: the alias-oracle memo, shared so replayed detailed
            arc passes hit it instead of re-consulting the policy.
        pairwise: the comparison bitsets.
        alias_checks: unique disambiguations the original sweep
            counted -- charged to any build that reuses the bundle, so
            its counters match a fresh build's exactly.
    """

    space: ResourceSpace
    verdicts: dict[tuple[int, int], bool]
    pairwise: "PairwiseData"
    alias_checks: int


@dataclass(frozen=True)
class ArcRecipe:
    """A finished construction, ready to replay.

    Attributes:
        arcs: the final (merged) arc set in parent-id order.
        stats: work-counter delta of the recorded fresh build.
        n_merged_arcs: duplicate-arc merges the fresh build performed.
        space: the resource space of the recorded build (returned on
            replay so downstream consumers see consistent ids).
    """

    arcs: tuple[ArcSpec, ...]
    stats: BuildStats
    n_merged_arcs: int
    space: ResourceSpace

    @staticmethod
    def snapshot(dag: Dag, stats_delta: BuildStats,
                 space: ResourceSpace) -> "ArcRecipe":
        """Record a completed construction."""
        arcs = tuple((arc.parent.id, arc.child.id, arc.dep, arc.delay,
                      arc.resource) for arc in dag.arcs())
        return ArcRecipe(arcs, stats_delta, dag.n_merged_arcs, space)

    def replay(self, dag: Dag, stats: BuildStats) -> None:
        """Re-create the recorded arcs and charge the recorded work.

        The charge happens *first*: a budgeted stats object must trip
        before any arc materialises, mirroring a fresh build where the
        work precedes the arcs.
        """
        stats.merge(self.stats)
        nodes = dag.nodes
        for parent_id, child_id, dep, delay, resource in self.arcs:
            dag.add_arc(nodes[parent_id], nodes[child_id], dep, delay,
                        resource)
        dag.n_merged_arcs = self.n_merged_arcs


@dataclass
class CacheEntry:
    """Everything cached for one block fingerprint."""

    bundle: PairwiseBundle | None = None
    recipes: dict[str, ArcRecipe] = field(default_factory=dict)


class PairwiseCache:
    """LRU cache of per-block construction state.

    One instance serves a whole run (CLI ``schedule``/``verify``, a
    batch-runner worker, the benchmark harness); pass it to any
    :class:`~repro.dag.builders.base.DagBuilder` via the ``cache``
    keyword, or let :func:`repro.runner.fallback.resolve_chain` and
    :func:`repro.verify.checker.verify_schedule` thread it through.

    Not process- or thread-shared: parallel batch workers each build
    their own (the benefit is intra-worker reuse; the results are
    identical either way).
    """

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: recipe misses that still reused a shared pairwise bundle --
        #: cheaper than a cold build (no alias sweep), counted apart so
        #: reports can tell bundle reuse from truly cold construction.
        self.bundle_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry_for(self, block: BasicBlock, policy: AliasPolicy,
                  machine: MachineModel) -> CacheEntry:
        """The (possibly fresh) cache entry for a block's fingerprint."""
        key = block_fingerprint(block, policy, machine)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry()
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        return entry

    def resize(self, max_entries: int) -> None:
        """Change the LRU cap, evicting oldest entries if shrinking.

        The serve engine clamps warm caches under overload pressure
        and restores them afterwards; counters are untouched.
        """
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (emergency memory release); counters
        survive so hit-rate history stays honest."""
        self._entries.clear()

    def info(self) -> dict[str, int]:
        """Hit/miss/occupancy counters for reports and benchmarks."""
        return {"hits": self.hits, "misses": self.misses,
                "bundle_hits": self.bundle_hits,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "recipes": sum(len(e.recipes)
                               for e in self._entries.values())}
