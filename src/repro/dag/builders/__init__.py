"""The five DAG construction algorithms (paper section 3).

* :class:`CompareAllBuilder` -- ``n**2`` forward, compare against all;
* :class:`LandskovBuilder` -- ``n**2`` forward with leaf-first
  transitive-arc pruning (kept to measure its Figure 1 damage);
* :class:`TableForwardBuilder` -- table building, forward pass
  (Krishnamurthy);
* :class:`TableBackwardBuilder` -- table building, backward pass
  (Hunnicutt);
* :class:`BitmapBackwardBuilder` -- backward table building with
  reachability-bitmap arc suppression.

``ALL_BUILDERS`` lists them with the compare-against-all reference
first (it produces the arc superset the others are checked against).
"""

from repro.dag.builders.base import (
    AliasOracle,
    BuildOutcome,
    BuildStats,
    DagBuilder,
    NodeOperands,
    intern_node_operands,
)
from repro.dag.builders.bitmap_backward import BitmapBackwardBuilder
from repro.dag.builders.cache import (
    ArcRecipe,
    CacheEntry,
    PairwiseBundle,
    PairwiseCache,
    block_fingerprint,
)
from repro.dag.builders.compare_all import CompareAllBuilder
from repro.dag.builders.landskov import LandskovBuilder
from repro.dag.builders.table_backward import TableBackwardBuilder
from repro.dag.builders.table_forward import TableForwardBuilder

#: every construction algorithm, reference (arc superset) first
ALL_BUILDERS: tuple[type[DagBuilder], ...] = (
    CompareAllBuilder,
    LandskovBuilder,
    TableForwardBuilder,
    TableBackwardBuilder,
    BitmapBackwardBuilder,
)

__all__ = [
    "AliasOracle",
    "ArcRecipe",
    "block_fingerprint",
    "BuildOutcome",
    "BuildStats",
    "CacheEntry",
    "DagBuilder",
    "NodeOperands",
    "PairwiseBundle",
    "PairwiseCache",
    "intern_node_operands",
    "CompareAllBuilder",
    "LandskovBuilder",
    "TableForwardBuilder",
    "TableBackwardBuilder",
    "BitmapBackwardBuilder",
    "ALL_BUILDERS",
]
