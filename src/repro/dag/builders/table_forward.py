"""Table-building forward DAG construction (Krishnamurthy-like).

One forward pass; per-resource tables replace pairwise comparison:

* ``last_def[r]`` -- the most recent definition of resource ``r``
  (RAW arcs for later uses, WAW arcs for later definitions);
* ``live_uses[r]`` -- uses of ``r`` since its last definition (WAR
  arcs).  A definition *covers* the pending uses of every resource it
  may alias: later definitions reach those uses transitively through
  the covering definition, which is exactly why this method stays
  linear-ish in block size while still -- unlike Landskov pruning --
  keeping the timing-essential transitive RAW arcs of Figure 1 (a use
  list is consulted *before* the defining instruction covers it).
"""

from __future__ import annotations

from repro.dag.builders.base import (
    AliasOracle,
    BuildStats,
    DagBuilder,
    alias_candidates,
    intern_node_operands,
)
from repro.dag.graph import Dag, DagNode
from repro.dep import DepType
from repro.isa.resources import ResourceSpace


class TableForwardBuilder(DagBuilder):
    """Table-building forward construction."""

    name = "table forward"

    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        machine = self.machine
        # rid -> (defining node, def position within its def list)
        last_def: dict[int, tuple[DagNode, int]] = {}
        # rid -> uses not yet covered by a later (aliasing) definition
        live_uses: dict[int, list[tuple[DagNode, int]]] = {}

        for node in dag.nodes:
            assert node.instr is not None
            ops = intern_node_operands(space, node)

            # Uses: RAW from the last definition of every resource the
            # use may refer to.  This runs before the node's own defs
            # are recorded, so a read-modify-write never self-arcs.
            for rid_u, upos in ops.uses:
                res_u = space.resource(rid_u)
                for rid in alias_candidates(rid_u, res_u, space, oracle):
                    stats.table_probes += 1
                    record = last_def.get(rid)
                    if record is None:
                        continue
                    parent, dpos = record
                    res_d = space.resource(rid)
                    delay = machine.arc_delay(
                        DepType.RAW, parent.instr, node.instr, res_d,
                        dpos, upos)
                    dag.add_arc(parent, node, DepType.RAW, delay, res_d)

            # Defs: WAW from the previous definition, WAR from every
            # still-uncovered use; this definition then covers them.
            for rid_d, _ in ops.defs:
                res_d = space.resource(rid_d)
                for rid in alias_candidates(rid_d, res_d, space, oracle):
                    stats.table_probes += 1
                    record = last_def.get(rid)
                    if record is not None:
                        prev, _ = record
                        delay = machine.arc_delay(
                            DepType.WAW, prev.instr, node.instr,
                            space.resource(rid))
                        dag.add_arc(prev, node, DepType.WAW, delay,
                                    space.resource(rid))
                    pending = live_uses.get(rid)
                    if pending:
                        for user, _ in pending:
                            delay = machine.arc_delay(
                                DepType.WAR, user.instr, node.instr,
                                res_d)
                            dag.add_arc(user, node, DepType.WAR, delay,
                                        res_d)
                        live_uses[rid] = []

            # Update the tables only after both phases, so a node's own
            # operands never interact with each other.
            for rid_d, dpos in ops.defs:
                last_def[rid_d] = (node, dpos)
            for rid_u, upos in ops.uses:
                live_uses.setdefault(rid_u, []).append((node, upos))
