"""The ``n**2`` compare-against-all builder (Warren-like, forward pass).

Every instruction is compared against every earlier instruction; any
def/use overlap (RAW), def/def overlap (WAW), or use/def overlap (WAR)
adds an arc.  Because *every* dependent pair is connected directly,
this method keeps all transitive arcs -- including the timing-essential
kind Figure 1 warns about -- and its work grows quadratically with the
block size (the Table 4 observation that motivates table building).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.builders.base import (
    AliasOracle,
    BuildStats,
    DagBuilder,
    NodeOperands,
    intern_node_operands,
)
from repro.dag.graph import Dag
from repro.dep import DepType
from repro.isa.resources import ResourceKind, ResourceSpace
from repro.machine.model import MachineModel


@dataclass
class PairwiseData:
    """Precomputed per-node bitsets for pairwise dependence tests.

    ``def_closure``/``use_closure`` expand every memory id to its
    may-alias closure, so ``closure & raw`` intersections are *exact*
    dependence screens (no false positives, no false negatives) and the
    detailed arc pass only runs on genuinely dependent pairs.
    """

    operands: list[NodeOperands]
    def_raw: list[int]
    use_raw: list[int]
    def_closure: list[int]
    use_closure: list[int]


def _rid_closures(space: ResourceSpace, oracle: AliasOracle) -> list[int]:
    """Per-rid bitset of ids that may alias the rid (self included)."""
    closures = []
    for rid in range(len(space)):
        resource = space.resource(rid)
        mask = 1 << rid
        if resource.kind is ResourceKind.MEM:
            for other in space.memory_ids:
                if other != rid and oracle.aliases(
                        rid, resource, other, space.resource(other)):
                    mask |= 1 << other
        closures.append(mask)
    return closures


def prepare_pairwise(dag: Dag, space: ResourceSpace, oracle: AliasOracle,
                     stats: BuildStats) -> PairwiseData:
    """Intern all nodes and build the comparison bitsets."""
    operands = [intern_node_operands(space, node) for node in dag.nodes]
    closures = _rid_closures(space, oracle)
    def_raw, use_raw, def_closure, use_closure = [], [], [], []
    for ops in operands:
        dr = ur = dc = uc = 0
        for rid, _ in ops.defs:
            dr |= 1 << rid
            dc |= closures[rid]
        for rid, _ in ops.uses:
            ur |= 1 << rid
            uc |= closures[rid]
        def_raw.append(dr)
        use_raw.append(ur)
        def_closure.append(dc)
        use_closure.append(uc)
    return PairwiseData(operands, def_raw, use_raw, def_closure,
                        use_closure)


def shared_pairwise(builder: DagBuilder, dag: Dag, space: ResourceSpace,
                    oracle: AliasOracle,
                    stats: BuildStats) -> PairwiseData:
    """Pairwise bitsets for a (possibly cached) build.

    Without an active cache entry this is exactly
    :func:`prepare_pairwise`.  With one, the entry's pairwise bundle is
    reused when present -- the *same object* across chain attempts --
    and the alias-check count the original sweep paid is charged to
    ``stats``, so a reusing build's counters match a fresh build's.
    The first pairwise-using build of a block records the bundle.
    """
    entry = builder.cache_entry
    if entry is not None and entry.bundle is not None:
        stats.alias_checks += entry.bundle.alias_checks
        return entry.bundle.pairwise
    before = stats.alias_checks
    pdata = prepare_pairwise(dag, space, oracle, stats)
    if entry is not None:
        from repro.dag.builders.cache import PairwiseBundle
        entry.bundle = PairwiseBundle(
            space=space, verdicts=oracle._cache, pairwise=pdata,
            alias_checks=stats.alias_checks - before)
    return pdata


def pair_depends(pdata: PairwiseData, i: int, j: int) -> bool:
    """Exact test: does node ``j`` depend on earlier node ``i``?"""
    return bool(pdata.def_closure[i] & pdata.use_raw[j]
                or pdata.def_closure[i] & pdata.def_raw[j]
                or pdata.use_closure[i] & pdata.def_raw[j])


def add_pair_arcs(dag: Dag, machine: MachineModel, space: ResourceSpace,
                  oracle: AliasOracle, pdata: PairwiseData,
                  i: int, j: int) -> None:
    """Add every dependence arc from node ``i`` to later node ``j``.

    Parallel arcs through different resources merge inside
    :meth:`~repro.dag.graph.Dag.add_arc`, keeping the maximum delay.
    """
    parent, child = dag.nodes[i], dag.nodes[j]
    assert parent.instr is not None and child.instr is not None
    oi, oj = pdata.operands[i], pdata.operands[j]
    for rid_d, dpos in oi.defs:
        res_d = space.resource(rid_d)
        for rid_u, upos in oj.uses:
            if oracle.aliases(rid_d, res_d, rid_u, space.resource(rid_u)):
                delay = machine.arc_delay(DepType.RAW, parent.instr,
                                          child.instr, res_d, dpos, upos)
                dag.add_arc(parent, child, DepType.RAW, delay, res_d)
        for rid_w, _ in oj.defs:
            if oracle.aliases(rid_d, res_d, rid_w, space.resource(rid_w)):
                delay = machine.arc_delay(DepType.WAW, parent.instr,
                                          child.instr, res_d)
                dag.add_arc(parent, child, DepType.WAW, delay, res_d)
    for rid_u, _ in oi.uses:
        res_u = space.resource(rid_u)
        for rid_d, dpos in oj.defs:
            res_d = space.resource(rid_d)
            if oracle.aliases(rid_u, res_u, rid_d, res_d):
                delay = machine.arc_delay(DepType.WAR, parent.instr,
                                          child.instr, res_d)
                dag.add_arc(parent, child, DepType.WAR, delay, res_d)


class CompareAllBuilder(DagBuilder):
    """``n**2`` forward construction: compare each node against all
    earlier nodes and connect every dependent pair directly."""

    name = "n**2 forward"
    uses_pairwise = True

    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        pdata = shared_pairwise(self, dag, space, oracle, stats)
        for j in range(len(dag)):
            for i in range(j):
                stats.comparisons += 1
                if pair_depends(pdata, i, j):
                    add_pair_arcs(dag, self.machine, space, oracle,
                                  pdata, i, j)
