"""Landskov-style ``n**2`` forward builder with transitive-arc pruning.

When a new node is compared against earlier nodes *latest first*, any
node already connected (directly or transitively) to the new node --
and all of that node's ancestors -- can be skipped: connecting to an
ancestor again would only create a transitive arc.  The paper
recommends *against* this policy because a transitive arc can be
timing-essential (Figure 1): this builder deliberately reproduces the
information loss so its cost can be measured.
"""

from __future__ import annotations

from repro.dag.builders.base import (
    AliasOracle,
    BuildStats,
    DagBuilder,
)
from repro.dag.builders.compare_all import (
    add_pair_arcs,
    pair_depends,
    shared_pairwise,
)
from repro.dag.graph import Dag
from repro.isa.resources import ResourceSpace


class LandskovBuilder(DagBuilder):
    """``n**2`` forward with ancestor pruning (no transitive arcs)."""

    name = "landskov"
    uses_pairwise = True

    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        pdata = shared_pairwise(self, dag, space, oracle, stats)
        # Ancestor bitsets (self bit included), final for all i < j by
        # the time node j is processed.
        ancestors = [1 << i for i in range(len(dag))]
        for j in range(len(dag)):
            excluded = 0
            for i in range(j - 1, -1, -1):
                if excluded >> i & 1:
                    continue
                stats.comparisons += 1
                if pair_depends(pdata, i, j):
                    add_pair_arcs(dag, self.machine, space, oracle,
                                  pdata, i, j)
                    ancestors[j] |= ancestors[i]
                    excluded |= ancestors[i]
