"""Table-building backward DAG construction (Hunnicutt [7]).

One backward pass over the block.  For each definition the method
connects RAW arcs down to every later use that is not shadowed by a
closer definition of the same resource, and WAW arcs down to later
definitions up to the same barrier; for each use it connects a WAR arc
to the *first* later definition that may alias it.  These rules are
the exact mirror of the forward tables, so -- as the paper observes --
"the two table building directions are essentially equivalent": both
produce the same arc set, including Figure 1's timing-essential
transitive RAW arc.

The sweep is factored into :meth:`TableBackwardBuilder._sweep` with a
pluggable arc sink so the reachability-bitmap variant
(:mod:`repro.dag.builders.bitmap_backward`) can reuse it.
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.dag.builders.base import (
    AliasOracle,
    BuildStats,
    DagBuilder,
    alias_candidates,
    intern_node_operands,
)
from repro.dag.graph import Dag, DagNode
from repro.dep import DepType
from repro.isa.resources import Resource, ResourceSpace

#: arc sink signature: (parent, child, dep, delay, resource)
ArcSink = Callable[[DagNode, DagNode, DepType, int, "Resource"], None]


class TableBackwardBuilder(DagBuilder):
    """Table-building backward construction."""

    name = "table backward"

    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        def emit(parent: DagNode, child: DagNode, dep: DepType,
                 delay: int, resource: Resource) -> None:
            dag.add_arc(parent, child, dep, delay, resource)

        self._sweep(dag, space, oracle, stats, emit)

    def _sweep(self, dag: Dag, space: ResourceSpace, oracle: AliasOracle,
               stats: BuildStats, emit: ArcSink,
               uses_first: bool = False) -> None:
        """Run the backward pass, sending every arc through ``emit``.

        Args:
            uses_first: process each node's uses before its defs (the
                insertion-order knob that matters only to the bitmap
                variant; the plain table method's arc set is
                order-independent because duplicate arcs merge by
                maximum delay).
        """
        machine = self.machine
        # rid -> (nearest later defining node, def position)
        nearest_def: dict[int, tuple[DagNode, int]] = {}
        # rid -> all later definitions / uses (unordered; the barrier
        # filter below does the shadowing)
        later_defs: dict[int, list[tuple[DagNode, int]]] = {}
        later_uses: dict[int, list[tuple[DagNode, int]]] = {}

        def do_defs(node: DagNode, defs: list[tuple[int, int]]) -> None:
            assert node.instr is not None
            for rid_d, dpos in defs:
                res_d = space.resource(rid_d)
                # Barrier: a later definition of the *same* resource
                # shadows this one from anything beyond it.
                stats.table_probes += 1
                shadow = nearest_def.get(rid_d)
                barrier = shadow[0].id if shadow else sys.maxsize
                for rid in alias_candidates(rid_d, res_d, space, oracle):
                    stats.table_probes += 1
                    for user, upos in later_uses.get(rid, ()):
                        if user.id <= barrier:
                            delay = machine.arc_delay(
                                DepType.RAW, node.instr, user.instr,
                                res_d, dpos, upos)
                            emit(node, user, DepType.RAW, delay, res_d)
                    for definer, _ in later_defs.get(rid, ()):
                        if definer.id <= barrier:
                            delay = machine.arc_delay(
                                DepType.WAW, node.instr, definer.instr,
                                res_d)
                            emit(node, definer, DepType.WAW, delay,
                                 res_d)

        def do_uses(node: DagNode, uses: list[tuple[int, int]]) -> None:
            assert node.instr is not None
            for rid_u, _ in uses:
                res_u = space.resource(rid_u)
                # WAR goes to the first later definition that may alias
                # this use; definitions beyond it are reached through
                # that definition's own WAW/covering arcs.
                first: tuple[DagNode, int] | None = None
                for rid in alias_candidates(rid_u, res_u, space, oracle):
                    stats.table_probes += 1
                    record = nearest_def.get(rid)
                    if record is not None and (
                            first is None
                            or record[0].id < first[0].id):
                        first = (record[0], rid)
                if first is not None:
                    definer, rid = first
                    res_d = space.resource(rid)
                    delay = machine.arc_delay(
                        DepType.WAR, node.instr, definer.instr, res_d)
                    emit(node, definer, DepType.WAR, delay, res_d)

        for node in reversed(dag.nodes):
            ops = intern_node_operands(space, node)
            if uses_first:
                do_uses(node, ops.uses)
                do_defs(node, ops.defs)
            else:
                do_defs(node, ops.defs)
                do_uses(node, ops.uses)
            # Record this node only after both phases (a node never
            # depends on itself).
            for rid_d, dpos in ops.defs:
                nearest_def[rid_d] = (node, dpos)
                later_defs.setdefault(rid_d, []).append((node, dpos))
            for rid_u, upos in ops.uses:
                later_uses.setdefault(rid_u, []).append((node, upos))
