"""Backward table building with reachability-bitmap arc suppression.

Section 2's alternative to leaf-first pruning: during backward
construction each node keeps a descendant bitmap; an arc is inserted
only when its target is not already reachable, and the target's bitmap
is then OR-ed into the source's.  Whether the Figure 1 timing-essential
arc survives depends purely on *insertion order*: processing defs
before uses (the paper's pseudocode order) inserts the long RAW arc
before the short WAR arc that would shadow it, while the opposite
order (``uses_first=True``) loses the arc -- the same information loss
the paper charges against Landskov pruning.
"""

from __future__ import annotations

from repro.dag.bitmap import ReachabilityMap
from repro.dag.builders.base import AliasOracle, BuildStats
from repro.dag.builders.table_backward import TableBackwardBuilder
from repro.dag.graph import Dag, DagNode
from repro.dep import DepType
from repro.isa.memory import AliasPolicy
from repro.isa.resources import Resource, ResourceSpace
from repro.machine.model import MachineModel


class BitmapBackwardBuilder(TableBackwardBuilder):
    """Backward table building that prevents (most) transitive arcs.

    Args:
        machine: timing model.
        alias_policy: memory disambiguation policy override.
        uses_first: insert each node's WAR arcs before its RAW/WAW
            arcs, demonstrating the order sensitivity discussed above.
    """

    name = "bitmap backward"

    def __init__(self, machine: MachineModel,
                 alias_policy: AliasPolicy | None = None,
                 uses_first: bool = False, *,
                 cache: object | None = None) -> None:
        super().__init__(machine, alias_policy, cache=cache)
        self.uses_first = uses_first
        self._rmap: ReachabilityMap | None = None

    @property
    def cache_key(self) -> str:
        # uses_first changes the constructed arc set (that is its
        # point), so the two variants must not share recipes.
        return f"{type(self).__name__}:uses_first={self.uses_first}"

    @property
    def reachability(self) -> ReachabilityMap | None:
        """The reachability map built during the last construction.

        None before the first build and after a cache-replayed build
        (replay re-creates the recorded arcs without re-running the
        bitmap sweep; use
        :func:`repro.dag.bitmap.compute_reachability` if the map is
        needed for a replayed DAG).
        """
        return self._rmap

    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        rmap = ReachabilityMap(len(dag))
        self._rmap = rmap
        # Directly connected pairs: a repeat emission for an existing
        # arc (e.g. both words of a double-register pair) must still
        # reach add_arc so the pair merges to the maximum delay --
        # reachability only suppresses *indirect* (transitive)
        # connections.
        direct: set[tuple[int, int]] = set()

        def emit(parent: DagNode, child: DagNode, dep: DepType,
                 delay: int, resource: Resource) -> None:
            stats.bitmap_ops += 1
            pair = (parent.id, child.id)
            if pair not in direct and rmap.reaches(*pair):
                stats.arcs_suppressed += 1
                return
            dag.add_arc(parent, child, dep, delay, resource)
            direct.add(pair)
            stats.bitmap_ops += 1
            rmap.absorb(parent.id, child.id)

        self._sweep(dag, space, oracle, stats, emit,
                    uses_first=self.uses_first)
