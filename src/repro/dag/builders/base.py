"""Shared machinery for DAG construction algorithms.

Every builder in this package follows the paper's section 3 framing:
one pass over the block's instructions (forward or backward), resources
interned to dense ids, an aliasing oracle consulted for memory
references, and machine-independent work counters so the Table 4/5
comparisons do not depend on wall clocks.

:class:`DagBuilder` is the template: it creates the node set in
original instruction order (node ``id`` == instruction position, the
invariant the published-algorithm wrappers and the verifier rely on)
and delegates arc construction to the subclass hook.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator

from repro.cfg.basic_block import BasicBlock
from repro.dag.graph import Dag, DagNode
from repro.isa.memory import AliasPolicy, may_alias
from repro.isa.resources import Resource, ResourceKind, ResourceSpace
from repro.machine.model import MachineModel


@dataclass
class BuildStats:
    """Machine-independent work counters for one build.

    Attributes:
        comparisons: node-pair dependence tests (the ``n**2`` cost).
        table_probes: resource-table lookups (the table-building cost).
        alias_checks: distinct memory-expression pairs disambiguated.
        arcs_added: arcs present in the finished DAG.
        arcs_merged: duplicate (parent, child) arcs merged away.
        arcs_suppressed: arcs skipped by reachability-bitmap insertion.
        bitmap_ops: reachability-bitmap queries and updates.
    """

    comparisons: int = 0
    table_probes: int = 0
    alias_checks: int = 0
    arcs_added: int = 0
    arcs_merged: int = 0
    arcs_suppressed: int = 0
    bitmap_ops: int = 0

    def merge(self, other: "BuildStats") -> None:
        """Accumulate another build's counters into this one."""
        self.comparisons += other.comparisons
        self.table_probes += other.table_probes
        self.alias_checks += other.alias_checks
        self.arcs_added += other.arcs_added
        self.arcs_merged += other.arcs_merged
        self.arcs_suppressed += other.arcs_suppressed
        self.bitmap_ops += other.bitmap_ops


class AliasOracle:
    """Memoized wrapper over :func:`repro.isa.memory.may_alias`.

    The paper's implementation note -- resource tables grow "whenever a
    new memory address expression is encountered" -- means each builder
    asks the same may-alias question once per *pair of expressions*,
    not once per instruction pair.  The oracle memoizes on the
    symmetric id pair so :attr:`BuildStats.alias_checks` counts unique
    disambiguation work.

    Args:
        policy: the disambiguation policy to consult.
        stats: the counter sink for unique consultations.
        verdicts: an externally owned memo to read and extend (the
            pairwise cache shares one across builds of the same block;
            a memo hit is never counted, exactly like an intra-build
            hit).  Default: a private memo.
    """

    def __init__(self, policy: AliasPolicy, stats: BuildStats,
                 verdicts: dict[tuple[int, int], bool] | None = None
                 ) -> None:
        self.policy = policy
        self.stats = stats
        self._cache: dict[tuple[int, int], bool] = (
            {} if verdicts is None else verdicts)

    def aliases(self, rid_a: int, res_a: Resource,
                rid_b: int, res_b: Resource) -> bool:
        """May the two memory resources refer to the same location?

        Non-memory resources conflict only with themselves; the same
        id trivially aliases itself without a policy consultation.
        """
        if rid_a == rid_b:
            return True
        if (res_a.kind is not ResourceKind.MEM
                or res_b.kind is not ResourceKind.MEM):
            return False
        key = (rid_a, rid_b) if rid_a < rid_b else (rid_b, rid_a)
        verdict = self._cache.get(key)
        if verdict is None:
            assert res_a.mem is not None and res_b.mem is not None
            self.stats.alias_checks += 1
            verdict = may_alias(res_a.mem, res_b.mem, self.policy)
            self._cache[key] = verdict
        return verdict


@dataclass
class NodeOperands:
    """One node's interned defs/uses, with positions for latency lookup.

    Each entry is ``(rid, position)`` where ``position`` is the index
    within the def/use list of :func:`repro.isa.resources.defs_and_uses`
    -- the quantity the latency model's ``def_index``/``use_index``
    parameters expect (load-pair skew, asymmetric bypass).
    """

    defs: list[tuple[int, int]] = field(default_factory=list)
    uses: list[tuple[int, int]] = field(default_factory=list)


def intern_node_operands(space: ResourceSpace,
                         node: DagNode) -> NodeOperands:
    """Intern a node's instruction operands into the resource space."""
    assert node.instr is not None
    def_ids, use_ids = space.intern_instruction(node.instr)
    return NodeOperands(
        defs=[(rid, i) for i, rid in enumerate(def_ids)],
        uses=[(rid, i) for i, rid in enumerate(use_ids)])


@dataclass
class BuildOutcome:
    """Everything a build produces.

    Attributes:
        dag: the dependence DAG (node ids == instruction positions).
        stats: the builder's work counters.
        space: the per-block resource space (Table 3's unique-memory-
            expression population lives here).
    """

    dag: Dag
    stats: BuildStats
    space: ResourceSpace


def alias_candidates(rid: int, resource: Resource, space: ResourceSpace,
                     oracle: AliasOracle) -> Iterator[int]:
    """Resource ids that may name the same location as ``rid``.

    For registers and condition codes the id itself is the only
    candidate; for memory expressions the sweep covers the interned
    memory population -- the aliasing sweep the paper's table builders
    perform against their memory rows.
    """
    if resource.kind is not ResourceKind.MEM:
        yield rid
        return
    for other in space.memory_ids:
        if oracle.aliases(rid, resource, other, space.resource(other)):
            yield other


class DagBuilder(abc.ABC):
    """Base class for DAG construction algorithms.

    Subclasses implement :meth:`_construct`; the template method
    :meth:`build` creates the nodes, runs the subclass pass, and
    finalizes the arc counters.

    Args:
        machine: timing model supplying execution times and arc delays.
        alias_policy: memory disambiguation policy; None selects the
            machine's default.
        cache: an optional
            :class:`~repro.dag.builders.cache.PairwiseCache`; when
            given, completed constructions are recorded against the
            block's fingerprint and later builds of the same block
            replay the recorded arcs (charging the recorded work
            counters, so budgets and schedules are unchanged).
    """

    #: display name (used by pipeline reports and benchmarks)
    name: str = "abstract"

    #: True for builders whose construction starts from
    #: :func:`repro.dag.builders.compare_all.prepare_pairwise`; only
    #: those can share a cache entry's pairwise bundle.
    uses_pairwise: bool = False

    def __init__(self, machine: MachineModel,
                 alias_policy: AliasPolicy | None = None, *,
                 cache: "object | None" = None) -> None:
        self.machine = machine
        self.alias_policy = (machine.alias_policy if alias_policy is None
                             else alias_policy)
        self.cache = cache
        #: the active cache entry during a cached build (consulted by
        #: the pairwise-sharing builders), None otherwise
        self.cache_entry = None

    @property
    def cache_key(self) -> str:
        """Recipe key within a cache entry: one per builder variant."""
        return type(self).__name__

    def build(self, block: BasicBlock,
              stats: BuildStats | None = None) -> BuildOutcome:
        """Construct the dependence DAG for one basic block.

        Args:
            block: the block to analyze.
            stats: work-counter sink; pass a
                :class:`repro.runner.watchdog.BudgetedStats` to bound
                the construction work (the runner's cooperative
                watchdog).  Default: a fresh :class:`BuildStats`.
        """
        dag = Dag()
        for instr in block.instructions:
            dag.add_node(instr, self.machine.execution_time(instr))
        if stats is None:
            stats = BuildStats()
        space: ResourceSpace | None = None
        verdicts = None
        entry = None
        if self.cache is not None:
            entry = self.cache.entry_for(block, self.alias_policy,
                                         self.machine)
            recipe = entry.recipes.get(self.cache_key)
            if recipe is not None:
                self.cache.hits += 1
                recipe.replay(dag, stats)
                stats.arcs_added = dag.n_arcs
                stats.arcs_merged = dag.n_merged_arcs
                return BuildOutcome(dag=dag, stats=stats,
                                    space=recipe.space)
            self.cache.misses += 1
            if self.uses_pairwise and entry.bundle is not None:
                # Not a plain cold build: the pairwise sweep is reused
                # even though this builder's arcs must be constructed.
                self.cache.bundle_hits += 1
                # The pairwise bitsets index the bundle's resource
                # space; a reusing build must intern into the same one.
                space = entry.bundle.space
                verdicts = entry.bundle.verdicts
        if space is None:
            space = ResourceSpace()
        oracle = AliasOracle(self.alias_policy, stats, verdicts=verdicts)
        self.cache_entry = entry
        try:
            before = (stats.comparisons, stats.table_probes,
                      stats.alias_checks, stats.arcs_suppressed,
                      stats.bitmap_ops)
            self._construct(dag, space, oracle, stats)
        finally:
            self.cache_entry = None
        stats.arcs_added = dag.n_arcs
        stats.arcs_merged = dag.n_merged_arcs
        if entry is not None:
            from repro.dag.builders.cache import ArcRecipe
            delta = BuildStats(
                comparisons=stats.comparisons - before[0],
                table_probes=stats.table_probes - before[1],
                alias_checks=stats.alias_checks - before[2],
                arcs_added=dag.n_arcs,
                arcs_merged=dag.n_merged_arcs,
                arcs_suppressed=stats.arcs_suppressed - before[3],
                bitmap_ops=stats.bitmap_ops - before[4])
            entry.recipes[self.cache_key] = ArcRecipe.snapshot(
                dag, delta, space)
        return BuildOutcome(dag=dag, stats=stats, space=space)

    @abc.abstractmethod
    def _construct(self, dag: Dag, space: ResourceSpace,
                   oracle: AliasOracle, stats: BuildStats) -> None:
        """Add the dependence arcs (subclass hook)."""
