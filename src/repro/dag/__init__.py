"""Dependence DAGs: structure, reachability, transitive arcs, statistics."""

from repro.dag.graph import Arc, Dag, DagNode
from repro.dag.bitmap import ReachabilityMap
from repro.dag.forest import attach_dummy_leaf, attach_dummy_root, forest_roots
from repro.dag.transitive import (
    classify_arcs,
    remove_transitive_arcs,
    timing_essential_arcs,
)
from repro.dag.stats import BlockDagStats, dag_stats

__all__ = [
    "Arc",
    "Dag",
    "DagNode",
    "ReachabilityMap",
    "attach_dummy_root",
    "attach_dummy_leaf",
    "forest_roots",
    "classify_arcs",
    "remove_transitive_arcs",
    "timing_essential_arcs",
    "BlockDagStats",
    "dag_stats",
]
