"""Resource extraction and interning.

The dependences in section 2 of the paper are defined over *resources*:
general registers, special-purpose registers (e.g. condition codes),
and memory locations.  :func:`defs_and_uses` maps an instruction to the
resources it defines and uses; :class:`ResourceSpace` interns resources
to dense integer ids so DAG builders can use array indexing in the hot
path.

Memory references intern one resource per *unique symbolic memory
expression* -- the quantity Table 3 of the paper reports -- and the
builders apply the aliasing oracle of :mod:`repro.isa.memory` across
the population of memory resources.  This mirrors the paper's
implementation note that resource tables grow "whenever a new memory
address expression is encountered".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import OperandError
from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import CcUse, InstructionClass, OperandFormat
from repro.isa.operands import (
    ImmOperand,
    MemOperand,
    RegOperand,
    SymImmOperand,
)
from repro.isa.registers import (
    Register,
    RegisterKind,
    fp_pair,
    integer_pair,
    parse_register,
)


class ResourceKind(enum.Enum):
    """What a resource names."""

    REG = "reg"
    CC = "cc"
    SPECIAL = "special"
    MEM = "mem"


@dataclass(frozen=True, slots=True)
class Resource:
    """A schedulable resource: a register, condition code, or memory expression.

    Attributes:
        kind: the resource category.
        name: canonical name (register name, ``%icc``, or the memory
            expression key).
        mem: the structured memory expression for MEM resources, used
            by the aliasing oracle.
    """

    kind: ResourceKind
    name: str
    mem: MemExpr | None = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _reg_resource(reg: Register) -> Resource:
    if reg.kind is RegisterKind.CONDITION:
        return Resource(ResourceKind.CC, reg.name)
    if reg.kind is RegisterKind.SPECIAL:
        return Resource(ResourceKind.SPECIAL, reg.name)
    return Resource(ResourceKind.REG, reg.name)


ICC_RESOURCE = Resource(ResourceKind.CC, "%icc")
FCC_RESOURCE = Resource(ResourceKind.CC, "%fcc")
Y_RESOURCE = Resource(ResourceKind.SPECIAL, "%y")


def mem_resource(expr: MemExpr) -> Resource:
    """The resource naming one symbolic memory expression."""
    return Resource(ResourceKind.MEM, expr.key(), expr)


def _second_word(expr: MemExpr) -> MemExpr:
    """The word slot 4 bytes past ``expr`` (a double's odd half)."""
    return MemExpr(base=expr.base, index=expr.index,
                   offset=expr.offset + 4, symbol=expr.symbol)


def _mem_resources(expr: MemExpr, double: bool) -> list[Resource]:
    """Word-granular resources for one memory access.

    Double-word accesses touch two word slots; emitting both keeps the
    same-base/different-offset disambiguation sound when double and
    single accesses overlap (e.g. ``std [%fp-12]`` vs ``ld [%fp-8]``).
    """
    resources = [mem_resource(expr)]
    if double:
        resources.append(mem_resource(_second_word(expr)))
    return resources


def _expand_pair(reg: Register, double: bool) -> list[Register]:
    """Expand a register operand to its even/odd pair for double ops."""
    if not double:
        return [reg]
    if reg.kind is RegisterKind.FLOAT:
        return list(fp_pair(reg))
    return list(integer_pair(reg))


def _append_reg(out: list[Resource], reg: Register, double: bool = False) -> None:
    """Append register resources, dropping the hard-wired zero register."""
    for r in _expand_pair(reg, double):
        if not r.is_zero:
            out.append(_reg_resource(r))


def defs_and_uses(instr: Instruction) -> tuple[list[Resource], list[Resource]]:
    """Compute the resources an instruction defines and uses.

    Args:
        instr: the instruction to analyze.

    Returns:
        ``(defs, uses)`` lists of :class:`Resource`.  Operand order is
        preserved within each list; the *first* source operand comes
        first in ``uses``, which the asymmetric-bypass latency model
        relies on (paper section 2's RS/6000 example).

    Raises:
        OperandError: if the operand tuple does not match the opcode's
            format.
    """
    op = instr.opcode
    fmt = op.fmt
    defs: list[Resource] = []
    uses: list[Resource] = []

    def reg_at(i: int) -> Register:
        operand = instr.operands[i]
        if not isinstance(operand, RegOperand):
            raise OperandError(
                f"{op.mnemonic}: operand {i} must be a register, "
                f"got {operand!r}")
        return operand.register

    def require(n: int) -> None:
        if len(instr.operands) != n:
            raise OperandError(
                f"{op.mnemonic}: expected {n} operands, "
                f"got {len(instr.operands)}")

    if fmt in (OperandFormat.ALU3, OperandFormat.ALU3_CC,
               OperandFormat.ALU3_USE_CC, OperandFormat.ALU3_USE_DEF_CC,
               OperandFormat.MULDIV, OperandFormat.MULSCC):
        require(3)
        _append_reg(uses, reg_at(0))
        second = instr.operands[1]
        if isinstance(second, RegOperand):
            _append_reg(uses, second.register)
        elif not isinstance(second, (ImmOperand, SymImmOperand)):
            raise OperandError(
                f"{op.mnemonic}: operand 1 must be register or immediate")
        _append_reg(defs, reg_at(2))
        if fmt in (OperandFormat.ALU3_CC, OperandFormat.ALU3_USE_DEF_CC,
                   OperandFormat.MULSCC):
            defs.append(ICC_RESOURCE)
        if fmt in (OperandFormat.ALU3_USE_CC,
                   OperandFormat.ALU3_USE_DEF_CC, OperandFormat.MULSCC):
            uses.append(ICC_RESOURCE)
        if fmt in (OperandFormat.MULDIV, OperandFormat.MULSCC):
            defs.append(Y_RESOURCE)
        if fmt is OperandFormat.MULSCC:
            uses.append(Y_RESOURCE)
    elif fmt is OperandFormat.CMP:
        if op.mnemonic == "tst":
            require(1)
            _append_reg(uses, reg_at(0))
        else:
            require(2)
            _append_reg(uses, reg_at(0))
            second = instr.operands[1]
            if isinstance(second, RegOperand):
                _append_reg(uses, second.register)
        defs.append(ICC_RESOURCE)
    elif fmt is OperandFormat.MOV:
        require(2)
        first = instr.operands[0]
        if isinstance(first, RegOperand):
            _append_reg(uses, first.register)
        _append_reg(defs, reg_at(1))
    elif fmt is OperandFormat.SETHI:
        require(2)
        _append_reg(defs, reg_at(1))
    elif fmt is OperandFormat.LOAD:
        require(2)
        mem = instr.mem_operand()
        if mem is None:
            raise OperandError(f"{op.mnemonic}: missing memory operand")
        for reg_name in mem.expr.address_registers:
            _append_reg(uses, parse_register(reg_name))
        uses.extend(_mem_resources(mem.expr, op.double))
        _append_reg(defs, reg_at(1), double=op.double)
    elif fmt is OperandFormat.STORE:
        require(2)
        _append_reg(uses, reg_at(0), double=op.double)
        mem = instr.mem_operand()
        if mem is None:
            raise OperandError(f"{op.mnemonic}: missing memory operand")
        for reg_name in mem.expr.address_registers:
            _append_reg(uses, parse_register(reg_name))
        defs.extend(_mem_resources(mem.expr, op.double))
    elif fmt is OperandFormat.LOADSTORE:
        # swap/ldstub: an atomic read-modify-write of one location.
        require(2)
        mem = instr.mem_operand()
        if mem is None:
            raise OperandError(f"{op.mnemonic}: missing memory operand")
        for reg_name in mem.expr.address_registers:
            _append_reg(uses, parse_register(reg_name))
        resource = mem_resource(mem.expr)
        uses.append(resource)
        if op.mnemonic == "swap":
            _append_reg(uses, reg_at(1))
        _append_reg(defs, reg_at(1))
        defs.append(resource)
    elif fmt is OperandFormat.RDY:
        require(2)
        if not (isinstance(instr.operands[0], RegOperand)
                and instr.operands[0].register.name == "%y"):
            raise OperandError(f"{op.mnemonic}: first operand must be %y")
        uses.append(Y_RESOURCE)
        _append_reg(defs, reg_at(1))
    elif fmt is OperandFormat.WRY:
        require(2)
        if not (isinstance(instr.operands[1], RegOperand)
                and instr.operands[1].register.name == "%y"):
            raise OperandError(f"{op.mnemonic}: second operand must be %y")
        first = instr.operands[0]
        if isinstance(first, RegOperand):
            _append_reg(uses, first.register)
        defs.append(Y_RESOURCE)
    elif fmt is OperandFormat.BRANCH:
        require(1)
        if op.cc_use is CcUse.ICC:
            uses.append(ICC_RESOURCE)
        elif op.cc_use is CcUse.FCC:
            uses.append(FCC_RESOURCE)
    elif fmt is OperandFormat.CALL:
        require(1)
        # A call defines the return-address register.  Calls end basic
        # blocks, so argument/clobber modeling is not needed for
        # block-local scheduling (paper section 2).
        defs.append(_reg_resource(parse_register("%o7")))
    elif fmt is OperandFormat.RETURN:
        require(0)
        ra = "%o7" if op.mnemonic == "retl" else "%i7"
        uses.append(_reg_resource(parse_register(ra)))
    elif fmt is OperandFormat.FPOP3:
        require(3)
        _append_reg(uses, reg_at(0), double=op.double)
        _append_reg(uses, reg_at(1), double=op.double)
        _append_reg(defs, reg_at(2), double=op.double)
    elif fmt is OperandFormat.FPOP2:
        require(2)
        # Conversions read/write mixed widths; model the source at the
        # opcode's precision only when the source really is double.
        src_double = op.double and op.mnemonic in ("fsqrtd", "fdtoi", "fdtos")
        dst_double = op.double and op.mnemonic not in ("fdtoi", "fdtos")
        _append_reg(uses, reg_at(0), double=src_double)
        _append_reg(defs, reg_at(1), double=dst_double)
    elif fmt is OperandFormat.FCMP:
        require(2)
        _append_reg(uses, reg_at(0), double=op.double)
        _append_reg(uses, reg_at(1), double=op.double)
        defs.append(FCC_RESOURCE)
    elif fmt is OperandFormat.NONE:
        require(0)
    else:  # pragma: no cover - table is closed
        raise OperandError(f"unhandled operand format {fmt}")

    return defs, uses


class ResourceSpace:
    """Interns :class:`Resource` objects to dense integer ids.

    A fresh space is typically created per basic block (matching the
    paper's per-block resource tables); ids are assigned in first-seen
    order, and the set of memory-expression ids is tracked separately
    because the builders' aliasing sweep iterates over exactly that
    population.
    """

    def __init__(self) -> None:
        self._ids: dict[Resource, int] = {}
        self._resources: list[Resource] = []
        self._memory_ids: list[int] = []

    def __len__(self) -> int:
        return len(self._resources)

    def intern(self, resource: Resource) -> int:
        """Return the id for ``resource``, assigning one if new."""
        rid = self._ids.get(resource)
        if rid is None:
            rid = len(self._resources)
            self._ids[resource] = rid
            self._resources.append(resource)
            if resource.kind is ResourceKind.MEM:
                self._memory_ids.append(rid)
        return rid

    def resource(self, rid: int) -> Resource:
        """The resource with id ``rid``."""
        return self._resources[rid]

    @property
    def memory_ids(self) -> tuple[int, ...]:
        """Ids of all interned memory-expression resources."""
        return tuple(self._memory_ids)

    @property
    def n_memory_exprs(self) -> int:
        """Number of unique memory expressions seen (Table 3 statistic)."""
        return len(self._memory_ids)

    def intern_instruction(
            self, instr: Instruction) -> tuple[list[int], list[int]]:
        """Intern an instruction's defs and uses; returns id lists."""
        defs, uses = defs_and_uses(instr)
        return ([self.intern(r) for r in defs],
                [self.intern(r) for r in uses])
