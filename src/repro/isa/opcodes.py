"""The opcode table for the SPARC-like target.

Each :class:`Opcode` records the *semantic shape* of an instruction:
its instruction class (which drives latency and function-unit choice in
the machine model), its operand format (which drives def/use
extraction), and its control-flow behaviour (which drives basic-block
partitioning).

Cycle counts deliberately do NOT live here -- operation latencies are a
property of the *machine*, not the ISA, and are supplied by
:mod:`repro.machine.latency`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import UnknownOpcodeError


class InstructionClass(enum.Enum):
    """Coarse operation class; the machine model assigns latencies per class."""

    IALU = "ialu"            # integer add/sub/logic/shift
    IMUL = "imul"            # integer multiply
    IDIV = "idiv"            # integer divide
    COMPARE = "compare"      # integer compare (writes %icc)
    SETHI = "sethi"          # set-high immediate
    LOAD = "load"            # memory load (int or fp destination)
    STORE = "store"          # memory store
    BRANCH = "branch"        # conditional/unconditional branch
    CALL = "call"            # procedure call
    RETURN = "return"        # procedure return
    FPADD = "fpadd"          # fp add/sub/convert/move/neg/abs
    FPMUL = "fpmul"          # fp multiply
    FPDIV = "fpdiv"          # fp divide
    FPSQRT = "fpsqrt"        # fp square root
    FPCOMPARE = "fpcompare"  # fp compare (writes %fcc)
    WINDOW = "window"        # SAVE / RESTORE register-window ops
    NOP = "nop"


class IssueClass(enum.Enum):
    """Superscalar issue class, used by the "alternate type" heuristic."""

    INT = "int"
    FP = "fp"
    MEM = "mem"
    CTRL = "ctrl"


_ISSUE_CLASS: dict[InstructionClass, IssueClass] = {
    InstructionClass.IALU: IssueClass.INT,
    InstructionClass.IMUL: IssueClass.INT,
    InstructionClass.IDIV: IssueClass.INT,
    InstructionClass.COMPARE: IssueClass.INT,
    InstructionClass.SETHI: IssueClass.INT,
    InstructionClass.LOAD: IssueClass.MEM,
    InstructionClass.STORE: IssueClass.MEM,
    InstructionClass.BRANCH: IssueClass.CTRL,
    InstructionClass.CALL: IssueClass.CTRL,
    InstructionClass.RETURN: IssueClass.CTRL,
    InstructionClass.FPADD: IssueClass.FP,
    InstructionClass.FPMUL: IssueClass.FP,
    InstructionClass.FPDIV: IssueClass.FP,
    InstructionClass.FPSQRT: IssueClass.FP,
    InstructionClass.FPCOMPARE: IssueClass.FP,
    InstructionClass.WINDOW: IssueClass.INT,
    InstructionClass.NOP: IssueClass.INT,
}


class OperandFormat(enum.Enum):
    """How an opcode's operand tuple maps onto defs and uses."""

    ALU3 = "alu3"            # op rs1, rs2_or_imm, rd
    ALU3_CC = "alu3_cc"      # op rs1, rs2_or_imm, rd  (also defines %icc)
    ALU3_USE_CC = "alu3_c"   # addx: like ALU3 but also USES %icc (carry)
    ALU3_USE_DEF_CC = "alu3_cc2"  # addxcc: uses AND defines %icc
    CMP = "cmp"              # cmp rs1, rs2_or_imm     (defines %icc)
    MOV = "mov"              # mov rs_or_imm, rd
    SETHI = "sethi"          # sethi imm, rd
    LOAD = "load"            # ld [mem], rd
    STORE = "store"          # st rs, [mem]
    LOADSTORE = "loadstore"  # swap/ldstub [mem], rd (atomic read-modify-write)
    BRANCH = "branch"        # b<cond> label
    CALL = "call"            # call label
    RETURN = "return"        # retl / ret
    FPOP3 = "fpop3"          # fop rs1, rs2, rd
    FPOP2 = "fpop2"          # fop rs, rd
    FCMP = "fcmp"            # fcmp rs1, rs2           (defines %fcc)
    MULDIV = "muldiv"        # op rs1, rs2_or_imm, rd  (also defines %y)
    MULSCC = "mulscc"        # multiply step: uses+defines %icc and %y
    RDY = "rdy"              # rd %y, rd
    WRY = "wry"              # wr rs, %y
    NONE = "none"            # nop


class CcUse(enum.Enum):
    """Which condition code a branch reads (if any)."""

    NONE = "none"
    ICC = "icc"
    FCC = "fcc"


@dataclass(frozen=True, slots=True)
class Opcode:
    """Static description of one mnemonic.

    Attributes:
        mnemonic: assembly mnemonic, lower case.
        iclass: coarse operation class (drives machine latency).
        fmt: operand format (drives def/use extraction).
        double: True for double-precision / double-word operations whose
            FP (or integer, for ``ldd``/``std``) register operands are
            even/odd pairs.
        delayed: True for control transfers with an architectural delay
            slot.
        ends_block: True when the instruction terminates a basic block
            (branches, calls, returns, and -- per the paper's SPARC
            discussion -- the register-window instructions SAVE and
            RESTORE).
        cc_use: condition code read by a conditional branch.
        conditional: True for branches that may fall through.
        description: one-line human description.
    """

    mnemonic: str
    iclass: InstructionClass
    fmt: OperandFormat
    double: bool = False
    delayed: bool = False
    ends_block: bool = False
    cc_use: CcUse = CcUse.NONE
    conditional: bool = False
    description: str = ""

    @property
    def issue_class(self) -> IssueClass:
        """Superscalar issue class for the alternate-type heuristic."""
        return _ISSUE_CLASS[self.iclass]

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.iclass in (InstructionClass.LOAD, InstructionClass.STORE)

    @property
    def is_control(self) -> bool:
        """True for branches, calls and returns."""
        return self.iclass in (InstructionClass.BRANCH, InstructionClass.CALL,
                               InstructionClass.RETURN)

    @property
    def is_float(self) -> bool:
        """True for floating-point arithmetic/compare opcodes."""
        return self.iclass in (InstructionClass.FPADD, InstructionClass.FPMUL,
                               InstructionClass.FPDIV, InstructionClass.FPSQRT,
                               InstructionClass.FPCOMPARE)


def _alu(mnemonic: str, desc: str, cc: bool = False) -> Opcode:
    return Opcode(mnemonic, InstructionClass.IALU,
                  OperandFormat.ALU3_CC if cc else OperandFormat.ALU3,
                  description=desc)


def _branch(mnemonic: str, cc_use: CcUse, desc: str,
            conditional: bool = True) -> Opcode:
    return Opcode(mnemonic, InstructionClass.BRANCH, OperandFormat.BRANCH,
                  delayed=True, ends_block=True, cc_use=cc_use,
                  conditional=conditional, description=desc)


def _fpop3(mnemonic: str, iclass: InstructionClass, double: bool,
           desc: str) -> Opcode:
    return Opcode(mnemonic, iclass, OperandFormat.FPOP3, double=double,
                  description=desc)


def _build_table() -> dict[str, Opcode]:
    ops: list[Opcode] = [
        # --- integer ALU ---------------------------------------------------
        _alu("add", "integer add"),
        _alu("sub", "integer subtract"),
        _alu("and", "bitwise and"),
        _alu("or", "bitwise or"),
        _alu("xor", "bitwise xor"),
        _alu("andn", "bitwise and-not"),
        _alu("orn", "bitwise or-not"),
        _alu("sll", "shift left logical"),
        _alu("srl", "shift right logical"),
        _alu("sra", "shift right arithmetic"),
        _alu("xnor", "bitwise exclusive-nor"),
        _alu("addcc", "integer add, set icc", cc=True),
        _alu("subcc", "integer subtract, set icc", cc=True),
        _alu("andcc", "bitwise and, set icc", cc=True),
        _alu("orcc", "bitwise or, set icc", cc=True),
        _alu("xorcc", "bitwise xor, set icc", cc=True),
        _alu("xnorcc", "bitwise exclusive-nor, set icc", cc=True),
        _alu("andncc", "bitwise and-not, set icc", cc=True),
        _alu("orncc", "bitwise or-not, set icc", cc=True),
        _alu("taddcc", "tagged add, set icc", cc=True),
        _alu("tsubcc", "tagged subtract, set icc", cc=True),
        Opcode("addx", InstructionClass.IALU, OperandFormat.ALU3_USE_CC,
               description="add with carry (reads %icc)"),
        Opcode("subx", InstructionClass.IALU, OperandFormat.ALU3_USE_CC,
               description="subtract with carry (reads %icc)"),
        Opcode("addxcc", InstructionClass.IALU,
               OperandFormat.ALU3_USE_DEF_CC,
               description="add with carry, set icc"),
        Opcode("subxcc", InstructionClass.IALU,
               OperandFormat.ALU3_USE_DEF_CC,
               description="subtract with carry, set icc"),
        Opcode("mulscc", InstructionClass.IALU, OperandFormat.MULSCC,
               description="multiply step (reads/writes %icc and %y)"),
        Opcode("rd", InstructionClass.IALU, OperandFormat.RDY,
               description="read the %y register"),
        Opcode("wr", InstructionClass.IALU, OperandFormat.WRY,
               description="write the %y register"),
        Opcode("cmp", InstructionClass.COMPARE, OperandFormat.CMP,
               description="compare (subcc with %g0 destination)"),
        Opcode("tst", InstructionClass.COMPARE, OperandFormat.CMP,
               description="test register against zero"),
        Opcode("mov", InstructionClass.IALU, OperandFormat.MOV,
               description="register/immediate move"),
        Opcode("sethi", InstructionClass.SETHI, OperandFormat.SETHI,
               description="set high 22 bits of register"),
        Opcode("smul", InstructionClass.IMUL, OperandFormat.MULDIV,
               description="signed multiply (also writes %y)"),
        Opcode("umul", InstructionClass.IMUL, OperandFormat.MULDIV,
               description="unsigned multiply (also writes %y)"),
        Opcode("sdiv", InstructionClass.IDIV, OperandFormat.MULDIV,
               description="signed divide (also writes %y)"),
        Opcode("udiv", InstructionClass.IDIV, OperandFormat.MULDIV,
               description="unsigned divide (also writes %y)"),
        # --- memory --------------------------------------------------------
        Opcode("ldub", InstructionClass.LOAD, OperandFormat.LOAD,
               description="load unsigned byte"),
        Opcode("lduh", InstructionClass.LOAD, OperandFormat.LOAD,
               description="load unsigned halfword"),
        Opcode("ldsb", InstructionClass.LOAD, OperandFormat.LOAD,
               description="load signed byte"),
        Opcode("ldsh", InstructionClass.LOAD, OperandFormat.LOAD,
               description="load signed halfword"),
        Opcode("swap", InstructionClass.LOAD, OperandFormat.LOADSTORE,
               description="atomically swap register with memory"),
        Opcode("ldstub", InstructionClass.LOAD, OperandFormat.LOADSTORE,
               description="atomic load-store unsigned byte "
                           "(test-and-set)"),
        Opcode("ld", InstructionClass.LOAD, OperandFormat.LOAD,
               description="load word (integer or single fp destination)"),
        Opcode("ldd", InstructionClass.LOAD, OperandFormat.LOAD, double=True,
               description="load doubleword into even/odd register pair"),
        Opcode("stb", InstructionClass.STORE, OperandFormat.STORE,
               description="store byte"),
        Opcode("sth", InstructionClass.STORE, OperandFormat.STORE,
               description="store halfword"),
        Opcode("st", InstructionClass.STORE, OperandFormat.STORE,
               description="store word"),
        Opcode("std", InstructionClass.STORE, OperandFormat.STORE,
               double=True,
               description="store doubleword from even/odd register pair"),
        # --- control transfer ----------------------------------------------
        _branch("ba", CcUse.NONE, "branch always", conditional=False),
        _branch("bn", CcUse.NONE, "branch never"),
        _branch("be", CcUse.ICC, "branch on equal"),
        _branch("bne", CcUse.ICC, "branch on not equal"),
        _branch("bg", CcUse.ICC, "branch on greater"),
        _branch("bge", CcUse.ICC, "branch on greater or equal"),
        _branch("bl", CcUse.ICC, "branch on less"),
        _branch("ble", CcUse.ICC, "branch on less or equal"),
        _branch("bgu", CcUse.ICC, "branch on greater unsigned"),
        _branch("bleu", CcUse.ICC, "branch on less or equal unsigned"),
        _branch("bcc", CcUse.ICC, "branch on carry clear"),
        _branch("bcs", CcUse.ICC, "branch on carry set"),
        _branch("bpos", CcUse.ICC, "branch on positive"),
        _branch("bneg", CcUse.ICC, "branch on negative"),
        _branch("bvc", CcUse.ICC, "branch on overflow clear"),
        _branch("bvs", CcUse.ICC, "branch on overflow set"),
        _branch("fbe", CcUse.FCC, "fp branch on equal"),
        _branch("fbne", CcUse.FCC, "fp branch on not equal"),
        _branch("fbg", CcUse.FCC, "fp branch on greater"),
        _branch("fbge", CcUse.FCC, "fp branch on greater or equal"),
        _branch("fbl", CcUse.FCC, "fp branch on less"),
        _branch("fble", CcUse.FCC, "fp branch on less or equal"),
        Opcode("call", InstructionClass.CALL, OperandFormat.CALL,
               delayed=True, ends_block=True,
               description="procedure call (defines %o7)"),
        Opcode("retl", InstructionClass.RETURN, OperandFormat.RETURN,
               delayed=True, ends_block=True,
               description="leaf return (jmpl %o7+8)"),
        Opcode("ret", InstructionClass.RETURN, OperandFormat.RETURN,
               delayed=True, ends_block=True,
               description="return (jmpl %i7+8)"),
        # --- register windows ----------------------------------------------
        Opcode("save", InstructionClass.WINDOW, OperandFormat.ALU3,
               ends_block=True,
               description="push register window (ends basic block)"),
        Opcode("restore", InstructionClass.WINDOW, OperandFormat.ALU3,
               ends_block=True,
               description="pop register window (ends basic block)"),
        # --- floating point --------------------------------------------------
        _fpop3("fadds", InstructionClass.FPADD, False, "fp add single"),
        _fpop3("faddd", InstructionClass.FPADD, True, "fp add double"),
        _fpop3("fsubs", InstructionClass.FPADD, False, "fp subtract single"),
        _fpop3("fsubd", InstructionClass.FPADD, True, "fp subtract double"),
        _fpop3("fmuls", InstructionClass.FPMUL, False, "fp multiply single"),
        _fpop3("fmuld", InstructionClass.FPMUL, True, "fp multiply double"),
        _fpop3("fdivs", InstructionClass.FPDIV, False, "fp divide single"),
        _fpop3("fdivd", InstructionClass.FPDIV, True, "fp divide double"),
        Opcode("fsqrts", InstructionClass.FPSQRT, OperandFormat.FPOP2,
               description="fp square root single"),
        Opcode("fsqrtd", InstructionClass.FPSQRT, OperandFormat.FPOP2,
               double=True, description="fp square root double"),
        Opcode("fmovs", InstructionClass.FPADD, OperandFormat.FPOP2,
               description="fp move single"),
        Opcode("fnegs", InstructionClass.FPADD, OperandFormat.FPOP2,
               description="fp negate single"),
        Opcode("fabss", InstructionClass.FPADD, OperandFormat.FPOP2,
               description="fp absolute value single"),
        Opcode("fitod", InstructionClass.FPADD, OperandFormat.FPOP2,
               double=True, description="convert int to double"),
        Opcode("fitos", InstructionClass.FPADD, OperandFormat.FPOP2,
               description="convert int to single"),
        Opcode("fdtoi", InstructionClass.FPADD, OperandFormat.FPOP2,
               double=True, description="convert double to int"),
        Opcode("fstoi", InstructionClass.FPADD, OperandFormat.FPOP2,
               description="convert single to int"),
        Opcode("fstod", InstructionClass.FPADD, OperandFormat.FPOP2,
               double=True, description="convert single to double"),
        Opcode("fdtos", InstructionClass.FPADD, OperandFormat.FPOP2,
               double=True, description="convert double to single"),
        Opcode("fcmps", InstructionClass.FPCOMPARE, OperandFormat.FCMP,
               description="fp compare single (writes %fcc)"),
        Opcode("fcmpd", InstructionClass.FPCOMPARE, OperandFormat.FCMP,
               double=True, description="fp compare double (writes %fcc)"),
        # --- misc ------------------------------------------------------------
        Opcode("nop", InstructionClass.NOP, OperandFormat.NONE,
               description="no operation"),
    ]
    table = {}
    for op in ops:
        if op.mnemonic in table:
            raise ValueError(f"duplicate opcode {op.mnemonic}")
        table[op.mnemonic] = op
    return table


OPCODE_TABLE: dict[str, Opcode] = _build_table()


def lookup_opcode(mnemonic: str) -> Opcode:
    """Find an opcode by mnemonic (case-insensitive).

    Raises:
        UnknownOpcodeError: if the mnemonic is not in the table.
    """
    op = OPCODE_TABLE.get(mnemonic.lower())
    if op is None:
        raise UnknownOpcodeError(f"unknown opcode {mnemonic!r}")
    return op
