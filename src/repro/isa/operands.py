"""Operand value objects.

An :class:`~repro.isa.instruction.Instruction` carries a tuple of
operands; each operand is one of the four shapes defined here.  All
operand types are immutable and hashable so they can be shared freely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.memory import MemExpr
from repro.isa.registers import Register


class Operand:
    """Abstract base for instruction operands."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class RegOperand(Operand):
    """A register operand such as ``%o3`` or ``%f10``."""

    register: Register

    def __str__(self) -> str:
        return self.register.name


@dataclass(frozen=True, slots=True)
class ImmOperand(Operand):
    """An immediate integer operand such as ``42`` or ``-8``."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class MemOperand(Operand):
    """A memory operand such as ``[%fp-8]`` or ``[counter]``."""

    expr: MemExpr

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True, slots=True)
class LabelOperand(Operand):
    """A code label operand used by branches and calls."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class SymImmOperand(Operand):
    """A symbolic immediate, ``%hi(sym)`` or ``%lo(sym)``.

    Behaves like an immediate for dependence purposes (it names no
    register or memory resource).
    """

    part: str   # "hi" or "lo"
    symbol: str

    def __str__(self) -> str:
        return f"%{self.part}({self.symbol})"
