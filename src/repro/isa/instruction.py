"""The :class:`Instruction` value object.

An instruction is an opcode plus an operand tuple, tagged with its
position in the enclosing program.  Def/use extraction lives in
:mod:`repro.isa.resources` because it needs the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, OperandFormat
from repro.isa.operands import (
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    RegOperand,
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One assembly instruction.

    Attributes:
        index: 0-based position within the enclosing program; unique
            and stable, used as the node identity in DAGs.
        opcode: the opcode table entry.
        operands: operand tuple in source order.
        label: label attached to this instruction's address, if any.
        annulled: True when a branch carries the ``,a`` annul suffix.
            Per the paper, the delay-slot instruction of an annulling
            branch still counts with the *following* basic block.
        source_line: 1-based source line for diagnostics (0 if synthetic).
    """

    index: int
    opcode: Opcode
    operands: tuple[Operand, ...] = ()
    label: str | None = None
    annulled: bool = False
    source_line: int = 0

    @property
    def mnemonic(self) -> str:
        """The opcode mnemonic, with the annul suffix when present."""
        if self.annulled:
            return self.opcode.mnemonic + ",a"
        return self.opcode.mnemonic

    def branch_target(self) -> str | None:
        """The label a branch/call transfers to, or None."""
        for op in self.operands:
            if isinstance(op, LabelOperand):
                return op.name
        return None

    def render(self) -> str:
        """Re-emit the instruction as assembly text (without its label)."""
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(op) for op in self.operands)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.index}: {self.render()}"

    def with_index(self, index: int) -> "Instruction":
        """A copy of this instruction renumbered to ``index``."""
        return Instruction(index, self.opcode, self.operands, self.label,
                           self.annulled, self.source_line)

    # -- operand accessors used by def/use extraction ----------------------

    def reg_operands(self) -> tuple[RegOperand, ...]:
        """All register operands, in source order."""
        return tuple(op for op in self.operands if isinstance(op, RegOperand))

    def mem_operand(self) -> MemOperand | None:
        """The memory operand of a load/store, or None."""
        for op in self.operands:
            if isinstance(op, MemOperand):
                return op
        return None
