"""SPARC-like instruction-set substrate.

This subpackage models just enough of a SPARC-style RISC instruction set
for basic-block instruction scheduling research:

* :mod:`repro.isa.registers` -- integer/float/condition-code register
  files, including the ``%sp``/``%fp`` aliases and FP register pairs.
* :mod:`repro.isa.operands` -- operand value objects (register,
  immediate, memory, label).
* :mod:`repro.isa.memory` -- symbolic memory expressions and the three
  disambiguation policies discussed in the paper (strict serialization,
  base+offset, Warren-style storage classes).
* :mod:`repro.isa.opcodes` -- the opcode table with instruction classes
  and operand formats.
* :mod:`repro.isa.instruction` -- the :class:`Instruction` value object.
* :mod:`repro.isa.resources` -- extraction of defined/used resources
  from an instruction, and the interning :class:`ResourceSpace`.
"""

from repro.isa.registers import (
    Register,
    RegisterKind,
    parse_register,
    fp_pair,
    G0,
    ICC,
    FCC,
)
from repro.isa.operands import (
    Operand,
    RegOperand,
    ImmOperand,
    MemOperand,
    LabelOperand,
    SymImmOperand,
)
from repro.isa.memory import (
    MemExpr,
    AliasPolicy,
    StorageClass,
    storage_class_of,
    may_alias,
)
from repro.isa.opcodes import (
    InstructionClass,
    OperandFormat,
    Opcode,
    OPCODE_TABLE,
    lookup_opcode,
)
from repro.isa.instruction import Instruction
from repro.isa.resources import (
    Resource,
    ResourceKind,
    ResourceSpace,
    defs_and_uses,
)

__all__ = [
    "Register",
    "RegisterKind",
    "parse_register",
    "fp_pair",
    "G0",
    "ICC",
    "FCC",
    "Operand",
    "RegOperand",
    "ImmOperand",
    "MemOperand",
    "LabelOperand",
    "SymImmOperand",
    "MemExpr",
    "AliasPolicy",
    "StorageClass",
    "storage_class_of",
    "may_alias",
    "InstructionClass",
    "OperandFormat",
    "Opcode",
    "OPCODE_TABLE",
    "lookup_opcode",
    "Instruction",
    "Resource",
    "ResourceKind",
    "ResourceSpace",
    "defs_and_uses",
]
