"""Register model for the SPARC-like target.

The register file follows the SPARC V8 conventions that matter for
dependence analysis:

* 32 integer registers ``%g0-%g7``, ``%o0-%o7``, ``%l0-%l7``,
  ``%i0-%i7``, with the conventional aliases ``%sp`` (= ``%o6``) and
  ``%fp`` (= ``%i6``).
* ``%g0`` is hard-wired to zero: writes to it define nothing and reads
  of it carry no dependence.
* 32 single-precision floating point registers ``%f0-%f31``; a
  double-precision value occupies an even/odd *pair* (``%f0``/``%f1``
  and so on).  Double-word loads therefore define two registers, and --
  as the paper notes -- the RAW delays to the two halves of the pair
  can differ by a cycle or two.
* Condition-code "registers" ``%icc`` and ``%fcc`` modeling the integer
  and floating-point condition codes, plus the ``%y`` register used by
  multiply/divide step instructions.

We additionally accept generic ``%r0-%r31`` names so small hand-written
examples (like the paper's Figure 1, which uses ``R1``-style names) can
be expressed directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import OperandError


class RegisterKind(enum.Enum):
    """Which register file a register lives in."""

    INTEGER = "integer"
    FLOAT = "float"
    CONDITION = "condition"
    SPECIAL = "special"


@dataclass(frozen=True, slots=True)
class Register:
    """A single architectural register.

    Attributes:
        name: canonical name, e.g. ``"%o6"`` (never an alias like
            ``"%sp"``).
        kind: the register file this register belongs to.
        number: index within its file (0-31 for integer/float).
    """

    name: str
    kind: RegisterKind
    number: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_zero(self) -> bool:
        """True for ``%g0``, which carries no dependences."""
        return self.name == "%g0"


def _build_register_map() -> dict[str, Register]:
    regs: dict[str, Register] = {}
    for group_index, group in enumerate(("g", "o", "l", "i")):
        for i in range(8):
            number = group_index * 8 + i
            name = f"%{group}{i}"
            regs[name] = Register(name, RegisterKind.INTEGER, number)
    for i in range(32):
        name = f"%f{i}"
        regs[name] = Register(name, RegisterKind.FLOAT, i)
    # Generic %rN names for hand-written examples; they map onto the
    # flat integer file so %r6 and %o6 are DIFFERENT resources -- the
    # generic namespace is its own 32-register window-less file.
    for i in range(32):
        name = f"%r{i}"
        regs[name] = Register(name, RegisterKind.INTEGER, 32 + i)
    regs["%icc"] = Register("%icc", RegisterKind.CONDITION, 0)
    regs["%fcc"] = Register("%fcc", RegisterKind.CONDITION, 1)
    regs["%y"] = Register("%y", RegisterKind.SPECIAL, 0)
    return regs


_REGISTERS: dict[str, Register] = _build_register_map()

_ALIASES: dict[str, str] = {
    "%sp": "%o6",
    "%fp": "%i6",
}

G0: Register = _REGISTERS["%g0"]
ICC: Register = _REGISTERS["%icc"]
FCC: Register = _REGISTERS["%fcc"]
YREG: Register = _REGISTERS["%y"]


def canonical_name(name: str) -> str:
    """Return the canonical name for ``name``, resolving ``%sp``/``%fp``."""
    return _ALIASES.get(name, name)


def parse_register(name: str) -> Register:
    """Look up a register by (possibly aliased) name.

    Args:
        name: register syntax such as ``"%o3"``, ``"%sp"``, ``"%f10"``.

    Returns:
        The canonical :class:`Register`.

    Raises:
        OperandError: if the name is not a known register.
    """
    reg = _REGISTERS.get(canonical_name(name))
    if reg is None:
        raise OperandError(f"unknown register {name!r}")
    return reg


def is_register_name(name: str) -> bool:
    """True if ``name`` (after alias resolution) names a register."""
    return canonical_name(name) in _REGISTERS


def fp_pair(reg: Register) -> tuple[Register, Register]:
    """Return the even/odd FP register pair anchored at ``reg``.

    Double-precision operands must name the even register of the pair.

    Raises:
        OperandError: if ``reg`` is not an even FP register, or is
            ``%f31`` (which has no pair partner).
    """
    if reg.kind is not RegisterKind.FLOAT:
        raise OperandError(f"{reg.name} is not a floating point register")
    if reg.number % 2 != 0:
        raise OperandError(
            f"double-precision operand {reg.name} must use an even register")
    partner = _REGISTERS[f"%f{reg.number + 1}"]
    return (reg, partner)


def integer_pair(reg: Register) -> tuple[Register, Register]:
    """Return the even/odd integer pair for ``ldd``/``std``.

    Raises:
        OperandError: if ``reg`` is not an even integer register.
    """
    if reg.kind is not RegisterKind.INTEGER:
        raise OperandError(f"{reg.name} is not an integer register")
    if reg.number % 2 != 0:
        raise OperandError(
            f"double-word operand {reg.name} must use an even register")
    # Recover the canonical name from the flat number.
    number = reg.number + 1
    if number < 32:
        group = "goli"[number // 8]
        partner = _REGISTERS[f"%{group}{number % 8}"]
    else:
        partner = _REGISTERS[f"%r{number - 32}"]
    return (reg, partner)


def all_registers() -> tuple[Register, ...]:
    """Every architectural register, in a stable order."""
    return tuple(_REGISTERS.values())
