"""Symbolic memory expressions and disambiguation policies.

After compilation there is often not enough information to disambiguate
memory references, so -- as the paper discusses in section 2 -- a DAG
builder may have to treat memory as a single resource, serializing all
loads and stores.  Two refinements are modeled:

* **base+offset**: two references through the *same* base register but
  *different* offsets cannot refer to the same location; references
  through different base registers must still be assumed to conflict.
* **storage classes** (Warren): references to distinct storage classes
  (e.g. stack vs. heap/static) typically cannot overlap, and base
  registers for these areas can sometimes be identified -- the stack
  pointer and frame pointer address the stack, symbolic addresses
  address static storage.

Both refinements are expressed through :func:`may_alias`, the single
aliasing oracle every DAG builder consults.

Granularity note: the same-base/different-offset rule (and the
EXPRESSION policy) assume *naturally aligned, word-sized* accesses.
Double-word instructions therefore contribute BOTH word slots to their
def/use sets (see :func:`repro.isa.resources.defs_and_uses`), so a
``std [%fp-12]`` correctly conflicts with a ``ld [%fp-8]``.  Sub-word
accesses that straddle word slots (e.g. an unaligned ``sth``) are
outside the model, exactly as they are outside the paper's rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AliasPolicy(enum.Enum):
    """How aggressively memory references are disambiguated.

    ``STRICT`` serializes all memory traffic (memory is one resource).
    ``EXPRESSION`` gives every unique symbolic memory expression its
    own resource and assumes distinct expressions never overlap -- the
    policy implied by the paper's implementation (Table 3 counts
    "unique memory expressions", and the resource bitmaps grow one
    position per new expression).
    ``BASE_OFFSET`` applies the same-base/different-offset rule but
    conservatively serializes references through different bases.
    ``STORAGE_CLASS`` additionally separates stack from static storage,
    following Warren's observation.
    """

    STRICT = "strict"
    EXPRESSION = "expression"
    BASE_OFFSET = "base_offset"
    STORAGE_CLASS = "storage_class"


class StorageClass(enum.Enum):
    """Coarse storage area a memory expression refers to."""

    STACK = "stack"
    STATIC = "static"
    UNKNOWN = "unknown"


_STACK_BASES = frozenset({"%o6", "%i6"})  # canonical %sp / %fp


@dataclass(frozen=True, slots=True)
class MemExpr:
    """A symbolic memory address expression from a load or store.

    Exactly one addressing shape is populated:

    * register + immediate offset: ``base`` set, ``index`` None
      (``[%fp-8]``, ``[%o0]``);
    * register + register: ``base`` and ``index`` set (``[%o0+%o1]``);
    * absolute symbol + offset: ``symbol`` set (``[counter+4]``);
    * register + symbolic low part: ``base`` and ``symbol`` set
      (``[%o0+%lo(counter)]``, the sethi/or static-data idiom).

    Attributes:
        base: canonical base register name, or None for symbolic.
        index: canonical index register name for reg+reg addressing.
        offset: immediate displacement (0 when none was written).
        symbol: symbol name for direct/static addressing.
    """

    base: str | None = None
    index: str | None = None
    offset: int = 0
    symbol: str | None = None

    def key(self) -> str:
        """Canonical text of the expression, used as the resource name.

        Unique keys are what Table 3's "unique memory expressions"
        column counts.
        """
        if self.symbol is not None:
            text = self.symbol
            if self.base is not None:
                text = f"{self.base}+%lo({self.symbol})"
            if self.offset:
                text += f"{self.offset:+d}"
            return text
        if self.index is not None:
            text = f"{self.base}+{self.index}"
            if self.offset:
                text += f"{self.offset:+d}"
            return text
        if self.offset:
            return f"{self.base}{self.offset:+d}"
        return f"{self.base}" if self.base is not None else "<mem>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.key()}]"

    @property
    def address_registers(self) -> tuple[str, ...]:
        """Registers read to form the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return tuple(regs)


def storage_class_of(expr: MemExpr) -> StorageClass:
    """Classify a memory expression into a coarse storage class.

    Stack-pointer and frame-pointer based references address the stack;
    symbolic references address static storage; anything else is
    unknown (could point anywhere except, per Warren, the stack).
    """
    if expr.symbol is not None:
        return StorageClass.STATIC
    if expr.base in _STACK_BASES and expr.index is None:
        return StorageClass.STACK
    return StorageClass.UNKNOWN


def _same_base_shape(a: MemExpr, b: MemExpr) -> bool:
    """True when both expressions use the identical base/index registers."""
    return a.base == b.base and a.index == b.index and a.symbol == b.symbol


def may_alias(a: MemExpr, b: MemExpr, policy: AliasPolicy) -> bool:
    """Decide whether two memory expressions may refer to one location.

    This is deliberately conservative: it only returns False when the
    active policy *proves* the references are distinct.

    Args:
        a: first memory expression.
        b: second memory expression.
        policy: the disambiguation policy in force.

    Returns:
        True if the references must be assumed to conflict.
    """
    if policy is AliasPolicy.STRICT:
        return True

    # Identical symbolic expressions always alias (same location).
    if a == b:
        return True

    if policy is AliasPolicy.EXPRESSION:
        return False

    # Same-base / different-offset rule.  It applies to matching
    # register bases and to matching symbols alike, but never to
    # reg+reg addressing (the index register hides the offset).
    if _same_base_shape(a, b) and a.index is None:
        if a.symbol is not None or a.base is not None:
            return a.offset == b.offset

    if policy is AliasPolicy.STORAGE_CLASS:
        ca, cb = storage_class_of(a), storage_class_of(b)
        distinct = {ca, cb}
        if StorageClass.UNKNOWN not in distinct and ca is not cb:
            return False
        # Warren: unknown (heap-ish) pointers do not point into the
        # stack frame, so UNKNOWN vs STACK cannot overlap either.
        if distinct == {StorageClass.UNKNOWN, StorageClass.STACK}:
            return False

    # Different base registers (or symbol vs register) with no storage
    # class proof: must serialize.
    return True
