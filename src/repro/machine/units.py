"""Function units.

Structural hazards "are not represented in the DAG because they are
essentially undirected arcs; instead, they are handled by timing
heuristics or resource reservation tables" (paper section 1).  The
timing-heuristic route needs to know which unit each instruction class
occupies and whether that unit is pipelined; the dynamic "busy times
for floating point function units" heuristic and the extended earliest
execution time calculation both consult this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import InstructionClass


@dataclass(frozen=True, slots=True)
class FunctionUnit:
    """One execution resource.

    Attributes:
        name: unit name, e.g. ``"fdiv"``.
        pipelined: True if a new operation can start every cycle;
            False if the unit is busy for the whole operation latency
            (the structural-hazard case the paper's FPU heuristic
            targets).
        copies: number of identical instances of this unit.
    """

    name: str
    pipelined: bool = True
    copies: int = 1


_DEFAULT_UNIT_OF_CLASS: dict[InstructionClass, str] = {
    InstructionClass.IALU: "ialu",
    InstructionClass.IMUL: "imul",
    InstructionClass.IDIV: "imul",
    InstructionClass.COMPARE: "ialu",
    InstructionClass.SETHI: "ialu",
    InstructionClass.LOAD: "mem",
    InstructionClass.STORE: "mem",
    InstructionClass.BRANCH: "branch",
    InstructionClass.CALL: "branch",
    InstructionClass.RETURN: "branch",
    InstructionClass.FPADD: "fpadd",
    InstructionClass.FPMUL: "fpmul",
    InstructionClass.FPDIV: "fdiv",
    InstructionClass.FPSQRT: "fdiv",
    InstructionClass.FPCOMPARE: "fpadd",
    InstructionClass.WINDOW: "ialu",
    InstructionClass.NOP: "ialu",
}


class FunctionUnitSet:
    """The machine's function units plus the class-to-unit mapping."""

    def __init__(self, units: list[FunctionUnit],
                 unit_of_class: dict[InstructionClass, str] | None = None
                 ) -> None:
        """Args:
            units: the available units.
            unit_of_class: which unit each instruction class executes
                on; defaults to the conventional RISC split.

        Raises:
            ValueError: if the mapping names a unit not in ``units``.
        """
        self._units = {u.name: u for u in units}
        mapping = dict(_DEFAULT_UNIT_OF_CLASS if unit_of_class is None
                       else unit_of_class)
        for iclass, name in mapping.items():
            if name not in self._units:
                raise ValueError(
                    f"class {iclass.value} mapped to unknown unit {name!r}")
        self._unit_of_class = mapping

    def unit_for(self, iclass: InstructionClass) -> FunctionUnit:
        """The function unit an instruction class executes on."""
        return self._units[self._unit_of_class[iclass]]

    def unit_names(self) -> tuple[str, ...]:
        """All unit names, in declaration order."""
        return tuple(self._units)

    def unit(self, name: str) -> FunctionUnit:
        """Look up a unit by name (KeyError if absent)."""
        return self._units[name]

    @property
    def has_unpipelined(self) -> bool:
        """True when any unit is not pipelined (structural hazards exist)."""
        return any(not u.pipelined for u in self._units.values())


def default_units(unpipelined_fp: bool = True) -> FunctionUnitSet:
    """The conventional unit set: one of each, FP divide optionally unpipelined."""
    return FunctionUnitSet([
        FunctionUnit("ialu"),
        FunctionUnit("imul", pipelined=False),
        FunctionUnit("mem"),
        FunctionUnit("branch"),
        FunctionUnit("fpadd", pipelined=not unpipelined_fp),
        FunctionUnit("fpmul", pipelined=not unpipelined_fp),
        FunctionUnit("fdiv", pipelined=False),
    ])


def units_with_writeback(unpipelined_fp: bool = False) -> FunctionUnitSet:
    """Default units plus a shared single-ported writeback bus.

    Gives reservation-table scheduling the paper's "multiple resource
    usage instructions": results from units of different latencies can
    collide on the bus cycle, which only an explicit reservation table
    resolves (timing heuristics alone cannot see it).
    """
    return FunctionUnitSet([
        FunctionUnit("ialu"),
        FunctionUnit("imul", pipelined=False),
        FunctionUnit("mem"),
        FunctionUnit("branch"),
        FunctionUnit("fpadd", pipelined=not unpipelined_fp),
        FunctionUnit("fpmul", pipelined=not unpipelined_fp),
        FunctionUnit("fdiv", pipelined=False),
        FunctionUnit("wb"),
    ])
