"""Ready-made machine models.

Four machines cover the behaviours the paper discusses:

* :func:`generic_risc` -- the default scalar pipeline whose latencies
  match Figure 1 of the paper exactly (FP divide 20 cycles, FP add 4
  cycles, WAR delay 1 cycle).
* :func:`sparcstation2_like` -- a SPARC-flavoured scalar machine with
  a load delay slot, register-pair load skew, and unpipelined FP
  units, approximating the paper's measurement platform.
* :func:`rs6000_like` -- models the asymmetric bypass paths of the IBM
  RS/6000 (section 2: the RAW delay differs with the consumer's
  operand position) and a store-forwarding discount.
* :func:`superscalar2` -- a 2-wide issue machine for the
  "alternate type" instruction-class heuristic.
"""

from __future__ import annotations

from repro.isa.memory import AliasPolicy
from repro.isa.opcodes import InstructionClass
from repro.machine.latency import LatencyModel, _DEFAULT_CLASS_LATENCY
from repro.machine.model import MachineModel
from repro.machine.units import FunctionUnit, FunctionUnitSet, default_units


def generic_risc() -> MachineModel:
    """The default scalar RISC; latencies match the paper's Figure 1."""
    return MachineModel(
        name="generic-risc",
        latency=LatencyModel(),
        units=default_units(unpipelined_fp=False),
        issue_width=1,
        branch_delay_slots=1,
    )


def sparcstation2_like() -> MachineModel:
    """A SPARCstation-2-flavoured scalar machine.

    Single-cycle integer ops, 2-cycle loads (one delay slot), a
    one-cycle skew on the odd register of double-word load pairs, and
    unpipelined floating point units -- the configuration the paper's
    FPU-busy-time heuristic targets.
    """
    latency = LatencyModel(
        class_latency={
            **_DEFAULT_CLASS_LATENCY,
            InstructionClass.LOAD: 2,
            InstructionClass.FPADD: 7,
            InstructionClass.FPMUL: 8,
            InstructionClass.FPDIV: 24,
            InstructionClass.FPSQRT: 36,
            InstructionClass.FPCOMPARE: 2,
        },
        pair_second_extra=1,
    )
    return MachineModel(
        name="sparcstation2-like",
        latency=latency,
        units=default_units(unpipelined_fp=True),
        issue_width=1,
        branch_delay_slots=1,
        alias_policy=AliasPolicy.EXPRESSION,
    )


def rs6000_like() -> MachineModel:
    """Models the RS/6000's asymmetric bypass and store forwarding.

    A RAW delay to a consumer's second source operand is one cycle
    longer than to its first (paper section 2), and stores pick their
    data up late, shaving a cycle off RAW-to-store delays.
    """
    latency = LatencyModel(
        class_latency={
            **_DEFAULT_CLASS_LATENCY,
            InstructionClass.LOAD: 2,
            InstructionClass.FPADD: 2,
            InstructionClass.FPMUL: 2,
            InstructionClass.FPDIV: 19,
        },
        raw_store_forward_discount=1,
        bypass_second_operand_penalty=1,
    )
    return MachineModel(
        name="rs6000-like",
        latency=latency,
        units=default_units(unpipelined_fp=False),
        issue_width=1,
        branch_delay_slots=0,
        alias_policy=AliasPolicy.STORAGE_CLASS,
    )


def superscalar2() -> MachineModel:
    """A 2-wide superscalar with duplicated integer ALUs.

    Used by the alternate-type heuristic experiments: pairing an
    integer and a floating point instruction in the same cycle is the
    win the heuristic chases.
    """
    units = FunctionUnitSet([
        FunctionUnit("ialu", copies=2),
        FunctionUnit("imul", pipelined=False),
        FunctionUnit("mem"),
        FunctionUnit("branch"),
        FunctionUnit("fpadd"),
        FunctionUnit("fpmul"),
        FunctionUnit("fdiv", pipelined=False),
    ])
    return MachineModel(
        name="superscalar-2",
        latency=LatencyModel(),
        units=units,
        issue_width=2,
        branch_delay_slots=1,
    )
