"""Machine timing model.

The ISA (:mod:`repro.isa`) says *what* an instruction does; this
subpackage says *how long it takes* on a particular machine:

* :mod:`repro.machine.latency` -- operation latencies and
  dependence-type-specific arc delays (RAW/WAR/WAW, shorter WAR
  delays, per-operand-position asymmetric bypass, register-pair
  skew).
* :mod:`repro.machine.units` -- function units, pipelined or not.
* :mod:`repro.machine.reservation` -- resource reservation tables for
  the "more refined form of scheduling" of section 1.
* :mod:`repro.machine.model` -- :class:`MachineModel`, the facade the
  DAG builders and schedulers consume.
* :mod:`repro.machine.presets` -- ready-made machines (generic RISC,
  SPARC-like, RS/6000-like with asymmetric bypass, 2-wide
  superscalar).
"""

from repro.machine.latency import LatencyModel
from repro.machine.units import (
    FunctionUnit,
    FunctionUnitSet,
    default_units,
    units_with_writeback,
)
from repro.machine.reservation import ReservationTable, UsagePattern
from repro.machine.model import MachineModel
from repro.machine.presets import (
    generic_risc,
    sparcstation2_like,
    rs6000_like,
    superscalar2,
)

__all__ = [
    "LatencyModel",
    "FunctionUnit",
    "FunctionUnitSet",
    "default_units",
    "units_with_writeback",
    "ReservationTable",
    "UsagePattern",
    "MachineModel",
    "generic_risc",
    "sparcstation2_like",
    "rs6000_like",
    "superscalar2",
]
