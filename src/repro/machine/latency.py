"""Operation latencies and dependence arc delays.

Section 2 of the paper spends several paragraphs on how arc weights
vary with dependence type and even with operand position:

* WAR delays can be *shorter* than RAW delays because the parent reads
  its source early in the pipeline (Figure 1 uses a WAR delay of 1
  against a RAW delay of 20) -- unless the machine must hold source
  registers for exception repair, in which case WAR delays revert to
  the safe value.
* From the same parent, different RAW delays can reach different
  children: the odd half of a double-word load's register pair can be
  a cycle later than the even half; a bypassed RAW to a *store* can be
  shorter than to an arithmetic consumer; and on machines with
  asymmetric bypass paths (IBM RS/6000) the delay depends on whether
  the child consumes the value as its first or second source operand.

:class:`LatencyModel` encodes all of these knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dep import DepType
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstructionClass
from repro.isa.resources import Resource, ResourceKind


_DEFAULT_CLASS_LATENCY: dict[InstructionClass, int] = {
    InstructionClass.IALU: 1,
    InstructionClass.IMUL: 5,
    InstructionClass.IDIV: 18,
    InstructionClass.COMPARE: 1,
    InstructionClass.SETHI: 1,
    InstructionClass.LOAD: 2,
    InstructionClass.STORE: 1,
    InstructionClass.BRANCH: 1,
    InstructionClass.CALL: 1,
    InstructionClass.RETURN: 1,
    InstructionClass.FPADD: 4,
    InstructionClass.FPMUL: 6,
    InstructionClass.FPDIV: 20,
    InstructionClass.FPSQRT: 30,
    InstructionClass.FPCOMPARE: 2,
    InstructionClass.WINDOW: 1,
    InstructionClass.NOP: 1,
}


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Cycle counts for one machine.

    Attributes:
        class_latency: operation latency per instruction class.
        mnemonic_latency: per-mnemonic overrides (take precedence).
        war_delay: delay on WAR (anti-dependence) arcs.  1 on machines
            whose parent reads sources early; equal to the safe value
            on machines that hold sources for exception handlers.
        waw_delay: delay on WAW (output-dependence) arcs.
        raw_store_forward_discount: cycles subtracted from a RAW delay
            whose consumer is a store (the store needs its data late in
            the pipe).  Never reduces a delay below 1.
        pair_second_extra: extra cycles for the RAW delay from the
            *odd* register of a double-word load's destination pair.
        bypass_second_operand_penalty: extra cycles added to a RAW
            delay when the child consumes the value as its second (or
            later) source operand -- the asymmetric-bypass case.
    """

    class_latency: dict[InstructionClass, int] = field(
        default_factory=lambda: dict(_DEFAULT_CLASS_LATENCY))
    mnemonic_latency: dict[str, int] = field(default_factory=dict)
    war_delay: int = 1
    waw_delay: int = 1
    raw_store_forward_discount: int = 0
    pair_second_extra: int = 0
    bypass_second_operand_penalty: int = 0

    def execution_time(self, instr: Instruction) -> int:
        """The operation latency of ``instr`` (Table 1's "execution time")."""
        override = self.mnemonic_latency.get(instr.opcode.mnemonic)
        if override is not None:
            return override
        return self.class_latency[instr.opcode.iclass]

    def raw_delay(self, parent: Instruction, child: Instruction,
                  resource: Resource, def_index: int = 0,
                  use_index: int = 0) -> int:
        """RAW arc delay from ``parent`` to ``child`` through ``resource``.

        Args:
            parent: the defining instruction.
            child: the using instruction.
            resource: the resource carrying the dependence.
            def_index: position of ``resource`` within the parent's def
                list (index 1 of a load pair is the late half).
            use_index: position of ``resource`` within the child's use
                list (operand position for asymmetric bypass).
        """
        delay = self.execution_time(parent)
        if (self.pair_second_extra and parent.opcode.double
                and parent.opcode.iclass is InstructionClass.LOAD
                and def_index == 1):
            delay += self.pair_second_extra
        if (self.raw_store_forward_discount
                and child.opcode.iclass is InstructionClass.STORE
                and resource.kind is ResourceKind.REG):
            delay = max(1, delay - self.raw_store_forward_discount)
        if self.bypass_second_operand_penalty and use_index >= 1:
            delay += self.bypass_second_operand_penalty
        return max(1, delay)

    def arc_delay(self, dep: DepType, parent: Instruction,
                  child: Instruction, resource: Resource,
                  def_index: int = 0, use_index: int = 0) -> int:
        """Arc delay for any dependence type (the builders' single entry)."""
        if dep is DepType.RAW:
            return self.raw_delay(parent, child, resource, def_index,
                                  use_index)
        if dep is DepType.WAR:
            return max(1, self.war_delay)
        return max(1, self.waw_delay)
