"""The :class:`MachineModel` facade.

DAG builders and schedulers see the machine through this one object:
arc delays, operation latencies, function units, issue width, and the
delayed-branch convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dep import DepType
from repro.isa.instruction import Instruction
from repro.isa.memory import AliasPolicy
from repro.isa.resources import Resource
from repro.machine.latency import LatencyModel
from repro.machine.reservation import UsagePattern, pattern_for
from repro.machine.units import FunctionUnitSet, default_units


@dataclass(frozen=True)
class MachineModel:
    """Everything timing-related about one target machine.

    Attributes:
        name: human-readable machine name.
        latency: the cycle-count model.
        units: function units (for structural hazards).
        issue_width: instructions issued per cycle (1 = scalar).
        branch_delay_slots: architectural delay slots after a taken
            control transfer (1 on SPARC).
        alias_policy: default memory disambiguation policy used when a
            pipeline does not override it.
    """

    name: str
    latency: LatencyModel = field(default_factory=LatencyModel)
    units: FunctionUnitSet = field(default_factory=default_units)
    issue_width: int = 1
    branch_delay_slots: int = 1
    alias_policy: AliasPolicy = AliasPolicy.EXPRESSION

    def execution_time(self, instr: Instruction) -> int:
        """Operation latency of ``instr``."""
        return self.latency.execution_time(instr)

    def arc_delay(self, dep: DepType, parent: Instruction,
                  child: Instruction, resource: Resource,
                  def_index: int = 0, use_index: int = 0) -> int:
        """Delay for one dependence arc (delegates to the latency model)."""
        return self.latency.arc_delay(dep, parent, child, resource,
                                      def_index, use_index)

    def usage_pattern(self, instr: Instruction) -> UsagePattern:
        """Busy-cycle pattern of ``instr`` for reservation-table scheduling."""
        return pattern_for(instr, self.units, self.execution_time(instr))

    @property
    def is_superscalar(self) -> bool:
        """True when more than one instruction can issue per cycle."""
        return self.issue_width > 1
