"""Resource reservation tables.

Section 1: "A more refined form of scheduling uses an explicit resource
reservation table ... scheduling involves pattern matching these blocks
[of busy cycles] into a partially-filled reservation table as well as
considering operand dependencies."

:class:`ReservationTable` is a growing grid of (cycle, unit-instance)
slots; :class:`UsagePattern` is the aggregate structure of busy cycles
an instruction occupies.  The reservation-table scheduler
(:mod:`repro.scheduling.reservation_scheduler`) places the highest
priority instruction into the earliest slots where its pattern fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import Instruction
from repro.machine.units import FunctionUnitSet


@dataclass(frozen=True, slots=True)
class UnitUse:
    """One contiguous busy interval on one unit."""

    unit: str
    start: int      # offset from issue cycle
    duration: int   # busy cycles


@dataclass(frozen=True, slots=True)
class UsagePattern:
    """The blocks of busy cycles an instruction needs.

    A simple pipelined instruction uses its unit for one cycle; an
    unpipelined multi-cycle operation uses it for its whole latency.
    """

    uses: tuple[UnitUse, ...]

    @property
    def span(self) -> int:
        """Total cycles from issue to the last busy cycle."""
        return max((u.start + u.duration for u in self.uses), default=1)


def pattern_for(instr: Instruction, units: FunctionUnitSet,
                latency: int) -> UsagePattern:
    """Build the usage pattern for an instruction on a unit set.

    Pipelined units are occupied for one cycle (the issue cycle);
    unpipelined units are occupied for the full operation latency.

    Machines that declare a ``wb`` (writeback/result bus) unit get the
    paper's "multiple resource usage instructions": every
    result-producing instruction also occupies the bus for one cycle
    when its result retires, so two operations of different latencies
    can collide on the bus even though their function units are free.
    """
    unit = units.unit_for(instr.opcode.iclass)
    duration = 1 if unit.pipelined else max(1, latency)
    uses = [UnitUse(unit.name, 0, duration)]
    if "wb" in units.unit_names():
        from repro.isa.resources import defs_and_uses
        defs, _ = defs_and_uses(instr)
        if defs:
            uses.append(UnitUse("wb", max(0, latency - 1), 1))
    return UsagePattern(tuple(uses))


class ReservationTable:
    """A partially filled grid of busy unit slots.

    The table grows on demand; cycle indices are absolute (cycle 0 is
    the start of the basic block).
    """

    def __init__(self, units: FunctionUnitSet) -> None:
        self._units = units
        # busy[unit_name] -> set of busy cycle indices, per instance.
        self._busy: dict[str, list[set[int]]] = {
            name: [set() for _ in range(units.unit(name).copies)]
            for name in units.unit_names()
        }

    def _instance_fits(self, busy: set[int], start: int,
                       use: UnitUse) -> bool:
        return all(start + use.start + k not in busy
                   for k in range(use.duration))

    def fits_at(self, pattern: UsagePattern, cycle: int) -> bool:
        """True if ``pattern`` can issue at ``cycle`` without conflicts."""
        for use in pattern.uses:
            instances = self._busy[use.unit]
            if not any(self._instance_fits(inst, cycle, use)
                       for inst in instances):
                return False
        return True

    def earliest_fit(self, pattern: UsagePattern, not_before: int,
                     horizon: int = 1 << 20) -> int:
        """Earliest cycle >= ``not_before`` where the pattern fits.

        Raises:
            RuntimeError: if no slot is found within ``horizon`` cycles
                (indicates a malformed pattern).
        """
        cycle = not_before
        while cycle < not_before + horizon:
            if self.fits_at(pattern, cycle):
                return cycle
            cycle += 1
        raise RuntimeError("reservation table: no fit within horizon")

    def place(self, pattern: UsagePattern, cycle: int) -> None:
        """Mark the pattern's busy cycles starting at ``cycle``.

        Raises:
            ValueError: if the pattern does not fit at ``cycle``.
        """
        if not self.fits_at(pattern, cycle):
            raise ValueError(f"pattern does not fit at cycle {cycle}")
        for use in pattern.uses:
            for inst in self._busy[use.unit]:
                if self._instance_fits(inst, cycle, use):
                    for k in range(use.duration):
                        inst.add(cycle + use.start + k)
                    break

    def busy_until(self, unit_name: str) -> int:
        """One past the last busy cycle on any instance of ``unit_name``."""
        cycles = [max(inst) + 1 for inst in self._busy[unit_name] if inst]
        return max(cycles, default=0)

    def next_free(self, unit_name: str, not_before: int) -> int:
        """Earliest cycle >= ``not_before`` with a free instance of the unit."""
        cycle = not_before
        while True:
            if any(cycle not in inst for inst in self._busy[unit_name]):
                return cycle
            cycle += 1
