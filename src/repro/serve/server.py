"""The ``repro serve`` daemon: asyncio listener, drain, health.

One :class:`ReproServer` owns a unix-socket or localhost-TCP
listener, a bounded thread executor that runs admitted requests
through :func:`repro.serve.engine.run_request`, the shared
:class:`~repro.serve.admission.AdmissionController`, and the global
block accounting the chaos harness audits.

Lifecycle contract (the tentpole's robustness surface):

* every inbound line is answered -- malformed input gets a typed
  ``error`` frame, overload gets a typed ``rejected`` frame, and an
  oversized line gets ``request-too-large`` before the connection is
  closed (the stream cannot be resynchronised past an unbounded
  line);
* a client that disconnects mid-stream does not waste the pool: its
  request is cancelled at the next block boundary and the remainder
  is *shed* (reason ``disconnect``) into the server accounting, so
  blocks are never silently lost;
* SIGTERM drains gracefully -- admission closes first (``draining``
  rejections), in-flight requests get ``drain_grace_s`` to finish,
  anything still running then sheds its remainder (reason ``drain``)
  and the process exits 0; a request wedged past ``drain_force_s``
  (no deadline, no block wall clock) is abandoned and reported so
  shutdown always terminates, with a non-zero exit.

Tests and the in-process harnesses (`loadtest --in-process`, ``chaos
--serve``) use :class:`BackgroundServer`, which runs the same server
on a daemon thread and exposes programmatic ``drain()``.

Telemetry: with ``telemetry=`` set, the daemon also serves the full
metrics registry as Prometheus text exposition over a loopback-only
HTTP listener (``GET /metrics``), including the
:class:`~repro.obs.expo.RollingWindow` sliding-window aggregates
(p50/p99 latency, queue depth, shed/reject rates).  The same payload
is available over the NDJSON socket as the ``metrics`` op, which is
what ``repro top`` polls.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import os
import signal
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import JournalError, ReproError, RequestRejected
from repro.machine.presets import (
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    RollingWindow,
    render_exposition,
)
from repro.obs.metrics import (
    MetricsRegistry,
    record_overload_transition,
    record_request,
    record_wal_dedup,
    record_wal_recovery,
)
from repro.obs.trace import Tracer
from repro.runner.journal import read_snapshot, write_snapshot
from repro.runner.supervisor import CircuitBreaker, RetryPolicy
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.engine import (
    cache_details,
    cache_stats,
    release_caches,
    request_blocks,
    run_request,
    warm_cache,
)
from repro.serve.overload import (
    L_BROWNOUT,
    L_EMERGENCY,
    L_SHED_OPTIONAL,
    LEVEL_NAMES,
    DegradationLadder,
    OverloadConfig,
    OverloadMonitor,
    OverloadSignals,
    Transition,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    REJECT_DUPLICATE,
    SHED_DISCONNECT,
    SHED_DRAIN,
    ScheduleRequest,
    parse_address,
)
from repro.serve.wal import (
    FINISHED_ABANDONED,
    FINISHED_ERROR,
    FINISHED_OK,
    WriteAheadLog,
)

#: machine-model presets the daemon will schedule for
MACHINE_PRESETS = {
    "generic": generic_risc,
    "sparc": sparcstation2_like,
    "rs6000": rs6000_like,
    "superscalar2": superscalar2,
}


@dataclass(frozen=True)
class ServeConfig:
    """Everything one daemon instance needs to know.

    Attributes:
        address: listen address (see
            :func:`~repro.serve.protocol.parse_address`).
        workers: executor threads = concurrently *running* requests;
            also the admission controller's ``max_active``.
        max_queued: admitted requests allowed to wait for a thread.
        jobs: per-request engine parallelism (``>= 2`` builds a
            supervised pool per request; 1 = serial in-process).
        tenant_rate / tenant_burst: per-tenant token bucket.
        tenant_max_blocks: per-tenant cumulative block budget
            (None = unlimited).
        max_request_blocks: largest admissible single request.
        block_wall_s: per-block wall-clock cap (tightened to the
            request's remaining deadline).
        max_work: per-attempt construction-work budget.
        default_deadline_s: applied to requests that carry none
            (None = no implicit deadline).
        drain_grace_s: seconds in-flight requests get to finish
            before the drain sheds their remainder.
        drain_force_s: hard backstop after the forced shed -- a
            request whose block never reaches a boundary (no deadline,
            no block wall clock) is *abandoned* once this expires so
            SIGTERM always terminates; abandoned ids are recorded in
            :attr:`ReproServer.drain_abandoned` and the CLI exits
            non-zero.
        cache_entries: LRU cap for each warm per-thread cache.
        chain: default builder fallback chain (request override wins).
        breaker: share one circuit breaker across requests (outcome-
            changing and load-sensitive, so opt-in, like everywhere
            else in the runner).
        mem_limit_mb / task_timeout / quarantine_dir: forwarded to
            the pooled engine path (``jobs >= 2``).
        chaos: seeded :class:`~repro.runner.chaos.ChaosConfig` fault
            injection for the pooled path -- the ``chaos --serve``
            harness's hook; never set in production.
        wal_dir: directory for the request WAL and warm-state
            snapshots.  When set, every acceptance / block result /
            terminal summary is fsynced *before* its frame crosses
            the socket, and startup replays the WAL (re-enqueueing
            incomplete requests, deduping finished idempotency keys).
            None disables durability (the in-memory dedup index still
            works for the life of the process).
        snapshot_every: finished requests between warm-state snapshot
            writes (admission budgets + cache stats); a snapshot is
            always written on drain.
        dedup_entries: LRU cap on the in-memory finished-key result
            store (the exactly-once answer index).
        columnar: serve every request on the structure-of-arrays fast
            path (numpy required; byte-identical frames and
            summaries).
        telemetry: optional loopback HTTP listen address for the
            Prometheus exposition endpoint (``GET /metrics``); same
            accepted forms as ``address`` minus unix sockets.  When
            set and no registry was supplied, the server creates one
            so the endpoint is never empty.  None disables the
            listener (the ``metrics`` op still answers).
        overload: adaptive overload control -- the pressure monitor
            and degradation ladder of :mod:`repro.serve.overload`.
            The default config is conservative (the ladder sits at L0
            until a pressure signal approaches its budget); None
            disables the monitor entirely.
    """

    address: str
    workers: int = 2
    max_queued: int = 16
    jobs: int = 1
    tenant_rate: float = 50.0
    tenant_burst: float = 100.0
    tenant_max_blocks: int | None = None
    max_request_blocks: int = 10_000
    block_wall_s: float | None = 30.0
    max_work: int | None = None
    default_deadline_s: float | None = None
    drain_grace_s: float = 5.0
    drain_force_s: float = 10.0
    cache_entries: int = 512
    chain: tuple[str, ...] | None = None
    breaker: bool = False
    mem_limit_mb: int | None = None
    task_timeout: float | None = 60.0
    quarantine_dir: str | None = None
    chaos: object | None = None
    wal_dir: str | None = None
    snapshot_every: int = 8
    dedup_entries: int = 1024
    columnar: bool = False
    telemetry: str | None = None
    overload: OverloadConfig | None = field(
        default_factory=OverloadConfig)


@dataclass
class ServerStats:
    """Global request/block accounting (the ``stats`` endpoint).

    ``blocks_scheduled + blocks_degraded + blocks_quarantined +
    blocks_shed == blocks_admitted`` must hold once every admitted
    request has terminated; ``duplicate_blocks`` must stay 0.  The
    chaos harness asserts both.
    """

    requests_admitted: int = 0
    requests_completed: int = 0
    requests_errored: int = 0
    blocks_admitted: int = 0
    blocks_scheduled: int = 0
    blocks_degraded: int = 0
    blocks_quarantined: int = 0
    blocks_shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    duplicate_blocks: int = 0
    disconnects: int = 0
    requests_deduped: int = 0
    requests_recovered: int = 0
    wal_replayed: int = 0
    wal_dropped: int = 0

    @property
    def accounted(self) -> bool:
        """Every admitted block has exactly one verdict."""
        return (self.blocks_scheduled + self.blocks_degraded
                + self.blocks_quarantined + self.blocks_shed
                == self.blocks_admitted)

    def to_dict(self) -> dict:
        return {
            "requests_admitted": self.requests_admitted,
            "requests_completed": self.requests_completed,
            "requests_errored": self.requests_errored,
            "blocks_admitted": self.blocks_admitted,
            "blocks_scheduled": self.blocks_scheduled,
            "blocks_degraded": self.blocks_degraded,
            "blocks_quarantined": self.blocks_quarantined,
            "blocks_shed": self.blocks_shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "duplicate_blocks": self.duplicate_blocks,
            "disconnects": self.disconnects,
            "requests_deduped": self.requests_deduped,
            "requests_recovered": self.requests_recovered,
            "wal_replayed": self.wal_replayed,
            "wal_dropped": self.wal_dropped,
            "accounted": self.accounted,
        }


class _Active:
    """One in-flight request's server-side state.

    ``ticket`` is None for WAL-recovered requests (their admission was
    charged -- and snapshotted -- by a previous daemon generation).
    """

    def __init__(self, request: ScheduleRequest, ticket,
                 key: str | None = None) -> None:
        self.request = request
        self.ticket = ticket
        self.key = key
        self.cancel_reason: str | None = None
        self.seen: set[tuple[str, int]] = set()
        self.blocks: list = []
        self.result_blocks: dict[int, dict] = {}
        self.result_sheds: dict[int, str] = {}
        self.t0 = time.monotonic()


class ReproServer:
    """The daemon.  Create, then ``await run()`` (or use
    :class:`BackgroundServer`)."""

    def __init__(self, config: ServeConfig,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config
        if metrics is None and config.telemetry is not None:
            # A telemetry endpoint with nothing behind it would scrape
            # empty; give it a registry.
            metrics = MetricsRegistry()
        self.metrics = metrics
        self.tracer = tracer
        self._tracer_lock = threading.Lock()
        #: sliding-window request aggregates (p50/p99, shed/reject
        #: rates, queue depth) behind the ``metrics`` op / endpoint
        self.window = RollingWindow()
        self._telemetry_server: asyncio.AbstractServer | None = None
        #: the degradation ladder + its monitor (None when disabled)
        self.ladder: DegradationLadder | None = None
        self.overload_monitor: OverloadMonitor | None = None
        self._overload_task: asyncio.Task | None = None
        if config.overload is not None:
            self.ladder = DegradationLadder(
                config.overload,
                on_transition=self._on_overload_transition)
            self.overload_monitor = OverloadMonitor(
                self.ladder, self._overload_signals,
                interval_s=config.overload.interval_s)
        self.admission = AdmissionController(
            max_active=config.workers,
            max_queued=config.max_queued,
            tenant_rate=config.tenant_rate,
            tenant_burst=config.tenant_burst,
            tenant_max_blocks=config.tenant_max_blocks,
            max_request_blocks=config.max_request_blocks,
            metrics=metrics,
            priority_tenants=frozenset(
                config.overload.priority_tenants)
            if config.overload is not None else frozenset(),
            overload_level=self.overload_level,
            completion_rate=self.window.completion_rate_rps)
        self.stats = ServerStats()
        self.breaker = (CircuitBreaker(metrics=metrics)
                        if config.breaker else None)
        self._stats_lock = threading.Lock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-serve")
        self._retry = RetryPolicy(base_delay=0.01, max_delay=0.2)
        self._active: set[_Active] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._drain_forced = False
        self._drain_event: asyncio.Event | None = None
        self._early_drain = False
        self._recovery_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started = time.monotonic()
        self.ready_event = threading.Event()
        #: request ids abandoned by the drain backstop (see
        #: :attr:`ServeConfig.drain_force_s`); non-empty means the
        #: daemon should exit non-zero.
        self.drain_abandoned: list[str] = []

        # -- durability: WAL, dedup index, warm snapshot ------------------
        #: exactly-once answer store: key -> {"status", "summary",
        #: "blocks", "sheds"}; LRU-capped, seeded from WAL recovery.
        self._finished: OrderedDict[str, dict] = OrderedDict()
        self._inflight_keys: set[str] = set()
        self._recovered: list[dict] = []
        self._snapshot_loaded = False
        self.wal: WriteAheadLog | None = None
        if config.wal_dir is not None:
            os.makedirs(config.wal_dir, exist_ok=True)
            self.wal, recovery = WriteAheadLog.open(
                os.path.join(config.wal_dir, "serve.wal"))
            self.stats.wal_replayed = recovery.replayed
            self.stats.wal_dropped = recovery.dropped
            for key, entry in recovery.finished.items():
                self._remember_finished(key, entry)
            self._recovered = recovery.incomplete
            snapshot_path = os.path.join(config.wal_dir, "warm.json")
            if os.path.exists(snapshot_path):
                try:
                    payload = read_snapshot(snapshot_path)
                    self.admission.restore_state(
                        payload.get("admission", {}))
                    self._snapshot_loaded = True
                except JournalError:
                    # A bad snapshot is warm-state loss, not an
                    # integrity problem: start cold, let fsck report
                    # it.
                    self._snapshot_loaded = False
            if metrics is not None:
                record_wal_recovery(metrics, replayed=recovery.replayed,
                                    dropped=recovery.dropped,
                                    recovered=len(recovery.incomplete))

    def _remember_finished(self, key: str, entry: dict) -> None:
        """LRU-insert one finished key into the dedup index."""
        self._finished[key] = entry
        self._finished.move_to_end(key)
        while len(self._finished) > self.config.dedup_entries:
            self._finished.popitem(last=False)

    def _snapshot_path(self) -> str | None:
        if self.config.wal_dir is None:
            return None
        return os.path.join(self.config.wal_dir, "warm.json")

    def _write_warm_snapshot(self) -> None:
        """Checkpoint warm state (atomic tmp+fsync+rename)."""
        path = self._snapshot_path()
        if path is None:
            return
        write_snapshot(path, {
            "admission": self.admission.export_state(),
            "cache": cache_stats(),
        })

    # -- overload control ---------------------------------------------------

    def overload_level(self) -> int:
        """The degradation ladder's active level (0 when disabled)."""
        return self.ladder.level if self.ladder is not None else 0

    def _overload_signals(self) -> OverloadSignals:
        """One pressure sample (the monitor fills in lag and RSS).

        Uses the window's short-horizon reader, not the full 60s
        snapshot: p99 and queue depth must decay once pressure stops
        or the ladder cannot descend until old buckets expire.  Ten
        seconds (two buckets) keeps the saturation latch long enough
        to outlive any monitor interval and short enough that
        post-storm descent starts promptly.
        """
        recent = self.window.recent(10.0)
        return OverloadSignals(
            occupancy=self.admission.occupancy,
            capacity=self.config.workers + self.config.max_queued,
            queue_depth=recent["queue_depth_max"],
            p99_s=recent["p99_s"],
            wal_backlog=len(self._inflight_keys))

    def _on_overload_transition(self, event: Transition) -> None:
        """Count, trace, and act on one ladder transition."""
        record_overload_transition(
            self.metrics,
            from_level=LEVEL_NAMES[event.from_level],
            to_level=LEVEL_NAMES[event.to_level],
            direction=event.direction)
        if self.tracer is not None:
            with self._tracer_lock:
                self.tracer.event("overload-transition",
                                  **event.to_dict())
        if event.to_level >= L_EMERGENCY:
            # Emergency: nothing new admits, so the warm dependence
            # caches are the biggest reclaimable allocation left.
            release_caches()

    async def _overload_loop(self) -> None:
        """The monitor's periodic tick, on the event loop.

        Sleeping *on the loop* is what makes the lag signal honest:
        when the loop is starved the tick fires late and the monitor
        measures exactly that overshoot.
        """
        interval = self.overload_monitor.interval_s
        try:
            while True:
                await asyncio.sleep(interval)
                self.overload_monitor.tick()
        except asyncio.CancelledError:
            pass

    # -- frame plumbing -----------------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    lock: asyncio.Lock, frame: dict) -> bool:
        """Write one frame; False when the client is gone."""
        async with lock:
            if writer.is_closing():
                return False
            try:
                writer.write(protocol.encode(frame))
                await writer.drain()
                return True
            except (ConnectionError, BrokenPipeError, OSError):
                return False

    def _account_frame(self, active: _Active, frame: dict) -> None:
        """Fold one streamed frame into the global accounting.

        Runs on the event loop (single-threaded per server), so the
        per-request dedup set needs no lock; the stats counters take
        one anyway because the engine summary path also touches them.
        """
        kind = frame.get("type")
        if kind == "block":
            key = ("block", frame["block"]["index"])
        elif kind == "shed":
            key = ("shed", frame["index"])
        else:
            return
        with self._stats_lock:
            if key in active.seen \
                    or ("block", key[1]) in active.seen \
                    or ("shed", key[1]) in active.seen:
                self.stats.duplicate_blocks += 1
                return
            active.seen.add(key)
            if kind == "shed":
                self.stats.blocks_shed += 1
                reason = frame["reason"]
                active.result_sheds[frame["index"]] = reason
                self.stats.shed_by_reason[reason] = \
                    self.stats.shed_by_reason.get(reason, 0) + 1
                self.window.observe_shed(1)
            else:
                record = frame["block"]
                active.result_blocks[record["index"]] = record
                if record.get("type") == "quarantined":
                    self.stats.blocks_quarantined += 1
                elif record.get("builder") is None:
                    self.stats.blocks_degraded += 1
                else:
                    self.stats.blocks_scheduled += 1

    # -- the ops ------------------------------------------------------------

    def _health_frame(self) -> dict:
        snapshot = self.admission.snapshot()
        frame = {
            "type": "health",
            "ok": True,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": snapshot["draining"],
            "occupancy": snapshot["occupancy"],
            "workers": self.config.workers,
            "columnar": self.config.columnar,
            "cache": cache_stats(),
            "cache_threads": cache_details(),
            "wal": {
                "enabled": self.wal is not None,
                "replayed": self.stats.wal_replayed,
                "dropped": self.stats.wal_dropped,
                "recovered": self.stats.requests_recovered,
                "deduped": self.stats.requests_deduped,
                "inflight_keys": len(self._inflight_keys),
                "finished_keys": len(self._finished),
                "snapshot_loaded": self._snapshot_loaded,
            },
        }
        if self.ladder is not None:
            frame["overload"] = {
                "level": self.ladder.level,
                "level_name": self.ladder.level_name,
                "score": round(self.ladder.score, 4),
                "dominant": self.ladder.dominant,
            }
        if self.breaker is not None:
            frame["breaker"] = {
                b: self.breaker.state(b)
                for b, _ in self.breaker.transitions} or {}
        return frame

    def _ready_frame(self) -> dict:
        ok, reason = self.admission.would_admit()
        return {"type": "ready", "ok": ok, "reason": reason}

    def _stats_frame(self) -> dict:
        with self._stats_lock:
            stats = self.stats.to_dict()
        return {"type": "stats", "server": stats,
                "admission": self.admission.snapshot(),
                "cache": cache_stats(),
                "overload": (self.overload_monitor.snapshot()
                             if self.overload_monitor is not None
                             else {"enabled": False})}

    def exposition_text(self) -> str:
        """The full Prometheus exposition: registry + window + server.

        Deterministic for a given server state; the ``--telemetry``
        HTTP endpoint and the ``metrics`` op both serve exactly this
        text.
        """
        parts = []
        if self.metrics is not None:
            parts.append(render_exposition(self.metrics.snapshot()))
        parts.append(self.window.exposition())
        snapshot = self.admission.snapshot()
        server_lines = [
            "# HELP repro_serve_uptime_seconds Daemon uptime.",
            "# TYPE repro_serve_uptime_seconds gauge",
            f"repro_serve_uptime_seconds "
            f"{round(time.monotonic() - self._started, 3)}",
            "# HELP repro_serve_occupancy Admitted requests running "
            "or queued.",
            "# TYPE repro_serve_occupancy gauge",
            f"repro_serve_occupancy {snapshot['occupancy']}",
            "# HELP repro_serve_draining 1 once drain has begun.",
            "# TYPE repro_serve_draining gauge",
            f"repro_serve_draining {int(snapshot['draining'])}",
        ]
        if self.ladder is not None:
            server_lines += [
                "# HELP repro_overload_level Active degradation-"
                "ladder level (0 normal .. 4 emergency).",
                "# TYPE repro_overload_level gauge",
                f"repro_overload_level {self.ladder.level}",
                "# HELP repro_overload_max_level Highest ladder "
                "level reached since boot.",
                "# TYPE repro_overload_max_level gauge",
                f"repro_overload_max_level {self.ladder.max_level}",
            ]
        parts.append("\n".join(server_lines) + "\n")
        return "".join(parts)

    def _metrics_frame(self) -> dict:
        return {"type": "metrics",
                "content_type": EXPOSITION_CONTENT_TYPE,
                "exposition": self.exposition_text(),
                "window": self.window.snapshot()}

    # -- request execution --------------------------------------------------

    def _run_admitted(self, active: _Active, machine, blocks,
                      emit, completed: dict | None = None) -> dict:
        """Executor-thread body for one admitted request."""
        request = active.request
        if request.deadline_s is None \
                and self.config.default_deadline_s is not None:
            request = dataclasses.replace(
                request, deadline_s=self.config.default_deadline_s)
        cfg = self.config
        # Degradation overrides, latched at execution start (the
        # ladder may move mid-request; a request runs at one level):
        # L1+ drops optional work (trace detail, warm-cache head
        # room), L2+ swaps in the cheap brownout chain -- overriding
        # even the client's chain preference -- and caps per-request
        # parallelism.
        level = self.overload_level()
        chain = cfg.chain
        jobs = cfg.jobs
        cache_entries = cfg.cache_entries
        degraded_trace = False
        if cfg.overload is not None and level >= L_SHED_OPTIONAL:
            cache_entries = min(cache_entries,
                                cfg.overload.shed_cache_entries)
            degraded_trace = True
        if cfg.overload is not None and level >= L_BROWNOUT:
            chain = cfg.overload.brownout_chain
            jobs = min(jobs, cfg.overload.brownout_jobs)
            if request.chain is not None:
                request = dataclasses.replace(request, chain=None)
        # Each request records spans into a private tracer (the engine
        # runs on an executor thread); the entries are absorbed into
        # the server tracer afterwards under a lock, re-rooted, so
        # concurrent requests never interleave writes.
        private = Tracer(worker=request.id) \
            if self.tracer is not None and not degraded_trace else None
        try:
            return run_request(
                request, machine, blocks, emit,
                chain_names=chain,
                block_wall_s=cfg.block_wall_s,
                max_work=cfg.max_work,
                cache=warm_cache(request.machine, cache_entries),
                metrics=self.metrics,
                breaker=self.breaker,
                cancelled=lambda: active.cancel_reason
                or (SHED_DRAIN if self._drain_forced else None),
                jobs=jobs,
                chaos=cfg.chaos,
                retry=self._retry,
                task_timeout=cfg.task_timeout,
                quarantine_dir=cfg.quarantine_dir,
                mem_limit_mb=cfg.mem_limit_mb,
                completed=completed,
                columnar=cfg.columnar,
                tracer=private)
        finally:
            if private is not None and private.entries:
                with self._tracer_lock:
                    self.tracer.absorb(private.entries,
                                       worker=request.id)

    async def _replay_finished(self, writer, lock, rid: str, key: str,
                               entry: dict) -> None:
        """Answer a finished idempotency key from the result store.

        Nothing is recomputed and nothing is charged to admission:
        the recorded blocks, sheds, and summary stream back with the
        ``done`` frame marked ``deduped`` (exactly-once results).
        The frames echo the *original* request's trace id -- the one
        the recorded block records carry -- not a resend's, so the id
        that lived through the WAL is the id the client sees.
        """
        with self._stats_lock:
            self.stats.requests_deduped += 1
        if self.metrics is not None:
            record_wal_dedup(self.metrics)
        trace = (entry.get("request") or {}).get("trace")
        if trace is not None and not isinstance(trace, str):
            trace = None
        status = entry.get("status", FINISHED_OK)
        if status == FINISHED_OK:
            for index in sorted(entry.get("blocks", {})):
                await self._send(writer, lock, protocol.block_frame(
                    rid, entry["blocks"][index], trace=trace))
            for index in sorted(entry.get("sheds", {})):
                await self._send(writer, lock, protocol.shed_frame(
                    rid, index, entry["sheds"][index], trace=trace))
            await self._send(writer, lock, protocol.done_frame(
                rid, entry.get("summary", {}), deduped=True,
                trace=trace))
        else:
            await self._send(writer, lock, protocol.error_frame(
                rid, f"previous-attempt-{status}",
                f"idempotency key {key!r} already finished with "
                f"status {status!r}", code=500, trace=trace))

    async def _handle_schedule(self, message: dict,
                               writer: asyncio.StreamWriter,
                               lock: asyncio.Lock) -> None:
        loop = asyncio.get_running_loop()
        request = ScheduleRequest.from_message(message)
        if request.machine not in MACHINE_PRESETS:
            await self._send(writer, lock, protocol.error_frame(
                request.id, "unknown-machine",
                f"unknown machine {request.machine!r}; known: "
                f"{sorted(MACHINE_PRESETS)}", trace=request.trace))
            return
        key = request.key or f"auto-{uuid.uuid4().hex}"
        finished = self._finished.get(key)
        if finished is not None:
            self._finished.move_to_end(key)
            await self._replay_finished(writer, lock, request.id, key,
                                        finished)
            return
        if key in self._inflight_keys:
            self.admission.note_rejection(request.tenant,
                                          REJECT_DUPLICATE)
            self.window.observe_rejection()
            await self._send(writer, lock, protocol.rejected_frame(
                request.id, REJECT_DUPLICATE,
                detail=f"idempotency key {key!r} is already "
                       f"executing", trace=request.trace))
            return
        # Reserve the key before the first await so two pipelined
        # duplicates cannot both pass the checks above.
        self._inflight_keys.add(key)
        try:
            try:
                # Expansion can be big (parse + window): keep it off
                # the event loop so health/ready stay responsive under
                # load.  The block cap is enforced *inside* the
                # expansion so an oversized workload is rejected
                # before its source string is ever materialised.
                blocks = await loop.run_in_executor(
                    None, request_blocks, request,
                    self.config.max_request_blocks)
            except RequestRejected as exc:
                self.admission.note_rejection(request.tenant,
                                              exc.reason)
                self.window.observe_rejection()
                await self._send(writer, lock, protocol.rejected_frame(
                    request.id, exc.reason,
                    retry_after_s=exc.retry_after_s, detail=str(exc),
                    trace=request.trace))
                return
            except ReproError as exc:
                await self._send(writer, lock, protocol.error_frame(
                    request.id, type(exc).__name__, str(exc),
                    trace=request.trace))
                return
            try:
                ticket = self.admission.admit(request.tenant,
                                              len(blocks))
            except RequestRejected as exc:
                self.window.observe_rejection()
                await self._send(writer, lock, protocol.rejected_frame(
                    request.id, exc.reason,
                    retry_after_s=exc.retry_after_s, detail=str(exc),
                    trace=request.trace))
                return
            wal_message = dict(message)
            wal_message["key"] = key
            active = _Active(request, ticket, key=key)
            await self._execute(active, blocks, wal_message, writer,
                                lock)
        finally:
            self._inflight_keys.discard(key)

    async def _execute(self, active: _Active, blocks,
                       wal_message: dict,
                       writer: asyncio.StreamWriter | None,
                       lock: asyncio.Lock | None,
                       completed: dict | None = None,
                       log_accept: bool = True) -> None:
        """Run one admitted (or WAL-recovered) request to its end.

        The durability ordering is the whole point: acceptance is
        fsynced before the ``accepted`` frame, every block/shed record
        before its frame (inside ``emit``, on the engine thread), and
        the terminal record before the ``done``/``error`` frame.
        ``writer`` is None for recovered requests -- results then land
        only in the WAL and the dedup index, where the retrying client
        will find them.
        """
        loop = asyncio.get_running_loop()
        request = active.request
        key = active.key
        with self._stats_lock:
            self.stats.requests_admitted += 1
            self.stats.blocks_admitted += len(blocks)
        active.blocks = blocks
        self._active.add(active)
        if self.wal is not None and log_accept:
            await loop.run_in_executor(
                None, self.wal.log_accepted, key, wal_message,
                len(blocks))
        self.window.observe_queue_depth(self.admission.occupancy)
        if writer is not None:
            await self._send(writer, lock, protocol.accepted_frame(
                request.id, self.admission.occupancy, key,
                trace=request.trace))

        skip_wal = frozenset(completed or ())

        def emit(frame: dict) -> None:
            # Engine thread: fsync the record, then bridge to the
            # event loop.  Accounting happens on the loop so ordering
            # matches what the client observes; replayed indices are
            # already in the WAL and must not be re-logged.
            if self.wal is not None:
                kind = frame.get("type")
                if kind == "block" \
                        and frame["block"]["index"] not in skip_wal:
                    self.wal.log_block(key, frame["block"])
                elif kind == "shed" \
                        and frame["index"] not in skip_wal:
                    self.wal.log_shed(key, frame["index"],
                                      frame["reason"])

            def deliver() -> None:
                self._account_frame(active, frame)
                if writer is None:
                    return
                task = loop.create_task(self._send(writer, lock, frame))

                def on_sent(t) -> None:
                    if not t.cancelled() and t.exception() is None \
                            and t.result() is False \
                            and active.cancel_reason is None:
                        active.cancel_reason = SHED_DISCONNECT
                        with self._stats_lock:
                            self.stats.disconnects += 1
                task.add_done_callback(on_sent)
            loop.call_soon_threadsafe(deliver)

        machine = MACHINE_PRESETS[request.machine]()
        status = "ok"
        accounted = False

        def account_terminal(terminal_status: str) -> None:
            # Runs before the terminal frame leaves: a client that
            # scrapes the telemetry endpoint the instant it sees
            # ``done`` must find the request already counted in both
            # the registry and the sliding window.
            nonlocal accounted
            if accounted:
                return
            accounted = True
            elapsed = time.monotonic() - active.t0
            self.window.observe_request(terminal_status, elapsed)
            if self.metrics is not None:
                record_request(self.metrics, request.tenant,
                               terminal_status, elapsed)

        try:
            summary = await loop.run_in_executor(
                self._executor, self._run_admitted, active, machine,
                blocks, emit, completed)
            if self.wal is not None:
                await loop.run_in_executor(
                    None, self.wal.log_finished, key, FINISHED_OK,
                    summary)
            self._remember_finished(key, {
                "status": FINISHED_OK, "summary": summary,
                "blocks": dict(active.result_blocks),
                "sheds": dict(active.result_sheds),
                "request": dict(wal_message)})
            with self._stats_lock:
                self.stats.requests_completed += 1
            account_terminal("ok")
            if writer is not None:
                await self._send(writer, lock,
                                 protocol.done_frame(request.id,
                                                     summary,
                                                     trace=request.trace))
        except ReproError as exc:
            status = "error"
            # The request dies but its unprocessed blocks must not
            # vanish from the accounting: shed whatever has no frame.
            done = {idx for _, idx in active.seen}
            for block in blocks:
                if block.index not in done:
                    frame = protocol.shed_frame(
                        request.id, block.index, "error",
                        trace=request.trace)
                    if self.wal is not None \
                            and block.index not in skip_wal:
                        self.wal.log_shed(key, block.index, "error")
                    self._account_frame(active, frame)
            if self.wal is not None:
                await loop.run_in_executor(
                    None, self.wal.log_finished, key, FINISHED_ERROR,
                    {"error": str(exc)})
            self._remember_finished(key, {
                "status": FINISHED_ERROR,
                "summary": {"error": str(exc)},
                "blocks": {}, "sheds": {},
                "request": dict(wal_message)})
            with self._stats_lock:
                self.stats.requests_errored += 1
            account_terminal("error")
            if writer is not None:
                await self._send(writer, lock, protocol.error_frame(
                    request.id, type(exc).__name__, str(exc),
                    code=500, trace=request.trace))
        finally:
            self._active.discard(active)
            if active.ticket is not None:
                active.ticket.release()
            account_terminal(status)
            if self.config.wal_dir is not None:
                with self._stats_lock:
                    n_done = (self.stats.requests_completed
                              + self.stats.requests_errored)
                if n_done % max(1, self.config.snapshot_every) == 0:
                    await loop.run_in_executor(
                        None, self._write_warm_snapshot)

    async def _recover_incomplete(self) -> None:
        """Re-enqueue accepted-but-unfinished WAL requests.

        At-least-once execution: each recovered request runs through
        the normal engine with its already-recorded blocks passed as
        ``completed`` (re-emitted, never recomputed, never re-logged),
        so the WAL ends with exactly one record per (key, block).
        """
        loop = asyncio.get_running_loop()
        for entry in self._recovered:
            if self.admission.draining:
                break  # remaining entries stay durable for next boot
            key = entry["key"]
            if key in self._inflight_keys or key in self._finished:
                continue
            try:
                request = ScheduleRequest.from_message(entry["request"])
            except ReproError as exc:
                await loop.run_in_executor(
                    None, self.wal.log_finished, key, FINISHED_ERROR,
                    {"error": f"unreadable recovered request: {exc}"})
                continue
            if request.machine not in MACHINE_PRESETS:
                await loop.run_in_executor(
                    None, self.wal.log_finished, key, FINISHED_ERROR,
                    {"error": f"unknown machine {request.machine!r}"})
                continue
            self._inflight_keys.add(key)
            try:
                try:
                    blocks = await loop.run_in_executor(
                        None, request_blocks, request,
                        self.config.max_request_blocks)
                except ReproError as exc:
                    await loop.run_in_executor(
                        None, self.wal.log_finished, key,
                        FINISHED_ERROR, {"error": str(exc)})
                    continue
                completed = dict(entry["blocks"])
                for index, reason in entry["sheds"].items():
                    completed.setdefault(
                        index, {"type": "shed", "index": index,
                                "reason": reason})
                active = _Active(request, None, key=key)
                with self._stats_lock:
                    self.stats.requests_recovered += 1
                await self._execute(active, blocks, entry["request"],
                                    None, None, completed=completed,
                                    log_accept=False)
            finally:
                self._inflight_keys.discard(key)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        # Completed tasks drop out via the done callback so a long-
        # lived pipelining client doesn't grow this set without bound.
        tasks: set[asyncio.Task] = set()
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break  # abrupt client reset == EOF
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, lock,
                                     protocol.rejected_frame(
                                         None, protocol.REJECT_TOO_LARGE,
                                         detail=f"request line exceeds "
                                                f"{MAX_LINE_BYTES} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                    op = message.get("op")
                    if op == "health":
                        await self._send(writer, lock,
                                         self._health_frame())
                    elif op == "ready":
                        await self._send(writer, lock,
                                         self._ready_frame())
                    elif op == "stats":
                        await self._send(writer, lock,
                                         self._stats_frame())
                    elif op == "metrics":
                        await self._send(writer, lock,
                                         self._metrics_frame())
                    elif op == "schedule":
                        # Run as a task so the reader keeps consuming
                        # (pipelined requests; disconnects detected).
                        task = asyncio.ensure_future(
                            self._handle_schedule(message, writer,
                                                  lock))
                        tasks.add(task)
                        task.add_done_callback(tasks.discard)
                    else:
                        await self._send(writer, lock,
                                         protocol.error_frame(
                                             message.get("id"),
                                             "unknown-op",
                                             f"unknown op {op!r}"))
                except ReproError as exc:
                    await self._send(writer, lock, protocol.error_frame(
                        None, type(exc).__name__, str(exc)))
        finally:
            self._conn_writers.discard(writer)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- telemetry HTTP endpoint --------------------------------------------

    async def _handle_telemetry(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One scrape: a minimal HTTP/1.0-style GET handler.

        Serves ``/metrics`` (Prometheus exposition) and ``/healthz``
        (the health frame as JSON).  One response per connection
        (``Connection: close``) -- scrapers poll, they don't pipeline.
        """
        import json as _json
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=5.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:  # drain headers
                header = await asyncio.wait_for(reader.readline(),
                                                timeout=5.0)
                if not header or header in (b"\r\n", b"\n"):
                    break
            if not parts or parts[0] != "GET":
                status, ctype, body = ("405 Method Not Allowed",
                                       "text/plain", b"GET only\n")
            elif path in ("/metrics", "/"):
                status = "200 OK"
                ctype = EXPOSITION_CONTENT_TYPE
                body = self.exposition_text().encode("utf-8")
            elif path == "/healthz":
                status = "200 OK"
                ctype = "application/json"
                body = (_json.dumps(self._health_frame(),
                                    sort_keys=True) + "\n").encode()
            else:
                status, ctype, body = ("404 Not Found", "text/plain",
                                       b"try /metrics or /healthz\n")
            writer.write((f"HTTP/1.0 {status}\r\n"
                          f"Content-Type: {ctype}\r\n"
                          f"Content-Length: {len(body)}\r\n"
                          f"Connection: close\r\n\r\n").encode())
            writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError,
                UnicodeDecodeError):
            pass  # a broken scraper is its own problem
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def bound_telemetry_address(self) -> str | None:
        """The telemetry endpoint's concrete host:port, or None."""
        if self._telemetry_server is None:
            return None
        host, port = \
            self._telemetry_server.sockets[0].getsockname()[:2]
        return f"{host}:{port}"

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and mark the server ready."""
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        if self._early_drain:
            self._drain_event.set()
        parsed = parse_address(self.config.address, bind=True)
        if parsed[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=parsed[1],
                limit=MAX_LINE_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=parsed[1],
                port=parsed[2], limit=MAX_LINE_BYTES)
        if self.config.telemetry is not None:
            # Same loopback-only enforcement as the main listener; a
            # unix path would technically work but scrapers speak TCP.
            tparsed = parse_address(self.config.telemetry, bind=True)
            if tparsed[0] != "tcp":
                raise ReproError(
                    f"telemetry address must be TCP "
                    f"(host:port or port), got {self.config.telemetry!r}")
            self._telemetry_server = await asyncio.start_server(
                self._handle_telemetry, host=tparsed[1],
                port=tparsed[2])
        if self.overload_monitor is not None:
            self._overload_task = asyncio.ensure_future(
                self._overload_loop())
        self.ready_event.set()
        if self._recovered:
            # Replay accepted-but-unfinished WAL work behind the
            # freshly-bound listener; new traffic interleaves freely.
            self._recovery_task = asyncio.ensure_future(
                self._recover_incomplete())

    def bound_address(self) -> str:
        """The concrete address (resolves port 0 after bind)."""
        parsed = parse_address(self.config.address)
        if parsed[0] == "unix":
            return f"unix:{parsed[1]}"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"{host}:{port}"

    def request_drain(self) -> None:
        """Thread-safe drain trigger (what SIGTERM calls).

        Safe to call before the event loop exists: a SIGTERM that
        lands during startup is remembered and the daemon drains as
        soon as it comes up, instead of the signal being lost (or,
        worse, killing the process with state half-initialised).
        """
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: self._drain_event and self._drain_event.set())
        else:
            self._early_drain = True

    async def _drain(self) -> None:
        """Graceful shutdown: reject, grace, shed, exit."""
        self.admission.start_drain()
        if self._overload_task is not None:
            # The ladder's job is done once admission closes; freeze
            # it at its final level for the post-mortem stats frame.
            self._overload_task.cancel()
            try:
                await self._overload_task
            except asyncio.CancelledError:  # pragma: no cover
                pass
        deadline = time.monotonic() + self.config.drain_grace_s
        while self._active and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._active:
            # Grace expired: in-flight engines shed their remainder
            # (typed reason "drain") at the next block boundary.
            self._drain_forced = True
            forced = time.monotonic() + self.config.drain_force_s
            while self._active and time.monotonic() < forced:
                await asyncio.sleep(0.02)
        if self._active:
            # Hard backstop: a block with no deadline and no wall
            # clock may never reach a boundary.  Abandon it (recorded,
            # surfaced as a non-zero exit) rather than spinning
            # forever on SIGTERM.
            self.drain_abandoned = sorted(
                a.request.id for a in self._active)
            if self.wal is not None:
                # Record the abandonment so a restart does not
                # resurrect work the operator explicitly cut loose:
                # unprocessed blocks become typed drain sheds and the
                # key terminates as "abandoned".
                for active in list(self._active):
                    if active.key is None:
                        continue
                    done = {idx for _, idx in active.seen}
                    for block in active.blocks:
                        if block.index not in done:
                            self.wal.log_shed(active.key, block.index,
                                              SHED_DRAIN)
                    self.wal.log_finished(active.key,
                                          FINISHED_ABANDONED,
                                          {"abandoned": True})
        self._server.close()
        await self._server.wait_closed()
        if self._telemetry_server is not None:
            self._telemetry_server.close()
            await self._telemetry_server.wait_closed()
        # Hang up on idle clients so their handlers unwind cleanly
        # (readline sees EOF) instead of being cancelled with the
        # loop.
        for writer in list(self._conn_writers):
            writer.close()
        deadline = time.monotonic() + 2.0
        while self._conn_writers and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        if self.drain_abandoned:
            # Abandoned engines are still wedged in their threads;
            # waiting on them would just re-create the hang.
            self._executor.shutdown(wait=False, cancel_futures=True)
        else:
            self._executor.shutdown(wait=True)
        if self.config.wal_dir is not None:
            try:
                self._write_warm_snapshot()
            except OSError:  # pragma: no cover - disk full at exit
                pass
        if self.wal is not None:
            self.wal.close()

    async def run(self, install_signals: bool = True) -> None:
        """Serve until drained.  Returns normally (exit 0) on
        SIGTERM/SIGINT or :meth:`request_drain`."""
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig,
                                            self._drain_event.set)
                except (NotImplementedError, RuntimeError):
                    pass  # pragma: no cover - non-main thread
        await self._drain_event.wait()
        await self._drain()


class BackgroundServer:
    """Run a :class:`ReproServer` on a daemon thread.

    The in-process harnesses (tests, ``loadtest --in-process``,
    ``chaos --serve``) use this to get a real listening socket without
    a subprocess.  ``start()`` blocks until the listener is bound;
    ``drain()`` performs the same graceful shutdown SIGTERM would and
    joins the thread.
    """

    def __init__(self, config: ServeConfig,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.server = ReproServer(config, metrics=metrics,
                                  tracer=tracer)
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True)
        self._error: BaseException | None = None

    def _main(self) -> None:
        try:
            asyncio.run(self.server.run(install_signals=False))
        except BaseException as exc:  # noqa: BLE001 - surfaced in join
            self._error = exc
            self.server.ready_event.set()

    def start(self, timeout: float = 10.0) -> "BackgroundServer":
        self._thread.start()
        if not self.server.ready_event.wait(timeout):
            raise ReproError("serve daemon did not become ready")
        if self._error is not None:
            raise ReproError(
                f"serve daemon failed to start: {self._error}")
        return self

    @property
    def address(self) -> str:
        return self.server.bound_address()

    def drain(self, timeout: float = 30.0) -> None:
        self.server.request_drain()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ReproError("serve daemon did not drain in time")
        if self._error is not None:
            raise ReproError(f"serve daemon crashed: {self._error}")
