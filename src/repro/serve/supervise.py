"""Self-healing daemon supervision for ``repro serve --supervised``.

A supervisor is a small, boring parent process: it spawns the real
daemon as a child, forwards SIGTERM/SIGINT down, and restarts the
child -- with exponential backoff -- when it dies a death it did not
ask for.  The durability contract makes this safe: the WAL/snapshot
directory survives across generations, so every restart replays
acknowledged-but-unfinished work and the retrying client never
observes a lost acknowledgement.

What the supervisor will *not* do is flap forever: more than
``max_restarts`` unexpected exits inside ``window_s`` is a crash
loop -- the daemon is broken, not unlucky -- and the supervisor stops
with a typed :class:`~repro.errors.SupervisorError` (CLI exit 1)
instead of burning CPU masking a real bug.

Everything is injectable (spawn, clock, sleep) so the restart policy
is tested without real processes or real time; the subprocess glue
lives only in :func:`spawn_serve_child`.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass

from repro.errors import SupervisorError


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart policy knobs.

    Attributes:
        max_restarts: unexpected child exits tolerated inside
            ``window_s`` before the supervisor declares a crash loop.
        window_s: sliding window for the crash-loop count.
        backoff_base_s: delay before the first restart; doubles per
            consecutive restart.
        backoff_max_s: backoff ceiling.
    """

    max_restarts: int = 5
    window_s: float = 60.0
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0

    def backoff(self, consecutive: int) -> float:
        """Delay before restart number ``consecutive`` (1-based)."""
        return min(self.backoff_max_s,
                   self.backoff_base_s * (2 ** max(0, consecutive - 1)))


class DaemonSupervisor:
    """Restart-with-backoff loop around one child daemon.

    Args:
        spawn: zero-argument callable returning a child handle with
            ``wait() -> int``, ``poll() -> int | None``, ``pid``, and
            ``send_signal(sig)`` (a :class:`subprocess.Popen` fits).
        policy: restart policy.
        pid_path: where to record the live child's pid (one line,
            rewritten per generation) -- the chaos harness's kill
            target.  None skips the file.
        clock / sleep: injectable time for deterministic tests.

    The run loop's contract:

    * child exits 0 -> supervisor returns 0 (clean shutdown);
    * supervisor was asked to stop (its own SIGTERM, forwarded to the
      child) -> supervisor returns the child's exit code;
    * child dies any other way -> restart after backoff, unless the
      crash-loop window is exhausted, which raises a typed
      :class:`~repro.errors.SupervisorError`.
    """

    def __init__(self, spawn, policy: SupervisorPolicy | None = None,
                 pid_path: str | None = None,
                 clock=time.monotonic, sleep=time.sleep,
                 log=lambda line: print(line, file=sys.stderr)) -> None:
        self._spawn = spawn
        self.policy = policy or SupervisorPolicy()
        self.pid_path = pid_path
        self._clock = clock
        self._sleep = sleep
        self._log = log
        self._child = None
        self._stopping = False
        self.generation = 0
        self.restarts: list[float] = []

    # -- signal plumbing -----------------------------------------------------

    def request_stop(self, sig: int = signal.SIGTERM) -> None:
        """Forward a shutdown signal to the child and stop
        restarting.  Safe to call from a signal handler."""
        self._stopping = True
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(sig)
            except (ProcessLookupError, OSError):
                pass

    def child_alive(self) -> bool:
        """True while the current daemon generation is running."""
        child = self._child
        return child is not None and child.poll() is None

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT stop the pair: forward down, stop
        restarting, let the child drain."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(
                sig, lambda signum, frame: self.request_stop(signum))

    # -- the loop ------------------------------------------------------------

    def _write_pid(self, pid: int) -> None:
        if self.pid_path is None:
            return
        # The pid file usually lives in the WAL dir, which the child
        # daemon creates on startup -- don't race its first mkdir.
        parent = os.path.dirname(self.pid_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = f"{self.pid_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{pid}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.pid_path)

    def _clear_pid(self) -> None:
        if self.pid_path is not None:
            try:
                os.unlink(self.pid_path)
            except OSError:
                pass

    def run(self) -> int:
        """Supervise until clean exit, stop request, or crash loop.

        Returns:
            The final child's exit code (0 for a clean drain).

        Raises:
            SupervisorError: crash loop -- more than
                ``policy.max_restarts`` unexpected exits inside
                ``policy.window_s``.
        """
        consecutive = 0
        try:
            while True:
                self.generation += 1
                self._child = self._spawn()
                self._write_pid(self._child.pid)
                self._log(f"supervisor: generation {self.generation} "
                          f"pid {self._child.pid}")
                if self._stopping:
                    # A stop raced the spawn: forward it so this
                    # generation drains instead of running forever.
                    self.request_stop()
                code = self._child.wait()
                if self._stopping or code == 0:
                    self._log(f"supervisor: child exited {code}; "
                              f"{'stopping' if self._stopping else 'clean'}")
                    return code
                now = self._clock()
                self.restarts.append(now)
                self.restarts = [t for t in self.restarts
                                 if now - t <= self.policy.window_s]
                if len(self.restarts) > self.policy.max_restarts:
                    raise SupervisorError(
                        f"crash loop: {len(self.restarts)} unexpected "
                        f"daemon exits within "
                        f"{self.policy.window_s:g}s "
                        f"(limit {self.policy.max_restarts}); "
                        f"last exit code {code}; refusing to restart "
                        f"-- inspect the WAL with 'repro fsck'",
                        restarts=len(self.restarts),
                        window_s=self.policy.window_s)
                consecutive += 1
                delay = self.policy.backoff(consecutive)
                self._log(f"supervisor: child died (exit {code}); "
                          f"restart {len(self.restarts)}/"
                          f"{self.policy.max_restarts} in "
                          f"{delay:.3f}s")
                self._sleep(delay)
                if self._stopping:
                    return code
        finally:
            self._clear_pid()


def spawn_serve_child(argv: list[str]) -> subprocess.Popen:
    """Spawn one daemon generation: this interpreter, ``repro serve``
    with ``argv`` (supervision flags already stripped by the CLI)."""
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *argv], env=env)
