"""Request write-ahead log for the ``repro serve`` daemon.

The durability contract, in one sentence: **nothing is acknowledged
before it is fsynced**.  Every admitted :class:`ScheduleRequest` is
assigned an idempotency key (client-supplied or server-generated) and
written to this append-only log *before* the ``accepted`` frame
crosses the socket; every block result and every shed decision is
written before its frame; the terminal summary is written before the
``done`` frame.  A daemon that dies at any instant therefore leaves a
WAL from which the next generation can answer exactly the question a
retrying client asks: "did my acknowledged work survive?"

Record types (all v2 CRC frames from :mod:`repro.runner.journal`):

* ``wal-header`` -- file identity, written once at creation;
* ``accepted`` -- key, request message, block count (pre-ack fsync);
* ``block-done`` -- key, block index, the full block record;
* ``block-shed`` -- key, block index, shed reason;
* ``finished`` -- key, terminal status (``ok`` / ``error`` /
  ``abandoned``) and summary.

Request tracing rides along for free: a traced request's ``accepted``
record carries the client-minted ``trace`` id inside its stored
request message, and every ``block-done`` record's block dict is
stamped with the same id by the engine -- so a post-mortem WAL read
(or ``repro fsck``) can attribute every fsynced block to the exact
client request that caused it.  Records from before the field
existed have no ``trace`` key and replay unchanged.

Recovery (:meth:`WriteAheadLog.open`) replays the log into a
:class:`WalRecovery`: finished keys become the dedup index (resending
a finished key streams the recorded result -- exactly-once results),
unfinished keys become re-enqueued work with their already-recorded
blocks passed as ``completed`` so nothing is scheduled twice
(at-least-once execution).  A torn final write is truncated off the
file (counted in ``dropped``); any *interior* damage is a typed
:class:`~repro.errors.JournalError` -- a daemon must not append after
corruption it cannot explain.
"""

from __future__ import annotations

import os
import threading

from repro.errors import JournalError
from repro.runner.journal import (
    DAMAGE_TORN_TAIL,
    frame_record,
    parse_record_line,
    scan_lines,
)

_WAL_VERSION = 2

#: terminal request statuses a ``finished`` record may carry
FINISHED_OK = "ok"
FINISHED_ERROR = "error"
FINISHED_ABANDONED = "abandoned"
FINISHED_STATUSES = (FINISHED_OK, FINISHED_ERROR, FINISHED_ABANDONED)


class WalRecovery:
    """What a WAL scan found: the dedup index plus unfinished work.

    Attributes:
        finished: ``{key: {"status", "summary", "blocks", "sheds",
            "request"}}`` for every key with a terminal record --
            the exactly-once answer store.
        incomplete: ``[{"key", "request", "blocks", "sheds"}]`` for
            accepted-but-unfinished keys, in acceptance order --
            the at-least-once work queue (``blocks`` maps index ->
            recorded block record, ``sheds`` maps index -> reason).
        dropped: torn-tail lines truncated off the file.
        replayed: records read back successfully.
    """

    def __init__(self) -> None:
        self.finished: dict[str, dict] = {}
        self.incomplete: list[dict] = []
        self.dropped = 0
        self.replayed = 0

    def completed_map(self, entry: dict) -> dict[int, dict]:
        """An incomplete entry's blocks+sheds as an engine
        ``completed`` map (shed markers carry ``type: shed``)."""
        merged: dict[int, dict] = dict(entry["blocks"])
        for index, reason in entry["sheds"].items():
            merged.setdefault(index, {"type": "shed", "index": index,
                                      "reason": reason})
        return merged


class WriteAheadLog:
    """Append-only, fsync-on-append request log.

    Appends are serialised by a lock so engine worker threads and the
    asyncio loop can both write.  Use :meth:`open` -- it performs
    recovery (and torn-tail truncation) before handing out a handle,
    so a live WAL is always clean behind its write position.
    """

    def __init__(self, path: str, handle) -> None:
        self.path = path
        self._handle = handle
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, path: str) -> tuple["WriteAheadLog", WalRecovery]:
        """Open (creating if absent) and recover a WAL.

        Returns:
            ``(wal, recovery)``; the file is truncated just past its
            last complete record if the previous owner died mid-write.

        Raises:
            JournalError: for interior corruption (CRC mismatch,
                truncated frame, blank line) -- run ``repro fsck``.
        """
        recovery = WalRecovery()
        if os.path.exists(path):
            keep_bytes = cls._recover(path, recovery)
            if keep_bytes is not None:
                with open(path, "r+b") as raw:
                    raw.truncate(keep_bytes)
                    raw.flush()
                    os.fsync(raw.fileno())
            handle = open(path, "a", encoding="utf-8")
            if handle.tell() == 0:
                cls._write_header(handle)
        else:
            handle = open(path, "a", encoding="utf-8")
            cls._write_header(handle)
        return cls(path, handle), recovery

    @staticmethod
    def _write_header(handle) -> None:
        handle.write(frame_record(
            {"type": "wal-header", "version": _WAL_VERSION}) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    @classmethod
    def _recover(cls, path: str, recovery: WalRecovery) -> int | None:
        """Scan ``path`` into ``recovery``.

        Returns:
            A byte offset to truncate the file to (torn tail found),
            or None when the file needs no surgery.
        """
        with open(path, "rb") as raw:
            data = raw.read()
        if not data:
            return None
        raw_lines = data.split(b"\n")
        # A file ending in "\n" yields a trailing empty chunk that is
        # not a line; keep it out of the scan.
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()
        offsets: list[int] = []
        position = 0
        text_lines: list[str] = []
        for chunk in raw_lines:
            offsets.append(position)
            position += len(chunk) + 1
            text_lines.append(chunk.decode("utf-8", errors="replace"))
        header, kind, detail = parse_record_line(text_lines[0]) \
            if text_lines else (None, None, "")
        if header is None or header.get("type") != "wal-header":
            if len(text_lines) <= 1:
                # A daemon killed mid-header-write left only a torn
                # fragment: start the file over.
                recovery.dropped += 1 if text_lines else 0
                return 0
            raise JournalError(
                f"{path!r} is not a serve WAL (bad header: "
                f"{kind or 'wrong type'}: {detail})")
        records, damage = scan_lines(text_lines[1:], first_lineno=2)
        truncate_at: int | None = None
        for defect in damage:
            if defect.kind == DAMAGE_TORN_TAIL:
                recovery.dropped += 1
                truncate_at = offsets[defect.lineno - 1]
                continue
            raise JournalError(
                f"WAL {path!r} is corrupt at line {defect.lineno}: "
                f"{defect.kind}: {defect.detail}; run 'repro fsck' "
                f"before restarting the daemon")
        accepted: dict[str, dict] = {}
        order: list[str] = []
        for lineno, record in records:
            recovery.replayed += 1
            rtype = record.get("type")
            key = record.get("key")
            if rtype == "accepted":
                if not isinstance(key, str):
                    raise JournalError(
                        f"WAL {path!r} accepted record at line "
                        f"{lineno} has no key")
                if key in accepted:
                    continue  # keep the first accept's recorded work
                accepted[key] = {"key": key,
                                 "request": record.get("request", {}),
                                 "blocks": {}, "sheds": {}}
                order.append(key)
            elif rtype == "block-done":
                entry = accepted.get(key)
                if entry is not None:
                    entry["blocks"][int(record["index"])] = \
                        record.get("block", {})
            elif rtype == "block-shed":
                entry = accepted.get(key)
                if entry is not None:
                    entry["sheds"][int(record["index"])] = \
                        str(record.get("reason", "unknown"))
            elif rtype == "finished":
                entry = accepted.pop(key, None)
                if key in order:
                    order.remove(key)
                recovery.finished[key] = {
                    "status": record.get("status", FINISHED_OK),
                    "summary": record.get("summary", {}),
                    "blocks": entry["blocks"] if entry else {},
                    "sheds": entry["sheds"] if entry else {},
                    "request": entry["request"] if entry else {},
                }
            else:
                raise JournalError(
                    f"WAL {path!r} has an unknown record type "
                    f"{rtype!r} at line {lineno}")
        recovery.incomplete = [accepted[key] for key in order]
        return truncate_at

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    # -- appends (all fsync before returning) --------------------------------

    def _append(self, record: dict) -> None:
        with self._lock:
            if self._handle.closed:
                # A wedged engine thread completing after the drain
                # backstop closed the file; its request was already
                # terminated as abandoned.
                return
            self._handle.write(frame_record(record) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def log_accepted(self, key: str, request_message: dict,
                     n_blocks: int) -> None:
        """Fsync the acceptance BEFORE the accepted frame is sent."""
        self._append({"type": "accepted", "key": key,
                      "n_blocks": n_blocks,
                      "request": request_message})

    def log_block(self, key: str, record: dict) -> None:
        """Fsync one block result BEFORE its frame is sent."""
        self._append({"type": "block-done", "key": key,
                      "index": int(record["index"]), "block": record})

    def log_shed(self, key: str, index: int, reason: str) -> None:
        """Fsync one shed decision BEFORE its frame is sent."""
        self._append({"type": "block-shed", "key": key,
                      "index": int(index), "reason": reason})

    def log_finished(self, key: str, status: str,
                     summary: dict | None = None) -> None:
        """Fsync the terminal record BEFORE the done/error frame."""
        if status not in FINISHED_STATUSES:
            raise ValueError(f"bad finished status {status!r}")
        self._append({"type": "finished", "key": key,
                      "status": status, "summary": summary or {}})
