"""``repro top``: a live terminal dashboard over a running daemon.

Polls a :mod:`repro.serve` daemon's ``health``/``stats``/``metrics``
ops over the NDJSON socket and renders one compact text panel per
tick: occupancy and drain state, the sliding-window p50/p99 latency
and shed/reject rates from the server's
:class:`~repro.obs.expo.RollingWindow`, global block accounting, and
the per-thread warm-cache detail.  ``--once`` prints a single panel
and exits (what the CI smoke and the tests drive); interactive mode
redraws until interrupted.

The renderer is a pure function of the three frames, so the panel is
deterministic for a given server state and trivially testable.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import ReproError
from repro.serve.protocol import parse_address


def poll_ops(address: str, ops: tuple[str, ...] = ("health", "stats",
                                                   "metrics"),
             timeout_s: float = 10.0) -> dict:
    """One round trip: send each op, return ``{op: frame}``.

    Raises:
        ReproError: when the daemon is unreachable or answers with
            something that is not a frame per op.
    """
    parsed = parse_address(address)
    try:
        if parsed[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout_s)
            sock.connect(parsed[1])
        else:
            sock = socket.create_connection((parsed[1], parsed[2]),
                                            timeout=timeout_s)
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        raise ReproError(f"top cannot connect to {address!r}: {exc}")
    try:
        stream = sock.makefile("rw", encoding="utf-8")
        frames: dict[str, dict] = {}
        for op in ops:
            stream.write(json.dumps({"op": op, "id": f"top-{op}"})
                         + "\n")
            stream.flush()
            line = stream.readline()
            if not line:
                raise ReproError(
                    f"daemon at {address!r} hung up mid-poll")
            frames[op] = json.loads(line)
        return frames
    except (OSError, ValueError) as exc:
        raise ReproError(f"top poll of {address!r} failed: {exc}")
    finally:
        sock.close()


def _rate_line(window: dict) -> str:
    p50 = window.get("p50_s")
    p99 = window.get("p99_s")
    fmt = (lambda v: f"{v * 1000:.0f}ms" if v is not None else "-")
    return (f"window {window.get('window_s', 0):.0f}s: "
            f"{window.get('requests', 0)} req "
            f"({window.get('request_rate_rps', 0):.2f}/s), "
            f"p50 {fmt(p50)}, p99 {fmt(p99)}, "
            f"rejects {window.get('rejections', 0)}, "
            f"shed {window.get('shed_blocks', 0)} blocks, "
            f"queue<= {window.get('queue_depth_max', 0)}")


def render_top(frames: dict, address: str = "") -> str:
    """Render one dashboard panel from polled frames (pure)."""
    health = frames.get("health", {})
    stats = frames.get("stats", {})
    metrics = frames.get("metrics", {})
    server = stats.get("server", {})
    wal = health.get("wal", {})
    lines = [
        f"repro top — {address or 'daemon'}   "
        f"uptime {health.get('uptime_s', 0):.0f}s   "
        f"{'DRAINING' if health.get('draining') else 'serving'}   "
        f"workers {health.get('workers', '?')}   "
        f"occupancy {health.get('occupancy', '?')}   "
        f"columnar {'on' if health.get('columnar') else 'off'}",
        _rate_line(metrics.get("window", {})),
        f"totals: {server.get('requests_admitted', 0)} admitted, "
        f"{server.get('requests_completed', 0)} ok, "
        f"{server.get('requests_errored', 0)} errored, "
        f"{server.get('requests_deduped', 0)} deduped; "
        f"blocks {server.get('blocks_scheduled', 0)} scheduled / "
        f"{server.get('blocks_degraded', 0)} degraded / "
        f"{server.get('blocks_quarantined', 0)} quarantined / "
        f"{server.get('blocks_shed', 0)} shed "
        f"({'accounted' if server.get('accounted', True) else 'UNACCOUNTED'})",
        f"wal: {'on' if wal.get('enabled') else 'off'}, "
        f"{wal.get('finished_keys', 0)} finished keys, "
        f"{wal.get('inflight_keys', 0)} in flight, "
        f"{wal.get('replayed', 0)} replayed",
    ]
    overload = health.get("overload")
    if overload:
        lines.append(
            f"overload: L{overload.get('level', 0)} "
            f"{overload.get('level_name', 'normal')}, "
            f"score {overload.get('score', 0):.2f} "
            f"(dominant {overload.get('dominant', '-')})")
    threads = health.get("cache_threads", [])
    if threads:
        lines.append("warm caches:")
        for row in threads:
            lines.append(
                f"  {row.get('thread', '?')} [{row.get('machine', '?')}] "
                f"hits {row.get('hits', 0)} "
                f"(bundle {row.get('bundle_hits', 0)}), "
                f"misses {row.get('misses', 0)}, "
                f"entries {row.get('entries', 0)}/"
                f"{row.get('max_entries', 0)}")
    if health.get("breaker"):
        states = ", ".join(f"{b}={s}" for b, s in
                           sorted(health["breaker"].items()))
        lines.append(f"breaker: {states}")
    return "\n".join(lines)


def render_unreachable(address: str, error: str,
                       misses: int = 1) -> str:
    """The panel shown while the daemon cannot be polled."""
    return (f"repro top — {address or 'daemon'}   "
            f"unreachable, retrying (x{misses})\n"
            f"  {error}")


def run_top(address: str, interval_s: float = 2.0, once: bool = False,
            out=None, sleep=time.sleep) -> None:
    """Poll-and-render loop (``once`` prints a single panel).

    Interactive mode clears the screen with ANSI home+clear between
    redraws and stops cleanly on Ctrl-C.  A poll that fails mid-
    session -- a ``--supervised`` daemon mid-restart, a drain race --
    renders an "unreachable, retrying" panel and keeps polling
    instead of crashing the dashboard; ``--once`` still propagates
    the error (a scripted probe wants the non-zero exit).

    Raises:
        ReproError: only with ``once`` -- interactive mode retries.
    """
    import sys
    out = out or sys.stdout
    misses = 0
    while True:
        if once:
            panel = render_top(poll_ops(address), address)
            out.write(panel + "\n")
            return
        try:
            panel = render_top(poll_ops(address), address)
            misses = 0
        except ReproError as exc:
            misses += 1
            panel = render_unreachable(address, str(exc), misses)
        out.write("\x1b[H\x1b[2J" + panel + "\n")
        out.flush()
        try:
            sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return
