"""``repro chaos --serve``: chaos against a live serve daemon.

The batch chaos harness (:mod:`repro.runner.chaos`) proves the
supervised pool survives worker death; this one proves the *daemon*
survives everything around the pool at the same time:

* **worker crashes** -- the server runs its engine with ``jobs >= 2``
  and a seeded :class:`~repro.runner.chaos.ChaosConfig`, so blocks
  die mid-flight inside real worker processes and are retried or
  quarantined while results stream;
* **client disconnects** -- a seeded fraction of clients hang up
  mid-stream; the server must shed the remainder (reason
  ``disconnect``) instead of losing it or wedging a worker slot;
* **deadline storms** -- a seeded fraction of requests carry
  deadlines too small for their block count, forcing mid-batch
  shedding under load.

The verdict comes from the server's own ``stats`` endpoint, read
after the traffic settles and again after a graceful drain:

* zero lost blocks -- every admitted block has exactly one verdict
  (``scheduled + degraded + quarantined + shed == admitted``);
* zero double-scheduled blocks -- the per-request duplicate counter
  stayed 0;
* the drain completed cleanly (listener closed, thread joined).
"""

from __future__ import annotations

import asyncio
import os
import random
import tempfile
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.runner.chaos import ChaosConfig
from repro.serve import protocol
from repro.serve.loadtest import _open
from repro.serve.server import BackgroundServer, ServeConfig


@dataclass(frozen=True)
class ServeChaosConfig:
    """Seeded chaos plan for the serve harness.

    Attributes:
        seed: drives the worker-fault plan, the client fault plan,
            and the workload mix.
        requests: schedule requests to send.
        jobs: per-request supervised workers (>= 2 so crashes land in
            real worker processes).
        copies: kernel repetitions per request (blocks per request).
        exit_rate / kill_rate: worker-death injection rates
            (see :class:`~repro.runner.chaos.ChaosConfig`).
        disconnect_rate: fraction of clients that hang up after the
            first streamed frame.
        storm_rate: fraction of requests carrying a storm deadline.
        storm_deadline_s: the too-small deadline storm requests carry.
        mem_limit_mb: optional worker memory ceiling (pairs with
            ``alloc_rate`` for attributed OOM chaos).
        alloc_rate: worker allocation-burst injection rate.
        drain_grace_s: server drain grace for the final SIGTERM-
            equivalent drain.
    """

    seed: int = 0
    requests: int = 6
    jobs: int = 2
    copies: int = 6
    exit_rate: float = 0.12
    kill_rate: float = 0.08
    disconnect_rate: float = 0.25
    storm_rate: float = 0.25
    storm_deadline_s: float = 0.05
    mem_limit_mb: int | None = None
    alloc_rate: float = 0.0
    drain_grace_s: float = 10.0


@dataclass
class ServeChaosReport:
    """What the serve chaos run observed and verified."""

    requests_sent: int = 0
    requests_completed: int = 0
    requests_rejected: int = 0
    requests_disconnected: int = 0
    blocks_admitted: int = 0
    blocks_scheduled: int = 0
    blocks_degraded: int = 0
    blocks_quarantined: int = 0
    blocks_shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    duplicate_blocks: int = 0
    lost_blocks: int = 0
    drained_ok: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Zero lost, zero double-scheduled, clean drain."""
        return (self.lost_blocks == 0 and self.duplicate_blocks == 0
                and self.drained_ok)

    def to_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "requests_completed": self.requests_completed,
            "requests_rejected": self.requests_rejected,
            "requests_disconnected": self.requests_disconnected,
            "blocks_admitted": self.blocks_admitted,
            "blocks_scheduled": self.blocks_scheduled,
            "blocks_degraded": self.blocks_degraded,
            "blocks_quarantined": self.blocks_quarantined,
            "blocks_shed": self.blocks_shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "duplicate_blocks": self.duplicate_blocks,
            "lost_blocks": self.lost_blocks,
            "drained_ok": self.drained_ok,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
        }


def _chaos_mix(config: ServeChaosConfig) -> list[tuple[dict, bool]]:
    """Seeded (message, disconnect_after_first_frame) pairs."""
    rng = random.Random(f"repro-serve-chaos:{config.seed}")
    kernels = ("daxpy", "dot_product", "livermore1")
    mix = []
    for i in range(config.requests):
        message = {
            "op": "schedule",
            "id": f"chaos-{config.seed}-{i}",
            "tenant": f"tenant-{i % 2}",
            "workload": {
                "kernel": kernels[rng.randrange(len(kernels))],
                "copies": config.copies,
            },
        }
        if rng.random() < config.storm_rate:
            message["deadline_s"] = config.storm_deadline_s
        disconnect = rng.random() < config.disconnect_rate
        mix.append((message, disconnect))
    return mix


async def _chaos_client(address: str, message: dict,
                        disconnect: bool,
                        report: ServeChaosReport,
                        lock: asyncio.Lock) -> None:
    reader, writer = await _open(address)
    frames_seen = 0
    status = "completed"
    try:
        writer.write(protocol.encode(message))
        await writer.drain()
        while True:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=120.0)
            if not line:
                status = "disconnected"
                break
            frame = protocol.decode(line)
            kind = frame.get("type")
            if kind in ("block", "shed"):
                frames_seen += 1
                if disconnect and frames_seen == 1:
                    # Hang up mid-stream: the abandoned remainder
                    # must show up server-side as shed, never lost.
                    status = "disconnected"
                    break
            elif kind in ("done",):
                break
            elif kind in ("rejected",):
                status = "rejected"
                break
            elif kind in ("error",):
                status = "rejected"
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    async with lock:
        report.requests_sent += 1
        if status == "completed":
            report.requests_completed += 1
        elif status == "rejected":
            report.requests_rejected += 1
        else:
            report.requests_disconnected += 1


async def _read_stats(address: str) -> dict:
    reader, writer = await _open(address)
    try:
        writer.write(protocol.encode({"op": "stats"}))
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        return protocol.decode(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _drive(address: str, mix, report: ServeChaosReport) -> dict:
    lock = asyncio.Lock()
    await asyncio.gather(*(
        _chaos_client(address, message, disconnect, report, lock)
        for message, disconnect in mix))
    # Give disconnect-abandoned requests time to finish shedding
    # server-side before auditing the books.
    for _ in range(600):
        stats = await _read_stats(address)
        server = stats["server"]
        if stats["admission"]["occupancy"] == 0 \
                and server["accounted"]:
            return stats
        await asyncio.sleep(0.05)
    return await _read_stats(address)


def run_serve_chaos(config: ServeChaosConfig,
                    metrics: MetricsRegistry | None = None
                    ) -> ServeChaosReport:
    """Stand up a daemon, batter it, audit the books, drain it."""
    report = ServeChaosReport()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-serve-chaos-") \
            as tmp:
        worker_chaos = ChaosConfig(
            seed=config.seed,
            exit_rate=config.exit_rate,
            kill_rate=config.kill_rate,
            alloc_rate=config.alloc_rate)
        serve_config = ServeConfig(
            address=f"unix:{os.path.join(tmp, 'chaos.sock')}",
            workers=2,
            max_queued=max(4, config.requests),
            jobs=config.jobs,
            drain_grace_s=config.drain_grace_s,
            task_timeout=30.0,
            mem_limit_mb=config.mem_limit_mb,
            chaos=worker_chaos)
        background = BackgroundServer(serve_config,
                                      metrics=metrics).start()
        try:
            stats = asyncio.run(_drive(background.address,
                                       _chaos_mix(config), report))
            server = stats["server"]
            report.blocks_admitted = server["blocks_admitted"]
            report.blocks_scheduled = server["blocks_scheduled"]
            report.blocks_degraded = server["blocks_degraded"]
            report.blocks_quarantined = server["blocks_quarantined"]
            report.blocks_shed = server["blocks_shed"]
            report.shed_by_reason = server["shed_by_reason"]
            report.duplicate_blocks = server["duplicate_blocks"]
            report.lost_blocks = (
                server["blocks_admitted"]
                - server["blocks_scheduled"] - server["blocks_degraded"]
                - server["blocks_quarantined"] - server["blocks_shed"])
            background.drain()
            report.drained_ok = True
        finally:
            if not report.drained_ok:
                try:
                    background.drain(timeout=10.0)
                except Exception:  # noqa: BLE001 - already failing
                    pass
    report.wall_s = time.perf_counter() - t0
    return report


def render_serve_chaos_report(report: ServeChaosReport) -> str:
    """Human-readable report lines (CLI output)."""
    doc = report.to_dict()
    lines = [
        f"! serve chaos: {doc['requests_sent']} requests "
        f"({doc['requests_completed']} completed, "
        f"{doc['requests_disconnected']} disconnected, "
        f"{doc['requests_rejected']} rejected)",
        f"! blocks: {doc['blocks_admitted']} admitted = "
        f"{doc['blocks_scheduled']} scheduled + "
        f"{doc['blocks_degraded']} degraded + "
        f"{doc['blocks_quarantined']} quarantined + "
        f"{doc['blocks_shed']} shed",
    ]
    if doc["shed_by_reason"]:
        reasons = ", ".join(f"{k}={v}" for k, v in
                            doc["shed_by_reason"].items())
        lines.append(f"! shed reasons: {reasons}")
    lines.append(
        f"! lost blocks: {doc['lost_blocks']}, "
        f"double-scheduled: {doc['duplicate_blocks']}, "
        f"clean drain: {'yes' if doc['drained_ok'] else 'NO'}")
    lines.append(f"! verdict: {'OK' if doc['ok'] else 'FAILED'} "
                 f"in {doc['wall_s']}s")
    return "\n".join(lines)
