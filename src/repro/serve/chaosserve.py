"""``repro chaos --serve``: chaos against a live serve daemon.

The batch chaos harness (:mod:`repro.runner.chaos`) proves the
supervised pool survives worker death; this one proves the *daemon*
survives everything around the pool at the same time:

* **worker crashes** -- the server runs its engine with ``jobs >= 2``
  and a seeded :class:`~repro.runner.chaos.ChaosConfig`, so blocks
  die mid-flight inside real worker processes and are retried or
  quarantined while results stream;
* **client disconnects** -- a seeded fraction of clients hang up
  mid-stream; the server must shed the remainder (reason
  ``disconnect``) instead of losing it or wedging a worker slot;
* **deadline storms** -- a seeded fraction of requests carry
  deadlines too small for their block count, forcing mid-batch
  shedding under load.

The verdict comes from the server's own ``stats`` endpoint, read
after the traffic settles and again after a graceful drain:

* zero lost blocks -- every admitted block has exactly one verdict
  (``scheduled + degraded + quarantined + shed == admitted``);
* zero double-scheduled blocks -- the per-request duplicate counter
  stayed 0;
* the drain completed cleanly (listener closed, thread joined).
"""

from __future__ import annotations

import asyncio
import gc
import os
import random
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.runner.chaos import ChaosConfig
from repro.runner.fsck import fsck_paths
from repro.runner.journal import scan_lines
from repro.serve import protocol
from repro.serve.loadtest import (
    LoadtestConfig,
    LoadtestReport,
    _open,
    _run_storm,
    generate_storm_mix,
    mix_fingerprint,
)
from repro.serve.overload import OverloadConfig, process_rss_mb
from repro.serve.server import BackgroundServer, ServeConfig
from repro.serve.supervise import (
    DaemonSupervisor,
    SupervisorPolicy,
    spawn_serve_child,
)
from repro.serve.wal import WriteAheadLog


@dataclass(frozen=True)
class ServeChaosConfig:
    """Seeded chaos plan for the serve harness.

    Attributes:
        seed: drives the worker-fault plan, the client fault plan,
            and the workload mix.
        requests: schedule requests to send.
        jobs: per-request supervised workers (>= 2 so crashes land in
            real worker processes).
        copies: kernel repetitions per request (blocks per request).
        exit_rate / kill_rate: worker-death injection rates
            (see :class:`~repro.runner.chaos.ChaosConfig`).
        disconnect_rate: fraction of clients that hang up after the
            first streamed frame.
        storm_rate: fraction of requests carrying a storm deadline.
        storm_deadline_s: the too-small deadline storm requests carry.
        mem_limit_mb: optional worker memory ceiling (pairs with
            ``alloc_rate`` for attributed OOM chaos).
        alloc_rate: worker allocation-burst injection rate.
        drain_grace_s: server drain grace for the final SIGTERM-
            equivalent drain.
    """

    seed: int = 0
    requests: int = 6
    jobs: int = 2
    copies: int = 6
    exit_rate: float = 0.12
    kill_rate: float = 0.08
    disconnect_rate: float = 0.25
    storm_rate: float = 0.25
    storm_deadline_s: float = 0.05
    mem_limit_mb: int | None = None
    alloc_rate: float = 0.0
    drain_grace_s: float = 10.0


@dataclass
class ServeChaosReport:
    """What the serve chaos run observed and verified."""

    requests_sent: int = 0
    requests_completed: int = 0
    requests_rejected: int = 0
    requests_disconnected: int = 0
    blocks_admitted: int = 0
    blocks_scheduled: int = 0
    blocks_degraded: int = 0
    blocks_quarantined: int = 0
    blocks_shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    duplicate_blocks: int = 0
    lost_blocks: int = 0
    drained_ok: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Zero lost, zero double-scheduled, clean drain."""
        return (self.lost_blocks == 0 and self.duplicate_blocks == 0
                and self.drained_ok)

    def to_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "requests_completed": self.requests_completed,
            "requests_rejected": self.requests_rejected,
            "requests_disconnected": self.requests_disconnected,
            "blocks_admitted": self.blocks_admitted,
            "blocks_scheduled": self.blocks_scheduled,
            "blocks_degraded": self.blocks_degraded,
            "blocks_quarantined": self.blocks_quarantined,
            "blocks_shed": self.blocks_shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "duplicate_blocks": self.duplicate_blocks,
            "lost_blocks": self.lost_blocks,
            "drained_ok": self.drained_ok,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
        }


def _chaos_mix(config: ServeChaosConfig) -> list[tuple[dict, bool]]:
    """Seeded (message, disconnect_after_first_frame) pairs."""
    rng = random.Random(f"repro-serve-chaos:{config.seed}")
    kernels = ("daxpy", "dot_product", "livermore1")
    mix = []
    for i in range(config.requests):
        message = {
            "op": "schedule",
            "id": f"chaos-{config.seed}-{i}",
            "tenant": f"tenant-{i % 2}",
            "workload": {
                "kernel": kernels[rng.randrange(len(kernels))],
                "copies": config.copies,
            },
        }
        if rng.random() < config.storm_rate:
            message["deadline_s"] = config.storm_deadline_s
        disconnect = rng.random() < config.disconnect_rate
        mix.append((message, disconnect))
    return mix


async def _chaos_client(address: str, message: dict,
                        disconnect: bool,
                        report: ServeChaosReport,
                        lock: asyncio.Lock) -> None:
    reader, writer = await _open(address)
    frames_seen = 0
    status = "completed"
    try:
        writer.write(protocol.encode(message))
        await writer.drain()
        while True:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=120.0)
            if not line:
                status = "disconnected"
                break
            frame = protocol.decode(line)
            kind = frame.get("type")
            if kind in ("block", "shed"):
                frames_seen += 1
                if disconnect and frames_seen == 1:
                    # Hang up mid-stream: the abandoned remainder
                    # must show up server-side as shed, never lost.
                    status = "disconnected"
                    break
            elif kind in ("done",):
                break
            elif kind in ("rejected",):
                status = "rejected"
                break
            elif kind in ("error",):
                status = "rejected"
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    async with lock:
        report.requests_sent += 1
        if status == "completed":
            report.requests_completed += 1
        elif status == "rejected":
            report.requests_rejected += 1
        else:
            report.requests_disconnected += 1


async def _read_stats(address: str) -> dict:
    reader, writer = await _open(address)
    try:
        writer.write(protocol.encode({"op": "stats"}))
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        return protocol.decode(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _drive(address: str, mix, report: ServeChaosReport) -> dict:
    lock = asyncio.Lock()
    await asyncio.gather(*(
        _chaos_client(address, message, disconnect, report, lock)
        for message, disconnect in mix))
    # Give disconnect-abandoned requests time to finish shedding
    # server-side before auditing the books.
    for _ in range(600):
        stats = await _read_stats(address)
        server = stats["server"]
        if stats["admission"]["occupancy"] == 0 \
                and server["accounted"]:
            return stats
        await asyncio.sleep(0.05)
    return await _read_stats(address)


def run_serve_chaos(config: ServeChaosConfig,
                    metrics: MetricsRegistry | None = None
                    ) -> ServeChaosReport:
    """Stand up a daemon, batter it, audit the books, drain it."""
    report = ServeChaosReport()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-serve-chaos-") \
            as tmp:
        worker_chaos = ChaosConfig(
            seed=config.seed,
            exit_rate=config.exit_rate,
            kill_rate=config.kill_rate,
            alloc_rate=config.alloc_rate)
        serve_config = ServeConfig(
            address=f"unix:{os.path.join(tmp, 'chaos.sock')}",
            workers=2,
            max_queued=max(4, config.requests),
            jobs=config.jobs,
            drain_grace_s=config.drain_grace_s,
            task_timeout=30.0,
            mem_limit_mb=config.mem_limit_mb,
            chaos=worker_chaos)
        background = BackgroundServer(serve_config,
                                      metrics=metrics).start()
        try:
            stats = asyncio.run(_drive(background.address,
                                       _chaos_mix(config), report))
            server = stats["server"]
            report.blocks_admitted = server["blocks_admitted"]
            report.blocks_scheduled = server["blocks_scheduled"]
            report.blocks_degraded = server["blocks_degraded"]
            report.blocks_quarantined = server["blocks_quarantined"]
            report.blocks_shed = server["blocks_shed"]
            report.shed_by_reason = server["shed_by_reason"]
            report.duplicate_blocks = server["duplicate_blocks"]
            report.lost_blocks = (
                server["blocks_admitted"]
                - server["blocks_scheduled"] - server["blocks_degraded"]
                - server["blocks_quarantined"] - server["blocks_shed"])
            background.drain()
            report.drained_ok = True
        finally:
            if not report.drained_ok:
                try:
                    background.drain(timeout=10.0)
                except Exception:  # noqa: BLE001 - already failing
                    pass
    report.wall_s = time.perf_counter() - t0
    return report


# -- storm chaos: overload flood + in-daemon memory hog ---------------------


@dataclass(frozen=True)
class StormChaosConfig:
    """Seeded plan for ``repro chaos --serve --storm``.

    A deliberately tiny daemon (one worker, a two-deep queue) with an
    aggressive :class:`~repro.serve.overload.OverloadConfig` is hit
    with a storm-mix flood while an in-process memory hog inflates
    the daemon's RSS past its budget.  The verdict:

    * the daemon never crashes or OOMs -- the final drain completes
      and zero requests terminate without a typed frame;
    * block accounting stays exact through every degradation level
      (``scheduled + degraded + quarantined + shed == admitted``);
    * priority-class tenants' error budget holds (they retry through
      the rejections and their admitted requests meet deadlines);
    * the ladder engaged (max level >= 1) and descended back to L0
      once the storm passed.

    Attributes:
        seed: drives the storm mix.
        requests: flood size.
        concurrency: client connections flooding in parallel.
        priority_share: fraction of flood requests from
            priority-class tenants.
        copies_max: request size knob (blocks per request, 1..max).
        hog_mb: size of the in-process allocation burst.
        hog_hold_s: how long the hog is held before release.
        cooldown_s: how long to wait for the ladder to return to L0.
        drain_grace_s: server drain grace for the final drain.
    """

    seed: int = 0
    requests: int = 48
    concurrency: int = 8
    priority_share: float = 0.25
    copies_max: int = 2
    hog_mb: int = 48
    hog_hold_s: float = 1.0
    cooldown_s: float = 30.0
    drain_grace_s: float = 10.0


@dataclass
class StormChaosReport:
    """What the storm chaos run observed and verified."""

    requests_sent: int = 0
    requests_completed: int = 0
    requests_rejected: int = 0
    requests_errored: int = 0
    storm: dict = field(default_factory=dict)
    blocks_admitted: int = 0
    blocks_scheduled: int = 0
    blocks_degraded: int = 0
    blocks_quarantined: int = 0
    blocks_shed: int = 0
    lost_blocks: int = 0
    priority_budget_ok: float = 1.0
    besteffort_overload_rejections: int = 0
    max_level: int = 0
    recovered: bool = False
    transitions_total: int = 0
    descents_total: int = 0
    hog_peak_rss_mb: float | None = None
    drained_ok: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Survived, accounted, priority budget held, recovered."""
        return (self.drained_ok
                and self.requests_errored == 0
                and self.lost_blocks == 0
                and self.max_level >= 1
                and self.recovered
                and self.priority_budget_ok >= 0.9)

    def to_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "requests_completed": self.requests_completed,
            "requests_rejected": self.requests_rejected,
            "requests_errored": self.requests_errored,
            "storm": self.storm,
            "blocks_admitted": self.blocks_admitted,
            "blocks_scheduled": self.blocks_scheduled,
            "blocks_degraded": self.blocks_degraded,
            "blocks_quarantined": self.blocks_quarantined,
            "blocks_shed": self.blocks_shed,
            "lost_blocks": self.lost_blocks,
            "priority_budget_ok": self.priority_budget_ok,
            "besteffort_overload_rejections":
                self.besteffort_overload_rejections,
            "max_level": self.max_level,
            "recovered": self.recovered,
            "transitions_total": self.transitions_total,
            "descents_total": self.descents_total,
            "hog_peak_rss_mb": self.hog_peak_rss_mb,
            "drained_ok": self.drained_ok,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
        }


async def _storm_scenario(address: str, lt_config: LoadtestConfig,
                          mix: list[dict],
                          lt_report: LoadtestReport,
                          config: StormChaosConfig,
                          report: StormChaosReport) -> dict:
    """Flood + memory hog concurrently, then settle the books."""

    async def hog() -> None:
        # The hog shares the daemon's process (BackgroundServer runs
        # in-process), so this inflates the RSS the overload monitor
        # samples.  Built by one C-level repeat: every page is
        # written (so resident), and the GIL is not held across a
        # Python loop that would starve the daemon's event loop for
        # the whole flood.
        ballast = bytearray(b"\x01") * (config.hog_mb << 20)
        report.hog_peak_rss_mb = process_rss_mb()
        await asyncio.sleep(config.hog_hold_s)
        del ballast
        gc.collect()

    await asyncio.gather(
        _run_storm(lt_config, mix, lt_report, None), hog())
    for _ in range(600):
        stats = await _read_stats(address)
        if stats["admission"]["occupancy"] == 0 \
                and stats["server"]["accounted"]:
            return stats
        await asyncio.sleep(0.05)
    return await _read_stats(address)


def run_storm_chaos(config: StormChaosConfig,
                    metrics: MetricsRegistry | None = None
                    ) -> StormChaosReport:
    """Stand up a tiny daemon, storm it, audit ladder and books."""
    report = StormChaosReport()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-storm-chaos-") \
            as tmp:
        overload = OverloadConfig(
            # Aggressive: tick fast, dwell briefly, so a short flood
            # walks the whole ladder and descends within cooldown.
            interval_s=0.02,
            dwell_s=(0.0, 0.05, 0.05, 0.08, 0.1),
            dwell_up_s=0.02,
            # p99 and RSS stay out of the ladder here: a one-worker
            # daemon under flood has honest multi-second latencies,
            # and the post-storm working set sits wherever the
            # allocator left it -- neither decays on the cooldown
            # timescale the scenario asserts on.  Occupancy drives
            # the ladder; the hog asserts survival, not transitions
            # (RSS-driven transitions are unit-tested with fake
            # signals).
            p99_budget_s=60.0)
        serve_config = ServeConfig(
            address=f"unix:{os.path.join(tmp, 'storm.sock')}",
            workers=1,
            max_queued=2,
            jobs=1,
            drain_grace_s=config.drain_grace_s,
            task_timeout=30.0,
            overload=overload)
        background = BackgroundServer(serve_config,
                                      metrics=metrics).start()
        lt_config = LoadtestConfig(
            address=background.address,
            seed=config.seed,
            requests=config.requests,
            concurrency=config.concurrency,
            copies_max=config.copies_max,
            deadline_s=30.0,
            priority_share=config.priority_share,
            storm=True,
            cooldown_s=config.cooldown_s)
        mix = generate_storm_mix(lt_config)
        lt_report = LoadtestReport(seed=config.seed,
                                   fingerprint=mix_fingerprint(mix))
        try:
            stats = asyncio.run(_storm_scenario(
                background.address, lt_config, mix, lt_report,
                config, report))
            server = stats["server"]
            report.requests_sent = lt_report.sent
            report.requests_completed = lt_report.completed
            report.requests_rejected = lt_report.rejected
            report.requests_errored = lt_report.errored
            report.storm = lt_report.storm or {}
            report.blocks_admitted = server["blocks_admitted"]
            report.blocks_scheduled = server["blocks_scheduled"]
            report.blocks_degraded = server["blocks_degraded"]
            report.blocks_quarantined = server["blocks_quarantined"]
            report.blocks_shed = server["blocks_shed"]
            report.lost_blocks = (
                server["blocks_admitted"]
                - server["blocks_scheduled"]
                - server["blocks_degraded"]
                - server["blocks_quarantined"]
                - server["blocks_shed"])
            storm = report.storm
            report.max_level = int(storm.get("max_level", 0))
            report.recovered = bool(storm.get("recovered"))
            report.transitions_total = int(
                storm.get("transitions_total", 0))
            report.descents_total = int(
                storm.get("descents_total", 0))
            by_class = storm.get("by_class", {})
            report.priority_budget_ok = float(
                by_class.get("priority", {}).get("budget_ok", 1.0))
            report.besteffort_overload_rejections = int(
                by_class.get("best-effort", {})
                .get("rejected_overload", 0))
            background.drain()
            report.drained_ok = True
        finally:
            if not report.drained_ok:
                try:
                    background.drain(timeout=10.0)
                except Exception:  # noqa: BLE001 - already failing
                    pass
    report.wall_s = time.perf_counter() - t0
    return report


def render_storm_chaos_report(report: StormChaosReport) -> str:
    """Human-readable storm chaos verdict (CLI output)."""
    doc = report.to_dict()
    lines = [
        f"! storm chaos: {doc['requests_sent']} requests "
        f"({doc['requests_completed']} completed, "
        f"{doc['requests_rejected']} rejected, "
        f"{doc['requests_errored']} errored)",
        f"! ladder: max L{doc['max_level']}, "
        f"{doc['transitions_total']} transitions "
        f"({doc['descents_total']} descents), "
        f"{'recovered to L0' if doc['recovered'] else 'DID NOT RECOVER'}",
        f"! priority: error budget "
        f"{doc['priority_budget_ok']:.1%}; best-effort: "
        f"{doc['besteffort_overload_rejections']} overload "
        f"rejections",
        f"! blocks: {doc['blocks_admitted']} admitted = "
        f"{doc['blocks_scheduled']} scheduled + "
        f"{doc['blocks_degraded']} degraded + "
        f"{doc['blocks_quarantined']} quarantined + "
        f"{doc['blocks_shed']} shed "
        f"(lost {doc['lost_blocks']})",
        f"! drain: {'clean' if doc['drained_ok'] else 'FAILED'}; "
        f"hog peak RSS "
        f"{doc['hog_peak_rss_mb'] or 0:.0f} MB",
        f"! verdict: {'OK' if doc['ok'] else 'FAILED'} "
        f"in {doc['wall_s']}s",
    ]
    return "\n".join(lines)


# -- kill-daemon chaos: SIGKILL the daemon itself, audit the WAL ------------


@dataclass(frozen=True)
class KillDaemonConfig:
    """Seeded plan for ``repro chaos --serve --kill-daemon``.

    A supervised daemon (real child processes, real SIGKILL) is
    battered while keyed clients retry through the restarts.  The
    verdict is read from the WAL, not from any single generation's
    in-memory stats.

    Attributes:
        seed: drives kill timing jitter and the workload mix.
        requests: keyed schedule requests the clients must land.
        copies: kernel repetitions per request (blocks per request).
        kills: SIGKILLs delivered to daemon generations mid-load.
        kill_interval_s: nominal spacing between kills (jittered).
        wall_timeout_s: hard cap on the whole run.
    """

    seed: int = 0
    requests: int = 6
    copies: int = 4
    kills: int = 2
    kill_interval_s: float = 0.5
    wall_timeout_s: float = 120.0


@dataclass
class KillDaemonReport:
    """What the kill-daemon run observed and verified.

    ``ok`` is the acceptance criterion: zero acknowledged requests
    lost, zero double-scheduled blocks across restarts, supervisor
    exits 0 after a clean drain, and fsck finds the surviving WAL and
    snapshots intact.
    """

    requests_sent: int = 0
    requests_acknowledged: int = 0
    requests_completed: int = 0
    requests_deduped: int = 0
    client_retries: int = 0
    kills_delivered: int = 0
    last_killed_pid: int | None = None
    generations: int = 0
    lost_acknowledged: int = 0
    duplicate_blocks: int = 0
    supervisor_exit: int | None = None
    fsck_clean: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (self.lost_acknowledged == 0
                and self.duplicate_blocks == 0
                and self.supervisor_exit == 0
                and self.fsck_clean
                and self.requests_completed == self.requests_sent)

    def to_dict(self) -> dict:
        return {
            "requests_sent": self.requests_sent,
            "requests_acknowledged": self.requests_acknowledged,
            "requests_completed": self.requests_completed,
            "requests_deduped": self.requests_deduped,
            "client_retries": self.client_retries,
            "kills_delivered": self.kills_delivered,
            "generations": self.generations,
            "lost_acknowledged": self.lost_acknowledged,
            "duplicate_blocks": self.duplicate_blocks,
            "supervisor_exit": self.supervisor_exit,
            "fsck_clean": self.fsck_clean,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
        }


async def _keyed_client(address: str, message: dict, deadline: float,
                        report: KillDaemonReport,
                        lock: asyncio.Lock, alive) -> None:
    """Drive one keyed request to completion through restarts.

    The retry loop is the client half of the durability contract:
    resend the *same idempotency key* until a terminal frame lands.
    Every reconnect after the first counts as a retry.  ``alive``
    reports whether the supervisor is still restarting daemons --
    once it gives up (crash loop) there is nothing to wait for.
    """
    attempts = 0
    acknowledged = False
    while time.monotonic() < deadline and alive():
        attempts += 1
        try:
            reader, writer = await _open(address)
        except (ConnectionError, OSError, FileNotFoundError):
            await asyncio.sleep(0.1)  # daemon between generations
            continue
        try:
            writer.write(protocol.encode(message))
            await writer.drain()
            while True:
                line = await asyncio.wait_for(
                    reader.readline(),
                    timeout=max(0.1, deadline - time.monotonic()))
                if not line:
                    break  # daemon died mid-stream: retry same key
                frame = protocol.decode(line)
                kind = frame.get("type")
                if kind == "accepted":
                    acknowledged = True
                elif kind == "done":
                    async with lock:
                        report.requests_completed += 1
                        if acknowledged:
                            report.requests_acknowledged += 1
                        if frame.get("deduped"):
                            report.requests_deduped += 1
                        report.client_retries += attempts - 1
                    return
                elif kind == "rejected":
                    # duplicate-in-flight: recovery is re-running the
                    # key; draining/queue-full: back off.  Either way
                    # the key is retried until its result exists.
                    break
                elif kind == "error":
                    async with lock:
                        if acknowledged:
                            report.requests_acknowledged += 1
                        report.client_retries += attempts - 1
                    return
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        await asyncio.sleep(0.15)


def _connectable(socket_path: str) -> bool:
    """True when a daemon generation is accepting on the socket."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.2)
    try:
        probe.connect(socket_path)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def _wal_inflight(wal_path: str) -> bool:
    """True when the WAL shows an acknowledged-but-unfinished key."""
    try:
        with open(wal_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError:
        return False
    if len(lines) < 2:
        return False
    records, _ = scan_lines(lines[1:], first_lineno=2)
    accepted: set = set()
    finished: set = set()
    for _, record in records:
        if record.get("type") == "accepted":
            accepted.add(record.get("key"))
        elif record.get("type") == "finished":
            finished.add(record.get("key"))
    return bool(accepted - finished)


async def _seeded_killer(wal_path: str, pid_path: str,
                         config: KillDaemonConfig,
                         report: KillDaemonReport,
                         clients_done: asyncio.Event) -> None:
    """SIGKILL the daemon while acknowledged work is in flight.

    Killing an idle daemon proves nothing, so each kill waits for the
    WAL to show an accepted-but-unfinished key -- the exact state the
    durability contract is about -- then strikes after a small seeded
    jitter.
    """
    rng = random.Random(f"repro-kill-daemon:{config.seed}")
    while report.kills_delivered < config.kills \
            and not clients_done.is_set():
        if not _wal_inflight(wal_path):
            await asyncio.sleep(0.01)
            continue
        await asyncio.sleep(0.03 * rng.random())
        try:
            with open(pid_path, "r", encoding="utf-8") as handle:
                pid = int(handle.read().strip())
            os.kill(pid, signal.SIGKILL)
        except (OSError, ValueError):
            await asyncio.sleep(0.01)  # between generations
            continue
        report.kills_delivered += 1
        report.last_killed_pid = pid
        # Give the supervisor time to restart and the next generation
        # time to recover before striking again.
        try:
            await asyncio.wait_for(
                clients_done.wait(),
                timeout=config.kill_interval_s * (0.5 + rng.random()))
            return
        except asyncio.TimeoutError:
            pass


async def _drive_kill_daemon(address: str, wal_path: str,
                             pid_path: str,
                             config: KillDaemonConfig,
                             report: KillDaemonReport, alive) -> None:
    lock = asyncio.Lock()
    deadline = time.monotonic() + config.wall_timeout_s
    clients_done = asyncio.Event()
    killer = asyncio.ensure_future(
        _seeded_killer(wal_path, pid_path, config, report,
                       clients_done))
    rng = random.Random(f"repro-serve-chaos:{config.seed}")
    kernels = ("daxpy", "dot_product", "livermore1")
    messages = []
    for i in range(config.requests):
        messages.append({
            "op": "schedule",
            "id": f"kill-{config.seed}-{i}",
            "key": f"kill-key-{config.seed}-{i}",
            "tenant": f"tenant-{i % 2}",
            "workload": {
                "kernel": kernels[rng.randrange(len(kernels))],
                "copies": config.copies,
            },
        })
    report.requests_sent = len(messages)
    await asyncio.gather(*(
        _keyed_client(address, message, deadline, report, lock, alive)
        for message in messages))
    clients_done.set()
    await killer


def _audit_wal(wal_path: str, report: KillDaemonReport) -> None:
    """The cross-generation verdict: read the surviving WAL.

    * every key with an ``accepted`` record must reach a ``finished``
      record (zero acknowledged requests lost);
    * no (key, block index) may carry two ``block-done`` records
      (zero double-scheduled blocks across restarts).
    """
    wal, recovery = WriteAheadLog.open(wal_path)
    wal.close()
    report.lost_acknowledged = len(recovery.incomplete)
    with open(wal_path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    records, _ = scan_lines(lines[1:], first_lineno=2)
    seen: set[tuple[str, int]] = set()
    duplicates = 0
    for _, record in records:
        if record.get("type") == "block-done":
            pair = (str(record.get("key")), int(record["index"]))
            if pair in seen:
                duplicates += 1
            seen.add(pair)
    report.duplicate_blocks = duplicates


def run_kill_daemon_chaos(config: KillDaemonConfig,
                          argv_extra: list[str] | None = None
                          ) -> KillDaemonReport:
    """Supervised daemon + seeded SIGKILLs + retrying keyed clients.

    Stands up a real :class:`DaemonSupervisor` (child daemons are
    separate processes), batters it, SIGTERMs the supervisor for a
    clean final drain, then audits the WAL and runs fsck over the
    surviving state directory.
    """
    report = KillDaemonReport()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-kill-daemon-") \
            as tmp:
        wal_dir = os.path.join(tmp, "state")
        socket_path = os.path.join(tmp, "kill.sock")
        pid_path = os.path.join(wal_dir, "daemon.pid")
        os.makedirs(wal_dir, exist_ok=True)
        child_argv = ["--address", f"unix:{socket_path}",
                      "--wal-dir", wal_dir,
                      "--workers", "2",
                      "--drain-grace", "10",
                      *(argv_extra or [])]
        supervisor = DaemonSupervisor(
            spawn=lambda: spawn_serve_child(child_argv),
            policy=SupervisorPolicy(
                max_restarts=config.kills + 3,
                window_s=config.wall_timeout_s,
                backoff_base_s=0.05, backoff_max_s=0.5),
            pid_path=pid_path,
            log=lambda line: None)
        exit_box: dict = {}

        def _run_supervisor() -> None:
            try:
                exit_box["code"] = supervisor.run()
            except Exception as exc:  # noqa: BLE001 - audited below
                exit_box["error"] = exc

        thread = threading.Thread(target=_run_supervisor,
                                  name="repro-kill-daemon-supervisor")
        thread.start()
        wal_path = os.path.join(wal_dir, "serve.wal")
        try:
            asyncio.run(_drive_kill_daemon(
                f"unix:{socket_path}", wal_path, pid_path, config,
                report, alive=thread.is_alive))
        finally:
            # Let the supervisor bring up a post-kill generation
            # before asking for the final drain, so the stop lands on
            # a live, connectable daemon and the run ends with a
            # clean exit 0 instead of racing a crash-restart (a just-
            # SIGKILLed child can still poll() as alive for a tick,
            # hence the pid comparison).
            settle_deadline = time.monotonic() + 10.0
            while time.monotonic() < settle_deadline \
                    and thread.is_alive():
                child = supervisor._child
                if supervisor.child_alive() and child is not None \
                        and child.pid != report.last_killed_pid \
                        and _connectable(socket_path):
                    break
                time.sleep(0.05)
            supervisor.request_stop()
            thread.join(config.wall_timeout_s)
        report.generations = supervisor.generation
        if "error" in exit_box:
            report.supervisor_exit = 1
        else:
            report.supervisor_exit = exit_box.get("code")
        if os.path.exists(wal_path):
            _audit_wal(wal_path, report)
        else:
            report.lost_acknowledged = report.requests_acknowledged
        findings = fsck_paths([wal_dir])
        report.fsck_clean = all(
            f.status in ("clean", "repairable") for f in findings)
    report.wall_s = time.perf_counter() - t0
    return report


def render_kill_daemon_report(report: KillDaemonReport) -> str:
    """Human-readable kill-daemon verdict (CLI output)."""
    doc = report.to_dict()
    lines = [
        f"! kill-daemon chaos: {doc['requests_sent']} keyed requests, "
        f"{doc['kills_delivered']} SIGKILLs across "
        f"{doc['generations']} daemon generations",
        f"! clients: {doc['requests_completed']} completed "
        f"({doc['requests_deduped']} deduped), "
        f"{doc['client_retries']} retries",
        f"! WAL audit: {doc['lost_acknowledged']} acknowledged "
        f"requests lost, {doc['duplicate_blocks']} double-scheduled "
        f"blocks",
        f"! supervisor exit: {doc['supervisor_exit']}, fsck clean: "
        f"{'yes' if doc['fsck_clean'] else 'NO'}",
        f"! verdict: {'OK' if doc['ok'] else 'FAILED'} "
        f"in {doc['wall_s']}s",
    ]
    return "\n".join(lines)


def render_serve_chaos_report(report: ServeChaosReport) -> str:
    """Human-readable report lines (CLI output)."""
    doc = report.to_dict()
    lines = [
        f"! serve chaos: {doc['requests_sent']} requests "
        f"({doc['requests_completed']} completed, "
        f"{doc['requests_disconnected']} disconnected, "
        f"{doc['requests_rejected']} rejected)",
        f"! blocks: {doc['blocks_admitted']} admitted = "
        f"{doc['blocks_scheduled']} scheduled + "
        f"{doc['blocks_degraded']} degraded + "
        f"{doc['blocks_quarantined']} quarantined + "
        f"{doc['blocks_shed']} shed",
    ]
    if doc["shed_by_reason"]:
        reasons = ", ".join(f"{k}={v}" for k, v in
                            doc["shed_by_reason"].items())
        lines.append(f"! shed reasons: {reasons}")
    lines.append(
        f"! lost blocks: {doc['lost_blocks']}, "
        f"double-scheduled: {doc['duplicate_blocks']}, "
        f"clean drain: {'yes' if doc['drained_ok'] else 'NO'}")
    lines.append(f"! verdict: {'OK' if doc['ok'] else 'FAILED'} "
                 f"in {doc['wall_s']}s")
    return "\n".join(lines)
