"""Per-request execution: deadlines, warm caches, shed accounting.

:func:`run_request` is the bridge between one admitted wire request
and the existing resilient runner.  Its contract is the accounting
invariant the chaos harness asserts:

    ``scheduled + degraded + quarantined + shed == n_blocks``

for *every* admitted request -- deadline expiry, client disconnect,
and server drain all convert the unprocessed remainder into typed
``shed`` frames instead of losing it.

Deadline propagation is two-level.  Between blocks the engine checks
the remaining request budget and sheds the rest the moment it is
spent; *within* a block the remaining budget caps the per-block
wall-clock :class:`~repro.runner.watchdog.Budget` handed to
:func:`~repro.runner.fallback.schedule_block_resilient`, so a single
pathological block cannot blow through the request deadline by more
than the watchdog's check interval.

Caches are warm but not shared: :class:`PairwiseCache` is a plain
``OrderedDict`` LRU with no locking, so the engine keeps one cache
per (executor thread, machine) pair.  Requests served by the same
thread reuse each other's dependence work -- the repeated-kernel
traffic a scheduling service actually sees -- without a lock on the
hot path.  :func:`cache_stats` aggregates hit/miss/size across all
live thread caches for the health endpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.asm import parse_asm
from repro.cfg.basic_block import BasicBlock
from repro.dag.builders import PairwiseCache
from repro.errors import ReproError, RequestRejected
from repro.machine.model import MachineModel
from repro.obs.metrics import MetricsRegistry, record_deadline, record_shed_blocks
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runner.batch import run_batch
from repro.runner.fallback import (
    DEFAULT_CHAIN,
    BlockOutcome,
    resolve_chain,
    schedule_block_resilient,
)
from repro.runner.watchdog import Budget
from repro.serve import protocol
from repro.serve.protocol import (
    REJECT_TOO_LARGE,
    SHED_DEADLINE,
    ScheduleRequest,
)
from repro.cfg import apply_window, partition_blocks, pin_delay_slot_occupants
from repro.workloads.kernels import straightline_body, straightline_source

#: per-(thread, machine) warm caches; see module docstring.  The
#: registry keeps ``(thread_name, machine_name, cache)`` so the
#: health endpoint can report each warm cache individually.
_thread_caches = threading.local()
_all_caches: list[tuple[str, str, PairwiseCache]] = []
_all_caches_lock = threading.Lock()


def warm_cache(machine_name: str,
               max_entries: int = 512) -> PairwiseCache:
    """This thread's warm dependence cache for ``machine_name``.

    Created on first use, LRU-capped at ``max_entries``, and
    registered so :func:`cache_stats` / :func:`cache_details` can
    report across threads.
    """
    caches = getattr(_thread_caches, "caches", None)
    if caches is None:
        caches = _thread_caches.caches = {}
    cache = caches.get(machine_name)
    if cache is None:
        cache = caches[machine_name] = PairwiseCache(
            max_entries=max_entries)
        with _all_caches_lock:
            _all_caches.append((threading.current_thread().name,
                                machine_name, cache))
    elif cache.max_entries != max_entries:
        # The degradation ladder clamps warm caches at L1+ and
        # restores them on descent; resizing here keeps the mutation
        # on the cache's owning thread (the caches are lock-free).
        cache.resize(max_entries)
    return cache


def cache_stats() -> dict:
    """Aggregate hit/miss/size over every live warm cache."""
    with _all_caches_lock:
        caches = [c for _t, _m, c in _all_caches]
    hits = sum(c.hits for c in caches)
    misses = sum(c.misses for c in caches)
    return {"caches": len(caches), "hits": hits, "misses": misses,
            "bundle_hits": sum(c.bundle_hits for c in caches),
            "entries": sum(len(c) for c in caches),
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses else 0.0}


def release_caches() -> int:
    """Drop every warm cache's entries; returns entries released.

    The degradation ladder's emergency action (L4): nothing new is
    being admitted, so reclaiming the dependence caches is the
    biggest memory lever left.  Best-effort against a request still
    draining on another thread -- a concurrently-cleared entry just
    costs that request a rebuild, never correctness (every dict
    operation is individually atomic under the GIL).
    """
    with _all_caches_lock:
        caches = [c for _t, _m, c in _all_caches]
    released = sum(len(c) for c in caches)
    for cache in caches:
        cache.clear()
    return released


def cache_details() -> list[dict]:
    """Per-(thread, machine) warm-cache ``info()`` rows.

    The health endpoint exposes these so an operator can see which
    executor threads are actually warm (``hits``/``bundle_hits``
    climbing) and which machines they are warm *for*.
    """
    with _all_caches_lock:
        entries = list(_all_caches)
    return [dict(thread=thread, machine=machine, **cache.info())
            for thread, machine, cache in entries]


def request_blocks(request: ScheduleRequest,
                   max_blocks: int | None = None) -> list[BasicBlock]:
    """Expand a request's program into schedulable basic blocks.

    ``max_blocks`` bounds the expansion *before* it happens: a
    workload's ``copies`` is capped at ``max_blocks`` so a tiny wire
    request cannot make the server materialise a multi-gigabyte
    source string that the post-expansion admission check would only
    reject once the memory is already spent.  (Assembly text needs no
    pre-check -- it is already capped at the wire's line limit.)

    Raises:
        RequestRejected: typed ``request-too-large`` when the workload
            would expand past ``max_blocks`` copies.
        ReproError: for unparseable assembly, unknown kernels, or an
            empty program (all typed subclasses).
    """
    window = request.window
    if request.asm is not None:
        source = request.asm
        name = f"<request {request.id}>"
    else:
        spec = request.workload or {}
        copies = spec.get("copies", 1)
        if not isinstance(copies, int) or copies < 1:
            raise ReproError(
                f"request {request.id!r}: workload 'copies' must be "
                f"a positive integer, got {copies!r}")
        kernel = str(spec["kernel"])
        if max_blocks is not None and copies > max_blocks:
            raise RequestRejected(
                f"request {request.id!r}: workload copies={copies} "
                f"exceeds the {max_blocks}-block request cap",
                reason=REJECT_TOO_LARGE, tenant=request.tenant)
        source = straightline_source(kernel, copies)
        if window is None:
            # The expansion is one long straight-line stream; window
            # it at the body length so each copy is its own block
            # (the repeated-inner-loop shape the cache feeds on).
            window = len(straightline_body(kernel))
        name = f"<workload {kernel}x{copies}>"
    program = parse_asm(source, name, lenient=request.lenient)
    return pin_delay_slot_occupants(
        apply_window(partition_blocks(program), window))


class RequestCancelled(Exception):
    """Internal: stop a request mid-stream; carries the shed reason."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def run_request(request: ScheduleRequest,
                machine: MachineModel,
                blocks: list[BasicBlock],
                emit: Callable[[dict], None],
                chain_names: tuple[str, ...] | None = None,
                block_wall_s: float | None = 30.0,
                max_work: int | None = None,
                cache: PairwiseCache | None = None,
                metrics: MetricsRegistry | None = None,
                breaker: object | None = None,
                cancelled: Callable[[], str | None] | None = None,
                clock: Callable[[], float] = time.monotonic,
                jobs: int = 1,
                chaos: object | None = None,
                retry: object | None = None,
                task_timeout: float | None = 60.0,
                quarantine_dir: str | None = None,
                mem_limit_mb: int | None = None,
                completed: dict[int, dict] | None = None,
                columnar: bool = False,
                tracer: Tracer | None = None) -> dict:
    """Schedule one admitted request's blocks, streaming as they land.

    Runs in an executor thread.  Emits one ``block`` frame per
    completed block and one ``shed`` frame per unprocessed block, in
    program order, then returns the ``done`` summary.  Never raises
    for deadline expiry or cancellation -- those are *outcomes*
    (typed shed records), not errors; only genuinely broken input
    (which the caller turns into an ``error`` frame) propagates.

    Args:
        request: the validated wire request.
        machine: resolved timing model.
        blocks: pre-expanded blocks (so admission could count them).
        emit: thread-safe frame sink (the server bridges it onto the
            asyncio loop).
        chain_names: builder fallback chain (request override wins).
        block_wall_s: per-block wall-clock cap, further tightened to
            the request's remaining deadline each block.
        max_work: per-attempt construction-work budget.
        cache: dependence cache override; default is this thread's
            warm per-machine cache.
        metrics: optional registry (shed/deadline counters).
        breaker: optional shared per-builder circuit breaker.
        cancelled: polled between blocks; returning a shed reason
            (e.g. ``"disconnect"``, ``"drain"``) sheds the remainder.
        clock: injectable monotonic clock for deterministic deadline
            tests.
        jobs: ``>= 2`` runs the request on the supervised worker pool
            (crash isolation, retry, quarantine) via
            :func:`~repro.runner.batch.run_batch`; ``1`` runs the
            serial in-process loop.  A pool is built per request --
            heavyweight, so the serial path is the default and the
            pooled path is for big requests and the chaos harness.
        chaos / retry / task_timeout / quarantine_dir / mem_limit_mb:
            forwarded to :func:`~repro.runner.batch.run_batch` on the
            pooled path (fault injection, retry policy, hang
            detector, reproducer directory, worker memory ceiling).
        completed: already-recorded block records by block index (WAL
            replay after a daemon crash) -- those blocks are re-emitted
            verbatim instead of recomputed (exactly-once results) and
            counted in the summary's ``replayed``.  A non-empty map
            forces the serial path so replay interleaves with fresh
            work in program order.
        columnar: serve on the structure-of-arrays fast path (numpy
            required; byte-identical frames and summaries -- a
            performance knob, like the warm caches).
        tracer: optional tracer; the request runs inside one
            ``request`` span carrying the wire ``id`` and client
            ``trace`` id, with the builder/attempt spans nested under
            it -- the server-side half of end-to-end tracing.

    Returns:
        The summary dict for the ``done`` frame, satisfying
        ``scheduled + degraded + quarantined + shed == n_blocks``.
    """
    names = request.chain or chain_names or DEFAULT_CHAIN
    if cache is None:
        cache = warm_cache(request.machine)
    chain = resolve_chain(names, machine, cache=cache, columnar=columnar)
    tracer = tracer if tracer is not None else NULL_TRACER
    t0 = clock()
    deadline = (t0 + request.deadline_s
                if request.deadline_s is not None else None)

    n_scheduled = n_degraded = n_quarantined = n_done = 0
    n_replayed = 0
    makespan = original = 0
    shed_reasons: dict[str, int] = {}
    shed_from: int | None = None
    completed = completed or {}

    def remaining() -> float | None:
        if deadline is None:
            return None
        return deadline - clock()

    def check_stop() -> str | None:
        if cancelled is not None:
            reason = cancelled()
            if reason:
                return reason
        left = remaining()
        if left is not None and left <= 0:
            return SHED_DEADLINE
        return None

    def account(outcome) -> None:
        nonlocal n_scheduled, n_degraded, n_quarantined, n_done
        nonlocal makespan, original
        if outcome.quarantined:
            n_quarantined += 1
        elif outcome.degraded:
            n_degraded += 1
        else:
            n_scheduled += 1
        makespan += outcome.makespan
        original += outcome.original_makespan
        n_done += 1
        record = outcome.to_record(volatile=True)
        if request.trace is not None:
            record["trace"] = request.trace
        emit(protocol.block_frame(request.id, record,
                                  trace=request.trace))

    def shed_rest(reason: str) -> None:
        nonlocal shed_from
        shed_from = n_done
        count = len(blocks) - n_done
        shed_reasons[reason] = shed_reasons.get(reason, 0) + count
        for late in blocks[n_done:]:
            emit(protocol.shed_frame(request.id, late.index, reason,
                                     trace=request.trace))
        if metrics is not None:
            record_shed_blocks(metrics, count, reason)

    with tracer.span("request", id=request.id,
                     trace=request.trace or "",
                     tenant=request.tenant,
                     n_blocks=len(blocks)) as span_attrs:
        if jobs >= 2 and not completed:
            # Pooled path: a per-request supervised pool.  run_batch
            # consumes outcomes in program order, so a stop raised from
            # ``on_block`` sheds exactly the untouched suffix; the pool
            # is torn down by run_batch's own cleanup.
            def on_block(outcome) -> None:
                account(outcome)
                reason = check_stop()
                if reason is not None:
                    raise RequestCancelled(reason)

            wall = block_wall_s
            left = remaining()
            if left is not None:
                wall = left if wall is None else min(wall, left)
            try:
                run_batch(blocks, machine, chain=names,
                          budget=Budget(wall_clock=wall,
                                        max_work=max_work),
                          verify=request.verify, jobs=jobs,
                          metrics=metrics, on_block=on_block,
                          tracer=tracer,
                          chaos=chaos, retry=retry,
                          task_timeout=task_timeout,
                          quarantine_dir=quarantine_dir,
                          mem_limit_mb=mem_limit_mb,
                          columnar=columnar)
            except RequestCancelled as exc:
                if n_done < len(blocks):
                    shed_rest(exc.reason)
            else:
                reason = check_stop()
                if reason is not None and n_done < len(blocks):
                    shed_rest(reason)
        else:
            for block in blocks:
                recorded = completed.get(block.index)
                if recorded is not None:
                    # WAL replay: the result already crossed a socket
                    # once; re-emit it verbatim rather than recompute
                    # (dedup).
                    n_replayed += 1
                    if recorded.get("type") == "shed":
                        why = str(recorded.get("reason", "replay"))
                        shed_reasons[why] = shed_reasons.get(why, 0) + 1
                        n_done += 1
                        emit(protocol.shed_frame(
                            request.id, block.index, why,
                            trace=request.trace))
                    else:
                        account(BlockOutcome.from_record(recorded))
                    continue
                reason = check_stop()
                if reason is not None:
                    shed_rest(reason)
                    break
                wall = block_wall_s
                left = remaining()
                if left is not None:
                    wall = left if wall is None else min(wall, left)
                outcome = schedule_block_resilient(
                    block, machine, chain,
                    budget=Budget(wall_clock=wall, max_work=max_work),
                    verify=request.verify, cache=cache,
                    metrics=metrics, breaker=breaker, tracer=tracer,
                    columnar=columnar)
                account(outcome)
        span_attrs["scheduled"] = n_scheduled
        span_attrs["shed"] = sum(shed_reasons.values())

    n_shed = sum(shed_reasons.values())
    wall_s = clock() - t0
    if deadline is not None and metrics is not None:
        record_deadline(metrics, met=SHED_DEADLINE not in shed_reasons)
    summary = {
        "n_blocks": len(blocks),
        "scheduled": n_scheduled,
        "degraded": n_degraded,
        "quarantined": n_quarantined,
        "shed": n_shed,
        "replayed": n_replayed,
        "shed_reasons": dict(sorted(shed_reasons.items())),
        "shed_from": shed_from,
        "makespan": makespan,
        "original_makespan": original,
        "deadline_s": request.deadline_s,
        "deadline_met": (None if deadline is None
                         else SHED_DEADLINE not in shed_reasons),
        "wall_s": round(wall_s, 6),
        "cache": cache.info(),
    }
    assert (summary["scheduled"] + summary["degraded"]
            + summary["quarantined"] + summary["shed"]
            == summary["n_blocks"]), "request accounting broken"
    return summary
