"""The ``repro serve`` wire protocol: newline-delimited JSON.

One connection carries any number of requests; every message is one
JSON object on one line (UTF-8, ``\\n``-terminated).  Responses are
*streamed*: a ``schedule`` request is answered by an ``accepted``
frame, then one ``block`` (or ``shed``) frame per basic block as it
completes, then a terminal ``done`` frame -- or by a single typed
``rejected``/``error`` frame.  Every frame echoes the request's
client-chosen ``id`` so requests may be pipelined on one connection.

Client -> server operations (``op``):

* ``schedule`` -- schedule a program; see :class:`ScheduleRequest`.
* ``health`` -- liveness + pool/breaker/cache state (always answers),
  including the engine's columnar flag and per-thread warm-cache
  detail.
* ``ready`` -- readiness: would a schedule request be admitted now?
* ``stats`` -- the server's global block/request accounting (used by
  the chaos harness to prove zero lost / double-scheduled blocks).
* ``metrics`` -- the full metrics registry as Prometheus text
  exposition plus the sliding-window aggregates (``repro top`` polls
  this; ``--telemetry`` serves the same text over loopback HTTP).

Server -> client frame ``type``\\ s: ``accepted``, ``block``, ``shed``,
``done``, ``rejected``, ``error``, ``health``, ``ready``, ``stats``,
``metrics``.

**Request tracing** -- a client may stamp a ``trace`` id on a
schedule request (the loadtest mints one per request).  The id rides
every response frame for that request (``accepted``/``block``/
``shed``/``done``/``rejected``/``error``), is stamped into each block
record (and therefore the WAL and journal), and labels the server-side
spans -- one id joins a client-observed latency outlier to its
per-attempt spans and WAL lifecycle.  Dedup replays echo the
*original* request's trace id, which is the id the recorded blocks
carry.  Untraced requests produce byte-identical frames to older
clients: the field is simply absent.

Design rules the robustness story depends on:

* **never silent** -- a request that cannot run is answered with a
  typed ``rejected`` (admission) or ``error`` (malformed/failed)
  frame, never dropped;
* **always accounted** -- an admitted request's ``done`` summary
  satisfies ``scheduled + degraded + shed + quarantined == n_blocks``
  even when the deadline expired or the client vanished mid-stream;
* **bounded** -- one request line is capped at
  :data:`MAX_LINE_BYTES`; oversized requests are a typed rejection
  (``request-too-large``), not a buffer blow-up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ProtocolError

#: protocol schema version, echoed in every ``accepted`` frame
PROTOCOL_VERSION = 1

#: hard cap on one request line, bytes (backpressure, not a buffer
#: blow-up: an oversized line is a typed rejection)
MAX_LINE_BYTES = 4 * 1024 * 1024

#: typed admission-rejection reason codes (the 429 family)
REJECT_QUEUE_FULL = "queue-full"
REJECT_RATE_LIMITED = "rate-limited"
REJECT_BUDGET = "tenant-budget-exhausted"
REJECT_DRAINING = "draining"
REJECT_TOO_LARGE = "request-too-large"
REJECT_DUPLICATE = "duplicate-in-flight"
REJECT_OVERLOAD = "overload"
REJECT_REASONS = (REJECT_QUEUE_FULL, REJECT_RATE_LIMITED,
                  REJECT_BUDGET, REJECT_DRAINING, REJECT_TOO_LARGE,
                  REJECT_DUPLICATE, REJECT_OVERLOAD)

#: longest accepted idempotency key, characters
MAX_KEY_CHARS = 128

#: longest accepted client trace id, characters
MAX_TRACE_CHARS = 128

#: shed reason codes (per-block, on admitted requests)
SHED_DEADLINE = "deadline"
SHED_DISCONNECT = "disconnect"
SHED_DRAIN = "drain"

#: hostnames a TCP *bind* may use -- the daemon has no authentication
#: story, so listening on anything routable is refused outright
LOOPBACK_HOSTS = frozenset({"localhost", "127.0.0.1", "::1"})


def _is_loopback(host: str) -> bool:
    return host in LOOPBACK_HOSTS or host.startswith("127.")


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one wire line into a message dict.

    Raises:
        ProtocolError: when the line is not a JSON object.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request line is not UTF-8: {exc}")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request line is not JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def parse_address(spec: str, bind: bool = False) -> tuple:
    """Parse a listen/connect address.

    Accepted forms: ``unix:/path/to.sock``, a bare path containing
    ``/`` (unix socket), ``HOST:PORT``, or a bare ``PORT`` (localhost
    TCP).  TCP binds are loopback-only by design -- this daemon has no
    authentication story and must not be exposed -- and the server
    parses with ``bind=True``, which *enforces* that: a non-loopback
    host is a typed error, not a silently honoured footgun.  Client
    connects (``bind=False``) may name any host.

    Returns:
        ``("unix", path)`` or ``("tcp", host, port)``.

    Raises:
        ProtocolError: for an unparseable spec, or a ``bind`` to a
            non-loopback TCP host.
    """
    if spec.startswith("unix:"):
        return ("unix", spec[len("unix:"):])
    if "/" in spec:
        return ("unix", spec)
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        host = host or "127.0.0.1"
        if bind and not _is_loopback(host):
            raise ProtocolError(
                f"refusing to bind non-loopback TCP host {host!r}: "
                f"the serve daemon is unauthenticated and loopback-"
                f"only (use a unix socket or {sorted(LOOPBACK_HOSTS)})")
        try:
            return ("tcp", host, int(port))
        except ValueError:
            raise ProtocolError(f"bad TCP address {spec!r}")
    try:
        return ("tcp", "127.0.0.1", int(spec))
    except ValueError:
        raise ProtocolError(
            f"cannot parse address {spec!r} (want unix:/path, "
            f"/path, HOST:PORT, or PORT)")


@dataclass(frozen=True)
class ScheduleRequest:
    """One validated ``schedule`` operation.

    Exactly one of ``asm`` / ``workload`` carries the program:
    ``asm`` is assembly text, ``workload`` is a generator spec
    ``{"kernel": name, "copies": n}`` expanded server-side (so load
    generators need not ship megabytes of identical text).

    Attributes:
        id: client-chosen request id, echoed on every frame.
        tenant: admission-control tenant the request is charged to.
        asm: assembly source text, or None.
        workload: workload spec dict, or None.
        machine: machine-model name (server validates).
        window: maximum block size (instruction-window split).
        deadline_s: end-to-end deadline budget in seconds; propagated
            down to per-block wall-clock watchdog budgets and enforced
            between blocks (expiry sheds the remainder, typed).
        verify: independently verify every accepted schedule.
        lenient: skip unparseable source lines instead of failing the
            request.
        chain: builder fallback chain override (names), or None for
            the server default.
        key: client-supplied idempotency key, or None for a
            server-generated one.  A key is the unit of WAL dedup:
            resending a finished key streams the recorded result
            instead of recomputing; resending an in-flight key is a
            typed ``duplicate-in-flight`` rejection.
        trace: client-minted trace id, or None.  Echoed on every
            response frame, stamped into block records (and thus the
            WAL/journal), and attached to server-side spans.
    """

    id: str
    tenant: str = "default"
    asm: str | None = None
    workload: dict | None = field(default=None, hash=False)
    machine: str = "generic"
    window: int | None = None
    deadline_s: float | None = None
    verify: bool = False
    lenient: bool = False
    chain: tuple[str, ...] | None = None
    key: str | None = None
    trace: str | None = None

    @staticmethod
    def from_message(message: dict) -> "ScheduleRequest":
        """Validate a decoded ``schedule`` message.

        Raises:
            ProtocolError: for missing/conflicting/ill-typed fields.
        """
        rid = message.get("id")
        if not isinstance(rid, str) or not rid:
            raise ProtocolError(
                "schedule request needs a non-empty string 'id'")
        asm = message.get("asm")
        workload = message.get("workload")
        if (asm is None) == (workload is None):
            raise ProtocolError(
                f"request {rid!r} must carry exactly one of "
                f"'asm' or 'workload'")
        if asm is not None and not isinstance(asm, str):
            raise ProtocolError(f"request {rid!r}: 'asm' must be text")
        if workload is not None:
            if not isinstance(workload, dict) \
                    or not isinstance(workload.get("kernel"), str):
                raise ProtocolError(
                    f"request {rid!r}: 'workload' must be an object "
                    f"with a 'kernel' name")
        tenant = message.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(
                f"request {rid!r}: 'tenant' must be a non-empty "
                f"string")
        deadline = message.get("deadline_s")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or deadline <= 0:
                raise ProtocolError(
                    f"request {rid!r}: 'deadline_s' must be a "
                    f"positive number")
        window = message.get("window")
        if window is not None and (not isinstance(window, int)
                                   or window < 1):
            raise ProtocolError(
                f"request {rid!r}: 'window' must be a positive "
                f"integer")
        chain = message.get("chain")
        if chain is not None:
            if not isinstance(chain, list) \
                    or not all(isinstance(n, str) for n in chain):
                raise ProtocolError(
                    f"request {rid!r}: 'chain' must be a list of "
                    f"builder names")
            chain = tuple(chain)
        key = message.get("key")
        if key is not None:
            if not isinstance(key, str) or not key \
                    or len(key) > MAX_KEY_CHARS:
                raise ProtocolError(
                    f"request {rid!r}: 'key' must be a non-empty "
                    f"string of at most {MAX_KEY_CHARS} characters")
        trace = message.get("trace")
        if trace is not None:
            if not isinstance(trace, str) or not trace \
                    or len(trace) > MAX_TRACE_CHARS:
                raise ProtocolError(
                    f"request {rid!r}: 'trace' must be a non-empty "
                    f"string of at most {MAX_TRACE_CHARS} characters")
        return ScheduleRequest(
            id=rid, tenant=tenant, asm=asm, workload=workload,
            machine=str(message.get("machine", "generic")),
            window=window,
            deadline_s=float(deadline) if deadline is not None else None,
            verify=bool(message.get("verify", False)),
            lenient=bool(message.get("lenient", False)),
            chain=chain, key=key, trace=trace)


# -- response frame constructors --------------------------------------------
#
# Every constructor takes an optional ``trace`` -- the request's
# client-minted trace id.  ``None`` keeps the frame byte-identical to
# the untraced wire format; a string is echoed verbatim.


def accepted_frame(rid: str, queue_depth: int, key: str | None = None,
                   trace: str | None = None) -> dict:
    """The request passed admission and is queued/executing.

    ``key`` echoes the idempotency key the WAL recorded (the client's
    own, or the server-assigned one) -- by the time this frame is on
    the wire, the acceptance is already fsynced.
    """
    frame = {"type": "accepted", "id": rid,
             "protocol": PROTOCOL_VERSION, "queue_depth": queue_depth}
    if key is not None:
        frame["key"] = key
    if trace is not None:
        frame["trace"] = trace
    return frame


def block_frame(rid: str, record: dict,
                trace: str | None = None) -> dict:
    """One completed block outcome (journal-record shape)."""
    frame = {"type": "block", "id": rid, "block": record}
    if trace is not None:
        frame["trace"] = trace
    return frame


def shed_frame(rid: str, index: int, reason: str,
               trace: str | None = None) -> dict:
    """One block the request will NOT schedule, and why."""
    frame = {"type": "shed", "id": rid, "index": index,
             "reason": reason}
    if trace is not None:
        frame["trace"] = trace
    return frame


def done_frame(rid: str, summary: dict, deduped: bool = False,
               trace: str | None = None) -> dict:
    """Terminal success frame with the request accounting.

    ``deduped`` marks a response replayed from the WAL for a
    previously finished idempotency key -- nothing was recomputed, and
    ``trace`` is the *original* request's id (the one the recorded
    blocks carry), not a resend's.
    """
    frame = {"type": "done", "id": rid, "summary": summary}
    if deduped:
        frame["deduped"] = True
    if trace is not None:
        frame["trace"] = trace
    return frame


def rejected_frame(rid: str | None, reason: str,
                   retry_after_s: float | None = None,
                   detail: str | None = None,
                   trace: str | None = None) -> dict:
    """Typed admission rejection (the 429 family)."""
    frame = {"type": "rejected", "id": rid, "code": 429,
             "reason": reason}
    if retry_after_s is not None:
        frame["retry_after_s"] = round(retry_after_s, 4)
    if detail:
        frame["detail"] = detail
    if trace is not None:
        frame["trace"] = trace
    return frame


def error_frame(rid: str | None, error: str, message: str,
                code: int = 400, trace: str | None = None) -> dict:
    """Typed request failure (malformed input, parse error, ...)."""
    frame = {"type": "error", "id": rid, "code": code, "error": error,
             "message": message}
    if trace is not None:
        frame["trace"] = trace
    return frame
