"""The ``repro serve`` wire protocol: newline-delimited JSON.

One connection carries any number of requests; every message is one
JSON object on one line (UTF-8, ``\\n``-terminated).  Responses are
*streamed*: a ``schedule`` request is answered by an ``accepted``
frame, then one ``block`` (or ``shed``) frame per basic block as it
completes, then a terminal ``done`` frame -- or by a single typed
``rejected``/``error`` frame.  Every frame echoes the request's
client-chosen ``id`` so requests may be pipelined on one connection.

Client -> server operations (``op``):

* ``schedule`` -- schedule a program; see :class:`ScheduleRequest`.
* ``health`` -- liveness + pool/breaker/cache state (always answers).
* ``ready`` -- readiness: would a schedule request be admitted now?
* ``stats`` -- the server's global block/request accounting (used by
  the chaos harness to prove zero lost / double-scheduled blocks).

Server -> client frame ``type``\\ s: ``accepted``, ``block``, ``shed``,
``done``, ``rejected``, ``error``, ``health``, ``ready``, ``stats``.

Design rules the robustness story depends on:

* **never silent** -- a request that cannot run is answered with a
  typed ``rejected`` (admission) or ``error`` (malformed/failed)
  frame, never dropped;
* **always accounted** -- an admitted request's ``done`` summary
  satisfies ``scheduled + degraded + shed + quarantined == n_blocks``
  even when the deadline expired or the client vanished mid-stream;
* **bounded** -- one request line is capped at
  :data:`MAX_LINE_BYTES`; oversized requests are a typed rejection
  (``request-too-large``), not a buffer blow-up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ProtocolError

#: protocol schema version, echoed in every ``accepted`` frame
PROTOCOL_VERSION = 1

#: hard cap on one request line, bytes (backpressure, not a buffer
#: blow-up: an oversized line is a typed rejection)
MAX_LINE_BYTES = 4 * 1024 * 1024

#: typed admission-rejection reason codes (the 429 family)
REJECT_QUEUE_FULL = "queue-full"
REJECT_RATE_LIMITED = "rate-limited"
REJECT_BUDGET = "tenant-budget-exhausted"
REJECT_DRAINING = "draining"
REJECT_TOO_LARGE = "request-too-large"
REJECT_DUPLICATE = "duplicate-in-flight"
REJECT_REASONS = (REJECT_QUEUE_FULL, REJECT_RATE_LIMITED,
                  REJECT_BUDGET, REJECT_DRAINING, REJECT_TOO_LARGE,
                  REJECT_DUPLICATE)

#: longest accepted idempotency key, characters
MAX_KEY_CHARS = 128

#: shed reason codes (per-block, on admitted requests)
SHED_DEADLINE = "deadline"
SHED_DISCONNECT = "disconnect"
SHED_DRAIN = "drain"

#: hostnames a TCP *bind* may use -- the daemon has no authentication
#: story, so listening on anything routable is refused outright
LOOPBACK_HOSTS = frozenset({"localhost", "127.0.0.1", "::1"})


def _is_loopback(host: str) -> bool:
    return host in LOOPBACK_HOSTS or host.startswith("127.")


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON plus the line terminator."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one wire line into a message dict.

    Raises:
        ProtocolError: when the line is not a JSON object.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request line is not UTF-8: {exc}")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request line is not JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def parse_address(spec: str, bind: bool = False) -> tuple:
    """Parse a listen/connect address.

    Accepted forms: ``unix:/path/to.sock``, a bare path containing
    ``/`` (unix socket), ``HOST:PORT``, or a bare ``PORT`` (localhost
    TCP).  TCP binds are loopback-only by design -- this daemon has no
    authentication story and must not be exposed -- and the server
    parses with ``bind=True``, which *enforces* that: a non-loopback
    host is a typed error, not a silently honoured footgun.  Client
    connects (``bind=False``) may name any host.

    Returns:
        ``("unix", path)`` or ``("tcp", host, port)``.

    Raises:
        ProtocolError: for an unparseable spec, or a ``bind`` to a
            non-loopback TCP host.
    """
    if spec.startswith("unix:"):
        return ("unix", spec[len("unix:"):])
    if "/" in spec:
        return ("unix", spec)
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        host = host or "127.0.0.1"
        if bind and not _is_loopback(host):
            raise ProtocolError(
                f"refusing to bind non-loopback TCP host {host!r}: "
                f"the serve daemon is unauthenticated and loopback-"
                f"only (use a unix socket or {sorted(LOOPBACK_HOSTS)})")
        try:
            return ("tcp", host, int(port))
        except ValueError:
            raise ProtocolError(f"bad TCP address {spec!r}")
    try:
        return ("tcp", "127.0.0.1", int(spec))
    except ValueError:
        raise ProtocolError(
            f"cannot parse address {spec!r} (want unix:/path, "
            f"/path, HOST:PORT, or PORT)")


@dataclass(frozen=True)
class ScheduleRequest:
    """One validated ``schedule`` operation.

    Exactly one of ``asm`` / ``workload`` carries the program:
    ``asm`` is assembly text, ``workload`` is a generator spec
    ``{"kernel": name, "copies": n}`` expanded server-side (so load
    generators need not ship megabytes of identical text).

    Attributes:
        id: client-chosen request id, echoed on every frame.
        tenant: admission-control tenant the request is charged to.
        asm: assembly source text, or None.
        workload: workload spec dict, or None.
        machine: machine-model name (server validates).
        window: maximum block size (instruction-window split).
        deadline_s: end-to-end deadline budget in seconds; propagated
            down to per-block wall-clock watchdog budgets and enforced
            between blocks (expiry sheds the remainder, typed).
        verify: independently verify every accepted schedule.
        lenient: skip unparseable source lines instead of failing the
            request.
        chain: builder fallback chain override (names), or None for
            the server default.
        key: client-supplied idempotency key, or None for a
            server-generated one.  A key is the unit of WAL dedup:
            resending a finished key streams the recorded result
            instead of recomputing; resending an in-flight key is a
            typed ``duplicate-in-flight`` rejection.
    """

    id: str
    tenant: str = "default"
    asm: str | None = None
    workload: dict | None = field(default=None, hash=False)
    machine: str = "generic"
    window: int | None = None
    deadline_s: float | None = None
    verify: bool = False
    lenient: bool = False
    chain: tuple[str, ...] | None = None
    key: str | None = None

    @staticmethod
    def from_message(message: dict) -> "ScheduleRequest":
        """Validate a decoded ``schedule`` message.

        Raises:
            ProtocolError: for missing/conflicting/ill-typed fields.
        """
        rid = message.get("id")
        if not isinstance(rid, str) or not rid:
            raise ProtocolError(
                "schedule request needs a non-empty string 'id'")
        asm = message.get("asm")
        workload = message.get("workload")
        if (asm is None) == (workload is None):
            raise ProtocolError(
                f"request {rid!r} must carry exactly one of "
                f"'asm' or 'workload'")
        if asm is not None and not isinstance(asm, str):
            raise ProtocolError(f"request {rid!r}: 'asm' must be text")
        if workload is not None:
            if not isinstance(workload, dict) \
                    or not isinstance(workload.get("kernel"), str):
                raise ProtocolError(
                    f"request {rid!r}: 'workload' must be an object "
                    f"with a 'kernel' name")
        tenant = message.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(
                f"request {rid!r}: 'tenant' must be a non-empty "
                f"string")
        deadline = message.get("deadline_s")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or deadline <= 0:
                raise ProtocolError(
                    f"request {rid!r}: 'deadline_s' must be a "
                    f"positive number")
        window = message.get("window")
        if window is not None and (not isinstance(window, int)
                                   or window < 1):
            raise ProtocolError(
                f"request {rid!r}: 'window' must be a positive "
                f"integer")
        chain = message.get("chain")
        if chain is not None:
            if not isinstance(chain, list) \
                    or not all(isinstance(n, str) for n in chain):
                raise ProtocolError(
                    f"request {rid!r}: 'chain' must be a list of "
                    f"builder names")
            chain = tuple(chain)
        key = message.get("key")
        if key is not None:
            if not isinstance(key, str) or not key \
                    or len(key) > MAX_KEY_CHARS:
                raise ProtocolError(
                    f"request {rid!r}: 'key' must be a non-empty "
                    f"string of at most {MAX_KEY_CHARS} characters")
        return ScheduleRequest(
            id=rid, tenant=tenant, asm=asm, workload=workload,
            machine=str(message.get("machine", "generic")),
            window=window,
            deadline_s=float(deadline) if deadline is not None else None,
            verify=bool(message.get("verify", False)),
            lenient=bool(message.get("lenient", False)),
            chain=chain, key=key)


# -- response frame constructors --------------------------------------------


def accepted_frame(rid: str, queue_depth: int,
                   key: str | None = None) -> dict:
    """The request passed admission and is queued/executing.

    ``key`` echoes the idempotency key the WAL recorded (the client's
    own, or the server-assigned one) -- by the time this frame is on
    the wire, the acceptance is already fsynced.
    """
    frame = {"type": "accepted", "id": rid,
             "protocol": PROTOCOL_VERSION, "queue_depth": queue_depth}
    if key is not None:
        frame["key"] = key
    return frame


def block_frame(rid: str, record: dict) -> dict:
    """One completed block outcome (journal-record shape)."""
    return {"type": "block", "id": rid, "block": record}


def shed_frame(rid: str, index: int, reason: str) -> dict:
    """One block the request will NOT schedule, and why."""
    return {"type": "shed", "id": rid, "index": index,
            "reason": reason}


def done_frame(rid: str, summary: dict, deduped: bool = False) -> dict:
    """Terminal success frame with the request accounting.

    ``deduped`` marks a response replayed from the WAL for a
    previously finished idempotency key -- nothing was recomputed.
    """
    frame = {"type": "done", "id": rid, "summary": summary}
    if deduped:
        frame["deduped"] = True
    return frame


def rejected_frame(rid: str | None, reason: str,
                   retry_after_s: float | None = None,
                   detail: str | None = None) -> dict:
    """Typed admission rejection (the 429 family)."""
    frame = {"type": "rejected", "id": rid, "code": 429,
             "reason": reason}
    if retry_after_s is not None:
        frame["retry_after_s"] = round(retry_after_s, 4)
    if detail:
        frame["detail"] = detail
    return frame


def error_frame(rid: str | None, error: str, message: str,
                code: int = 400) -> dict:
    """Typed request failure (malformed input, parse error, ...)."""
    return {"type": "error", "id": rid, "code": code, "error": error,
            "message": message}
