"""Admission control: token buckets, tenant budgets, bounded queues.

The daemon's first line of defence.  Every ``schedule`` request passes
through :class:`AdmissionController.admit` *before* any work is
queued; the controller either charges the request to its tenant and
returns a ticket, or raises :class:`~repro.errors.RequestRejected`
with a typed reason from :data:`repro.serve.protocol.REJECT_REASONS`
(and, where it makes sense, a ``retry_after_s`` hint).  Nothing is
ever silently dropped: a request that cannot run is a *response*, not
an absence.

Three independent limits compose:

* **rate** -- a per-tenant :class:`TokenBucket` smooths bursts; when
  empty, the rejection carries the exact time until the next token.
* **work budget** -- a per-tenant cumulative block allowance (reusing
  the :class:`~repro.runner.watchdog.Budget` dataclass the watchdog
  already uses for per-block work ceilings), so one tenant cannot
  monopolise a shared daemon even at a polite request rate.
* **occupancy** -- a global bounded queue (``max_active`` running +
  ``max_queued`` waiting); when full the daemon sheds load instead of
  accepting unbounded latency.

Everything here is synchronous and lock-guarded so both the asyncio
connection handlers and the engine's completion callbacks (worker
threads) can call it safely.  Time is injectable for deterministic
tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import RequestRejected
from repro.obs.metrics import (
    MetricsRegistry,
    record_overload_rejection,
    record_queue_depth,
    record_rejection,
)
from repro.runner.watchdog import Budget
from repro.serve.overload import (
    L_EMERGENCY,
    L_PRIORITIZED_SHED,
    is_priority_tenant,
)
from repro.serve.protocol import (
    REJECT_BUDGET,
    REJECT_DRAINING,
    REJECT_OVERLOAD,
    REJECT_QUEUE_FULL,
    REJECT_RATE_LIMITED,
    REJECT_TOO_LARGE,
)

#: retry hint used when the telemetry window has no completions yet
FALLBACK_RETRY_AFTER_S = 0.05


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, burst of ``capacity``.

    ``try_acquire`` is all-or-nothing and never blocks; on failure it
    returns the seconds until a token will be available so rejections
    can carry an honest ``retry_after_s``.
    """

    def __init__(self, rate: float, capacity: float,
                 clock=time.monotonic) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValueError(
                f"token bucket needs positive rate/capacity, got "
                f"rate={rate} capacity={capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.capacity,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> float | None:
        """Take ``tokens`` now, or report how long until they exist.

        Returns:
            None on success; otherwise the seconds until the bucket
            will hold ``tokens`` (the ``retry_after_s`` hint).
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return None
        return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Current token count (refilled to now)."""
        self._refill()
        return self._tokens


@dataclass
class TenantState:
    """Per-tenant admission state: rate bucket plus work budget.

    Attributes:
        name: the tenant id requests carry.
        bucket: the tenant's request-rate token bucket.
        budget: cumulative work allowance -- ``budget.max_work`` caps
            the total *blocks* this tenant may submit over the
            daemon's lifetime (None = unlimited).  The same dataclass
            the per-block watchdog uses, at tenant scope.
        blocks_charged: blocks admitted against the budget so far.
        requests_admitted / requests_rejected: accounting counters.
    """

    name: str
    bucket: TokenBucket
    budget: Budget = field(default_factory=Budget)
    blocks_charged: int = 0
    requests_admitted: int = 0
    requests_rejected: int = 0

    def budget_remaining(self) -> int | None:
        """Blocks left in the work budget (None = unlimited)."""
        if self.budget.max_work is None:
            return None
        return max(0, int(self.budget.max_work) - self.blocks_charged)


@dataclass
class AdmissionTicket:
    """Proof a request was admitted; releases occupancy exactly once.

    Handed to the engine; ``release()`` is idempotent so the normal
    completion path and the error/disconnect cleanup path can both
    call it without double-freeing a slot.
    """

    controller: "AdmissionController"
    tenant: str
    n_blocks: int
    released: bool = False

    def release(self) -> None:
        self.controller._release(self)


class AdmissionController:
    """Admit-or-reject gate shared by every connection handler.

    Args:
        max_active: requests allowed to be running at once.
        max_queued: additional requests allowed to wait; total
            occupancy is bounded by ``max_active + max_queued``.
        tenant_rate: token-bucket refill rate, requests/second.
        tenant_burst: token-bucket capacity (burst size).
        tenant_max_blocks: per-tenant cumulative block budget
            (None = unlimited).
        max_request_blocks: largest single request, in blocks.
        metrics: optional registry; rejections and queue depth are
            recorded as they happen.
        clock: injectable monotonic clock (tests).
        priority_tenants: tenant names in the ``priority`` class --
            kept flowing at degradation level L3 while best-effort
            tenants are shed (names starting with ``"priority"`` are
            priority regardless; see
            :func:`repro.serve.overload.is_priority_tenant`).
        overload_level: callable returning the degradation ladder's
            active level (None = no ladder; everything admits as L0).
        completion_rate: callable returning the telemetry window's
            observed request completions/second; rejections derive
            their ``retry_after_s`` hints from it (None or an empty
            window falls back to
            :data:`FALLBACK_RETRY_AFTER_S`).
    """

    def __init__(self,
                 max_active: int = 4,
                 max_queued: int = 16,
                 tenant_rate: float = 20.0,
                 tenant_burst: float = 40.0,
                 tenant_max_blocks: int | None = None,
                 max_request_blocks: int = 10_000,
                 metrics: MetricsRegistry | None = None,
                 clock=time.monotonic,
                 priority_tenants: frozenset[str] = frozenset(),
                 overload_level=None,
                 completion_rate=None) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued}")
        self.max_active = max_active
        self.max_queued = max_queued
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.tenant_max_blocks = tenant_max_blocks
        self.max_request_blocks = max_request_blocks
        self.metrics = metrics
        self._clock = clock
        self.priority_tenants = frozenset(priority_tenants)
        self._overload_level = overload_level
        self._completion_rate = completion_rate
        self._lock = threading.Lock()
        self._occupancy = 0
        self._occupancy_high_water = 0
        self._draining = False
        self.tenants: dict[str, TenantState] = {}
        self.admitted_total = 0
        self.rejected_total = 0
        self.rejections_by_reason: dict[str, int] = {}

    # -- internals ----------------------------------------------------------

    def _tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(
                name=name,
                bucket=TokenBucket(self.tenant_rate, self.tenant_burst,
                                   clock=self._clock),
                budget=Budget(max_work=self.tenant_max_blocks))
            self.tenants[name] = state
        return state

    def _reject(self, state: TenantState | None, tenant: str,
                reason: str, retry_after_s: float | None = None,
                detail: str | None = None) -> RequestRejected:
        self.rejected_total += 1
        self.rejections_by_reason[reason] = \
            self.rejections_by_reason.get(reason, 0) + 1
        if state is not None:
            state.requests_rejected += 1
        if self.metrics is not None:
            record_rejection(self.metrics, tenant, reason)
        message = f"request rejected: {reason}"
        if detail:
            message += f" ({detail})"
        return RequestRejected(message, reason=reason,
                               retry_after_s=retry_after_s,
                               tenant=tenant)

    def _release(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            if ticket.released:
                return
            ticket.released = True
            self._occupancy = max(0, self._occupancy - 1)

    def _level(self) -> int:
        return self._overload_level() \
            if self._overload_level is not None else 0

    def _retry_hint(self) -> float:
        """An honest ``retry_after_s``: time for one slot to free.

        Derived from the telemetry window's observed completion rate
        (one completion frees one slot, so the expected wait is its
        reciprocal), clamped to [fallback, 30s]; the fixed fallback
        covers the empty window at boot.
        """
        rate = None
        if self._completion_rate is not None:
            rate = self._completion_rate()
        if not rate or rate <= 0:
            return FALLBACK_RETRY_AFTER_S
        return round(min(30.0, max(FALLBACK_RETRY_AFTER_S,
                                   1.0 / rate)), 4)

    # -- public surface -----------------------------------------------------

    def priority_class(self, tenant: str) -> str:
        """``"priority"`` or ``"best-effort"`` for one tenant."""
        return "priority" \
            if is_priority_tenant(tenant, self.priority_tenants) \
            else "best-effort"

    def start_drain(self) -> None:
        """Stop admitting; subsequent admits reject with ``draining``."""
        with self._lock:
            self._draining = True

    def note_rejection(self, tenant: str, reason: str) -> None:
        """Fold a rejection detected outside :meth:`admit` into the
        stats.

        The pre-expansion size gate rejects an oversized workload
        before a block count even exists; this keeps that rejection
        visible in the same counters and metrics as ``admit``'s own.
        """
        with self._lock:
            state = self._tenant(tenant)
            state.requests_rejected += 1
            self.rejected_total += 1
            self.rejections_by_reason[reason] = \
                self.rejections_by_reason.get(reason, 0) + 1
            if self.metrics is not None:
                record_rejection(self.metrics, tenant, reason)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def occupancy(self) -> int:
        """Requests currently holding a slot (active + queued)."""
        with self._lock:
            return self._occupancy

    def would_admit(self) -> tuple[bool, str | None]:
        """Readiness probe: could a minimal request be admitted now?

        Checks drain state and occupancy only (not tenant limits,
        which depend on who asks).  Returns ``(ok, reason)``.
        """
        with self._lock:
            if self._draining:
                return (False, REJECT_DRAINING)
            if self._level() >= L_EMERGENCY:
                return (False, REJECT_OVERLOAD)
            if self._occupancy >= self.max_active + self.max_queued:
                return (False, REJECT_QUEUE_FULL)
            return (True, None)

    def admit(self, tenant: str, n_blocks: int) -> AdmissionTicket:
        """Charge a request to its tenant or raise a typed rejection.

        Checks run cheapest-first and nothing is charged unless every
        check passes, so a rejected request leaves no residue.

        Raises:
            RequestRejected: with ``reason`` in
                :data:`~repro.serve.protocol.REJECT_REASONS`.
        """
        with self._lock:
            state = self._tenant(tenant)
            if self._draining:
                raise self._reject(state, tenant, REJECT_DRAINING,
                                   detail="server is shutting down")
            level = self._level()
            if level >= L_EMERGENCY:
                # L4: admit nothing; in-flight requests finish.
                record_overload_rejection(
                    self.metrics, self.priority_class(tenant))
                raise self._reject(
                    state, tenant, REJECT_OVERLOAD,
                    retry_after_s=self._retry_hint(),
                    detail="emergency degradation: admitting nothing")
            if level >= L_PRIORITIZED_SHED \
                    and self.priority_class(tenant) != "priority":
                # L3: shed best-effort tenants, keep priority flowing.
                record_overload_rejection(self.metrics, "best-effort")
                raise self._reject(
                    state, tenant, REJECT_OVERLOAD,
                    retry_after_s=self._retry_hint(),
                    detail="prioritized shed: best-effort tenants "
                           "are deferred")
            if n_blocks > self.max_request_blocks:
                raise self._reject(
                    state, tenant, REJECT_TOO_LARGE,
                    detail=f"{n_blocks} blocks > cap "
                           f"{self.max_request_blocks}")
            if self._occupancy >= self.max_active + self.max_queued:
                raise self._reject(
                    state, tenant, REJECT_QUEUE_FULL,
                    retry_after_s=self._retry_hint(),
                    detail=f"{self._occupancy} requests in flight")
            remaining = state.budget_remaining()
            if remaining is not None and n_blocks > remaining:
                raise self._reject(
                    state, tenant, REJECT_BUDGET,
                    detail=f"{remaining} of "
                           f"{state.budget.max_work} blocks left")
            wait = state.bucket.try_acquire()
            if wait is not None:
                raise self._reject(state, tenant, REJECT_RATE_LIMITED,
                                   retry_after_s=wait)
            state.blocks_charged += n_blocks
            state.requests_admitted += 1
            self.admitted_total += 1
            self._occupancy += 1
            self._occupancy_high_water = max(self._occupancy_high_water,
                                             self._occupancy)
            if self.metrics is not None:
                # The gauge gets the *current* occupancy -- feeding it
                # the monotone high-water mark froze the telemetry
                # window's queue_depth_max at its all-time peak after
                # any burst.  High water stays its own snapshot stat.
                record_queue_depth(self.metrics, self._occupancy)
            return AdmissionTicket(controller=self, tenant=tenant,
                                   n_blocks=n_blocks)

    def export_state(self) -> dict:
        """Durable warm state for a drain/periodic snapshot.

        Captures what must survive a daemon restart for fairness to
        stay honest: per-tenant cumulative budgets and counters, plus
        the global admit/reject tallies.  Occupancy and drain state
        are deliberately excluded -- they describe the dying process,
        not the tenant relationship.
        """
        with self._lock:
            return {
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "rejections_by_reason": dict(self.rejections_by_reason),
                "tenants": {
                    name: {
                        "blocks_charged": s.blocks_charged,
                        "requests_admitted": s.requests_admitted,
                        "requests_rejected": s.requests_rejected,
                        "tokens": round(s.bucket.available, 6),
                    }
                    for name, s in sorted(self.tenants.items())
                },
            }

    def restore_state(self, payload: dict) -> None:
        """Re-hydrate :meth:`export_state` output after a restart.

        Token counts are clamped to the configured burst capacity, so
        a snapshot from a differently-configured daemon cannot grant
        more burst than this one allows.
        """
        with self._lock:
            self.admitted_total = int(payload.get("admitted_total", 0))
            self.rejected_total = int(payload.get("rejected_total", 0))
            self.rejections_by_reason = {
                str(k): int(v)
                for k, v in payload.get("rejections_by_reason",
                                        {}).items()}
            for name, saved in payload.get("tenants", {}).items():
                state = self._tenant(str(name))
                state.blocks_charged = int(
                    saved.get("blocks_charged", 0))
                state.requests_admitted = int(
                    saved.get("requests_admitted", 0))
                state.requests_rejected = int(
                    saved.get("requests_rejected", 0))
                tokens = saved.get("tokens")
                if isinstance(tokens, (int, float)):
                    state.bucket._refill()
                    state.bucket._tokens = max(
                        0.0, min(float(tokens), state.bucket.capacity))

    def snapshot(self) -> dict:
        """Admission state for the ``stats``/``health`` endpoints."""
        with self._lock:
            return {
                "occupancy": self._occupancy,
                "occupancy_high_water": self._occupancy_high_water,
                "max_active": self.max_active,
                "max_queued": self.max_queued,
                "draining": self._draining,
                "overload_level": self._level(),
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "rejections_by_reason": dict(sorted(
                    self.rejections_by_reason.items())),
                "tenants": {
                    name: {
                        "class": self.priority_class(name),
                        "requests_admitted": s.requests_admitted,
                        "requests_rejected": s.requests_rejected,
                        "blocks_charged": s.blocks_charged,
                        "budget_remaining": s.budget_remaining(),
                        "tokens_available": round(s.bucket.available, 3),
                    }
                    for name, s in sorted(self.tenants.items())
                },
            }
