"""``repro loadtest``: a seeded load generator for the serve daemon.

Generates a deterministic request mix (seeded kernels, sizes,
tenants, and deadlines), drives it against a running daemon with
bounded client concurrency, and reports the SLO numbers that matter
for a scheduling service: latency percentiles, throughput, shed and
rejection rates, and the error budget -- the fraction of *admitted,
deadlined* requests that met their deadline.

The mix is the deterministic part: :func:`generate_mix` depends only
on the config (same seed, same requests, fingerprinted in the
report), so two loadtest runs against differently-tuned servers are
comparing identical traffic.  Latencies are of course host-dependent;
they are recorded through the obs metrics registry
(``repro_requests_total``, ``repro_request_seconds``, ...) so
``loadtest`` output and server-side dashboards speak the same
catalog.

What "good" looks like under overload: rejections climb (the daemon
sheds load *explicitly*, by typed reason) while admitted requests
keep meeting their deadlines -- admission control converts overload
into fast failure for some instead of slow failure for all.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, record_request
from repro.serve import protocol
from repro.serve.overload import is_priority_tenant
from repro.serve.protocol import parse_address

#: kernels the generator draws from (all in workloads.kernels)
MIX_KERNELS = ("daxpy", "dot_product", "livermore1", "figure1")

#: resend attempts a storm-phase priority client makes before giving
#: up (each waits out the rejection's honest ``retry_after_s`` hint)
STORM_PRIORITY_RETRIES = 8

#: longest a storm retry waits regardless of the hint, seconds
STORM_RETRY_CAP_S = 0.5


@dataclass(frozen=True)
class LoadtestConfig:
    """One loadtest's traffic description.

    Attributes:
        address: daemon address to connect to.
        seed: mix seed; same seed, same requests.
        requests: total schedule requests to send.
        concurrency: client connections sending in parallel.
        tenants: distinct tenant ids to spread traffic over.
        copies_max: request size knob -- each request schedules a
            kernel repeated 1..copies_max times (one block per copy).
        deadline_s: the deadline carried by deadlined requests.
        deadline_fraction: fraction of requests carrying a deadline.
        machine: machine model every request asks for.
        timeout_s: client-side cap on one request's full stream.
        idempotency_retry: fraction of requests resent -- after the
            main mix finishes -- with their original idempotency key.
            0 disables the retry phase (and keeps keys off the mix,
            so plain-mix fingerprints are unchanged).  When enabled,
            every resend must come back ``deduped`` from the WAL
            result store; a re-executed duplicate counts against
            ``duplicate_results``, which a durable daemon keeps at
            exactly 0.
        storm: replace the polite mix with an overload storm --
            a flood of best-effort traffic with a priority-class
            minority -- and report SLOs split by tenant priority
            class plus the daemon's degradation-ladder trajectory
            (max level reached, transitions, recovery to L0).
            Priority clients honour ``retry_after_s`` and retry up
            to :data:`STORM_PRIORITY_RETRIES` times; best-effort
            clients take the typed rejection and leave.
        priority_share: fraction of storm requests from priority
            tenants.
        cooldown_s: how long after the storm to wait for the ladder
            to descend back to L0 before reporting non-recovery.
    """

    address: str
    seed: int = 0
    requests: int = 40
    concurrency: int = 8
    tenants: int = 2
    copies_max: int = 4
    deadline_s: float = 10.0
    deadline_fraction: float = 0.5
    machine: str = "generic"
    timeout_s: float = 60.0
    idempotency_retry: float = 0.0
    storm: bool = False
    priority_share: float = 0.25
    cooldown_s: float = 30.0


def generate_mix(config: LoadtestConfig) -> list[dict]:
    """The deterministic request mix for a config (wire messages)."""
    rng = random.Random(f"repro-loadtest:{config.seed}")
    mix = []
    for i in range(config.requests):
        message = {
            "op": "schedule",
            "id": f"lt-{config.seed}-{i}",
            "trace": f"lt-trace-{config.seed}-{i}",
            "tenant": f"tenant-{i % max(1, config.tenants)}",
            "machine": config.machine,
            "workload": {
                "kernel": MIX_KERNELS[rng.randrange(len(MIX_KERNELS))],
                "copies": rng.randint(1, max(1, config.copies_max)),
            },
        }
        if rng.random() < config.deadline_fraction:
            message["deadline_s"] = config.deadline_s
        if config.idempotency_retry > 0:
            message["key"] = f"lt-key-{config.seed}-{i}"
        mix.append(message)
    return mix


def generate_storm_mix(config: LoadtestConfig) -> list[dict]:
    """The deterministic storm mix: flood + priority minority.

    Tenant names carry the class: ``priority-N`` tenants are in the
    priority class by the
    :data:`~repro.serve.overload.PRIORITY_TENANT_PREFIX` naming
    convention, ``besteffort-N`` tenants are not.  Every request
    carries a deadline (a storm client that waits forever is not
    measuring an SLO).
    """
    rng = random.Random(f"repro-loadtest-storm:{config.seed}")
    stride = max(2, int(round(1.0 / max(0.01, min(
        config.priority_share, 0.5)))))
    mix = []
    for i in range(config.requests):
        if i % stride == 0:
            tenant = f"priority-{(i // stride) % 2}"
        else:
            tenant = f"besteffort-{i % 3}"
        mix.append({
            "op": "schedule",
            "id": f"st-{config.seed}-{i}",
            "trace": f"st-trace-{config.seed}-{i}",
            "tenant": tenant,
            "machine": config.machine,
            "deadline_s": config.deadline_s,
            "workload": {
                "kernel": MIX_KERNELS[rng.randrange(len(MIX_KERNELS))],
                "copies": rng.randint(1, max(1, config.copies_max)),
            },
        })
    return mix


def generate_retry_mix(config: LoadtestConfig,
                       mix: list[dict]) -> list[dict]:
    """The seeded duplicate-key resend subset for the retry phase.

    Each selected message is resent verbatim except for a fresh
    request id (frames route by id; dedup is by ``key``).
    """
    rng = random.Random(f"repro-loadtest-retry:{config.seed}")
    retries = []
    for message in mix:
        if rng.random() < config.idempotency_retry:
            duplicate = dict(message)
            duplicate["id"] = f"{message['id']}-retry"
            retries.append(duplicate)
    return retries


def mix_fingerprint(mix: list[dict]) -> str:
    """Stable digest of a mix, printed so runs are comparable."""
    payload = json.dumps(mix, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class LoadtestReport:
    """What one loadtest observed.

    ``completed + rejected + errored == sent`` always holds -- the
    daemon's never-silent rule means every request has a terminal
    frame (a client-side timeout counts as errored).
    """

    sent: int = 0
    completed: int = 0
    rejected: int = 0
    errored: int = 0
    rejections_by_reason: dict[str, int] = field(default_factory=dict)
    blocks_done: int = 0
    blocks_shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    deadlined: int = 0
    deadlines_met: int = 0
    latencies_s: list[float] = field(default_factory=list)
    wall_s: float = 0.0
    fingerprint: str = ""
    seed: int = 0
    retries_sent: int = 0
    retries_deduped: int = 0
    retries_rejected: int = 0
    duplicate_results: int = 0
    traced_frames: int = 0
    trace_mismatches: int = 0
    storm: dict | None = None

    def percentile(self, q: float) -> float:
        """Nearest-rank latency percentile over completed requests."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = min(len(ordered) - 1,
                   max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s else 0.0

    @property
    def shed_rate(self) -> float:
        total = self.blocks_done + self.blocks_shed
        return self.blocks_shed / total if total else 0.0

    @property
    def error_budget_ok(self) -> float:
        """Fraction of admitted, deadlined requests that met their
        deadline (1.0 when none carried a deadline)."""
        return (self.deadlines_met / self.deadlined
                if self.deadlined else 1.0)

    def to_dict(self) -> dict:
        doc = {
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "errored": self.errored,
            "rejections_by_reason": dict(sorted(
                self.rejections_by_reason.items())),
            "blocks_done": self.blocks_done,
            "blocks_shed": self.blocks_shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "shed_rate": round(self.shed_rate, 4),
            "deadlined": self.deadlined,
            "deadlines_met": self.deadlines_met,
            "error_budget_ok": round(self.error_budget_ok, 4),
            "retries_sent": self.retries_sent,
            "retries_deduped": self.retries_deduped,
            "retries_rejected": self.retries_rejected,
            "duplicate_results": self.duplicate_results,
            "traced_frames": self.traced_frames,
            "trace_mismatches": self.trace_mismatches,
            "p50_s": round(self.percentile(0.50), 6),
            "p99_s": round(self.percentile(0.99), 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "wall_s": round(self.wall_s, 3),
        }
        if self.storm is not None:
            doc["storm"] = self.storm
        return doc


async def _open(address: str):
    kind = parse_address(address)
    if kind[0] == "unix":
        return await asyncio.open_unix_connection(
            kind[1], limit=protocol.MAX_LINE_BYTES)
    return await asyncio.open_connection(
        kind[1], kind[2], limit=protocol.MAX_LINE_BYTES)


async def _drive_one(reader, writer, message: dict,
                     report: LoadtestReport, lock: asyncio.Lock,
                     metrics: MetricsRegistry | None,
                     timeout_s: float) -> None:
    """Send one request, consume its stream to the terminal frame."""
    t0 = time.perf_counter()
    writer.write(protocol.encode(message))
    await writer.drain()
    status = "client-timeout"
    blocks = 0
    shed: dict[str, int] = {}
    deadline_met = None
    traced = 0
    mismatched = 0
    expected_trace = message.get("trace")
    try:
        while True:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=timeout_s)
            if not line:
                status = "disconnected"
                break
            frame = protocol.decode(line)
            if frame.get("id") != message["id"]:
                continue
            if expected_trace is not None:
                # End-to-end id propagation: every frame of a traced
                # request must echo the client-minted id verbatim.
                if frame.get("trace") == expected_trace:
                    traced += 1
                else:
                    mismatched += 1
            kind = frame.get("type")
            if kind == "block":
                blocks += 1
            elif kind == "shed":
                shed[frame["reason"]] = shed.get(frame["reason"], 0) + 1
            elif kind == "done":
                status = "ok"
                deadline_met = frame["summary"].get("deadline_met")
                break
            elif kind == "rejected":
                status = f"rejected:{frame['reason']}"
                break
            elif kind == "error":
                status = "error"
                break
    except asyncio.TimeoutError:
        status = "client-timeout"
    latency = time.perf_counter() - t0

    async with lock:
        report.sent += 1
        report.traced_frames += traced
        report.trace_mismatches += mismatched
        report.blocks_done += blocks
        for reason, count in shed.items():
            report.blocks_shed += count
            report.shed_by_reason[reason] = \
                report.shed_by_reason.get(reason, 0) + count
        if status == "ok":
            report.completed += 1
            report.latencies_s.append(latency)
            if "deadline_s" in message:
                report.deadlined += 1
                if deadline_met:
                    report.deadlines_met += 1
        elif status.startswith("rejected:"):
            report.rejected += 1
            reason = status.split(":", 1)[1]
            report.rejections_by_reason[reason] = \
                report.rejections_by_reason.get(reason, 0) + 1
        else:
            report.errored += 1
        if metrics is not None:
            record_request(metrics, message.get("tenant", "default"),
                           "ok" if status == "ok" else status,
                           latency)


async def _drive_retry(reader, writer, message: dict,
                       report: LoadtestReport, lock: asyncio.Lock,
                       timeout_s: float) -> None:
    """Resend a finished key; classify the daemon's answer.

    The main mix has fully settled, so every resent key has a
    terminal WAL record and the only correct ``done`` answer carries
    ``deduped: true`` -- a replay from the result store.  A ``done``
    *without* it means the daemon executed the work a second time:
    that is a double-schedule, counted in ``duplicate_results``.
    """
    writer.write(protocol.encode(message))
    await writer.drain()
    status = "client-timeout"
    deduped = False
    try:
        while True:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=timeout_s)
            if not line:
                status = "disconnected"
                break
            frame = protocol.decode(line)
            if frame.get("id") != message["id"]:
                continue
            kind = frame.get("type")
            if kind == "done":
                status = "ok"
                deduped = bool(frame.get("deduped"))
                break
            if kind == "rejected":
                status = "rejected"
                break
            if kind == "error":
                status = "error"
                break
    except asyncio.TimeoutError:
        status = "client-timeout"
    async with lock:
        report.retries_sent += 1
        if status == "ok" and deduped:
            report.retries_deduped += 1
        elif status == "ok":
            report.duplicate_results += 1
        else:
            report.retries_rejected += 1


def _storm_class_stats() -> dict:
    return {"sent": 0, "completed": 0, "rejected_overload": 0,
            "rejected_other": 0, "errored": 0, "retries": 0,
            "deadlined": 0, "deadlines_met": 0, "latencies": []}


async def _poll_stats(address: str, timeout_s: float = 5.0) -> dict:
    """One ``stats`` round trip on a fresh connection."""
    reader, writer = await _open(address)
    try:
        writer.write(protocol.encode({"op": "stats",
                                      "id": "storm-stats"}))
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(),
                                      timeout=timeout_s)
        if not line:
            raise ReproError(
                f"stats poll of {address!r}: daemon hung up")
        return protocol.decode(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _storm_attempt(reader, writer, message: dict,
                         timeout_s: float) -> dict:
    """One storm send; returns the terminal outcome of the stream."""
    t0 = time.perf_counter()
    writer.write(protocol.encode(message))
    await writer.drain()
    outcome = {"status": "client-timeout", "reason": None,
               "retry_after_s": None, "blocks": 0, "shed": {},
               "deadline_met": None, "latency_s": 0.0}
    try:
        while True:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=timeout_s)
            if not line:
                outcome["status"] = "disconnected"
                break
            frame = protocol.decode(line)
            if frame.get("id") != message["id"]:
                continue
            kind = frame.get("type")
            if kind == "block":
                outcome["blocks"] += 1
            elif kind == "shed":
                shed = outcome["shed"]
                shed[frame["reason"]] = shed.get(frame["reason"],
                                                 0) + 1
            elif kind == "done":
                outcome["status"] = "ok"
                outcome["deadline_met"] = \
                    frame["summary"].get("deadline_met")
                break
            elif kind == "rejected":
                outcome["status"] = "rejected"
                outcome["reason"] = frame.get("reason", "unknown")
                outcome["retry_after_s"] = frame.get("retry_after_s")
                break
            elif kind == "error":
                outcome["status"] = "error"
                break
    except asyncio.TimeoutError:
        outcome["status"] = "client-timeout"
    outcome["latency_s"] = time.perf_counter() - t0
    return outcome


async def _drive_storm(reader, writer, message: dict,
                       report: LoadtestReport, classes: dict,
                       lock: asyncio.Lock,
                       metrics: MetricsRegistry | None,
                       timeout_s: float) -> None:
    """Drive one storm request with class-aware retry behaviour.

    Priority-class clients honour the rejection's ``retry_after_s``
    hint (capped at :data:`STORM_RETRY_CAP_S`) and resend up to
    :data:`STORM_PRIORITY_RETRIES` times under a fresh request id;
    best-effort clients take the typed rejection and leave.  The
    request counts once in the report, under its final outcome.
    """
    tenant = message.get("tenant", "")
    cls = ("priority" if is_priority_tenant(tenant, ())
           else "best-effort")
    attempts = 0
    while True:
        wire = message
        if attempts:
            wire = dict(message,
                        id=f"{message['id']}-r{attempts}",
                        trace=f"{message.get('trace', '')}"
                              f"-r{attempts}")
        outcome = await _storm_attempt(reader, writer, wire,
                                       timeout_s)
        if (outcome["status"] == "rejected" and cls == "priority"
                and attempts < STORM_PRIORITY_RETRIES):
            attempts += 1
            hint = outcome["retry_after_s"]
            if not isinstance(hint, (int, float)) or hint <= 0:
                hint = 0.05
            await asyncio.sleep(min(STORM_RETRY_CAP_S, hint))
            continue
        break
    status = outcome["status"]
    async with lock:
        stats = classes[cls]
        report.sent += 1
        stats["sent"] += 1
        stats["retries"] += attempts
        report.blocks_done += outcome["blocks"]
        for reason, count in outcome["shed"].items():
            report.blocks_shed += count
            report.shed_by_reason[reason] = \
                report.shed_by_reason.get(reason, 0) + count
        if status == "ok":
            report.completed += 1
            report.latencies_s.append(outcome["latency_s"])
            stats["completed"] += 1
            stats["latencies"].append(outcome["latency_s"])
            if "deadline_s" in message:
                report.deadlined += 1
                stats["deadlined"] += 1
                if outcome["deadline_met"]:
                    report.deadlines_met += 1
                    stats["deadlines_met"] += 1
        elif status == "rejected":
            reason = outcome["reason"] or "unknown"
            report.rejected += 1
            report.rejections_by_reason[reason] = \
                report.rejections_by_reason.get(reason, 0) + 1
            if reason == "overload":
                stats["rejected_overload"] += 1
            else:
                stats["rejected_other"] += 1
        else:
            report.errored += 1
            stats["errored"] += 1
        if metrics is not None:
            record_request(metrics, tenant,
                           "ok" if status == "ok" else status,
                           outcome["latency_s"])


async def _run_storm(config: LoadtestConfig, mix: list[dict],
                     report: LoadtestReport,
                     metrics: MetricsRegistry | None) -> None:
    """The storm phase: flood, sample the ladder, wait for recovery."""
    lock = asyncio.Lock()
    classes = {"priority": _storm_class_stats(),
               "best-effort": _storm_class_stats()}
    trajectory = {"levels_seen": set(), "max_level": 0, "samples": 0}
    stop = asyncio.Event()

    def _record_sample(overload: dict) -> None:
        level = int(overload.get("level", 0))
        trajectory["levels_seen"].add(level)
        trajectory["max_level"] = max(
            trajectory["max_level"], level,
            int(overload.get("max_level", level)))
        trajectory["samples"] += 1

    async def sampler() -> None:
        while not stop.is_set():
            try:
                frame = await _poll_stats(config.address)
                _record_sample(frame.get("overload") or {})
            except (ReproError, OSError, ValueError):
                pass
            try:
                await asyncio.wait_for(stop.wait(), timeout=0.2)
            except asyncio.TimeoutError:
                pass

    queue: asyncio.Queue = asyncio.Queue()
    for message in mix:
        queue.put_nowait(message)

    async def worker() -> None:
        try:
            reader, writer = await _open(config.address)
        except (ConnectionError, FileNotFoundError, OSError) as exc:
            raise ReproError(
                f"loadtest cannot connect to {config.address!r}: "
                f"{exc}")
        try:
            while True:
                try:
                    message = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                await _drive_storm(reader, writer, message, report,
                                   classes, lock, metrics,
                                   config.timeout_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    sampler_task = asyncio.ensure_future(sampler())
    try:
        await asyncio.gather(*(worker()
                               for _ in range(config.concurrency)))
    finally:
        stop.set()
        await sampler_task

    # Cooldown: the acceptance criterion is not "the daemon survived"
    # but "the ladder came back down" -- poll until L0 or give up.
    # A flood shorter than the daemon's monitor interval ends before
    # the latched queue-depth signal gets its first tick, so an L0
    # read in the first couple of seconds may be *pre-ascent*, not
    # recovery; hold the verdict through a short engagement grace
    # unless the ladder has already been seen moving.
    recovered = False
    final: dict = {}
    start = time.perf_counter()
    deadline = start + max(0.0, config.cooldown_s)
    grace = start + min(2.0, max(0.0, config.cooldown_s))
    while True:
        try:
            frame = await _poll_stats(config.address)
            final = frame.get("overload") or {}
            _record_sample(final)
            if int(final.get("level", 0)) == 0 \
                    and (trajectory["max_level"] > 0
                         or time.perf_counter() >= grace):
                recovered = True
                break
        except (ReproError, OSError, ValueError):
            pass
        if time.perf_counter() >= deadline:
            break
        await asyncio.sleep(0.25)

    by_class = {}
    for cls, stats in classes.items():
        latencies = sorted(stats.pop("latencies"))
        p99 = 0.0
        if latencies:
            rank = min(len(latencies) - 1,
                       max(0, round(0.99 * (len(latencies) - 1))))
            p99 = latencies[rank]
        stats["p99_s"] = round(p99, 6)
        stats["budget_ok"] = round(
            stats["deadlines_met"] / stats["deadlined"], 4) \
            if stats["deadlined"] else 1.0
        by_class[cls] = stats
    report.storm = {
        "by_class": by_class,
        "max_level": trajectory["max_level"],
        "levels_seen": sorted(trajectory["levels_seen"]),
        "samples": trajectory["samples"],
        "recovered": recovered,
        "final_level": int(final.get("level", -1)) if final else -1,
        "transitions_total": int(final.get("transitions_total", 0)),
        "ascents_total": int(final.get("ascents_total", 0)),
        "descents_total": int(final.get("descents_total", 0)),
    }


async def _run(config: LoadtestConfig, mix: list[dict],
               report: LoadtestReport,
               metrics: MetricsRegistry | None) -> None:
    lock = asyncio.Lock()

    async def phase(messages: list[dict], drive) -> None:
        queue: asyncio.Queue = asyncio.Queue()
        for message in messages:
            queue.put_nowait(message)

        async def worker() -> None:
            try:
                reader, writer = await _open(config.address)
            except (ConnectionError, FileNotFoundError, OSError) as exc:
                raise ReproError(
                    f"loadtest cannot connect to {config.address!r}: "
                    f"{exc}")
            try:
                while True:
                    try:
                        message = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    await drive(reader, writer, message)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        await asyncio.gather(*(worker()
                               for _ in range(config.concurrency)))

    await phase(mix, lambda r, w, m: _drive_one(
        r, w, m, report, lock, metrics, config.timeout_s))
    if config.idempotency_retry > 0:
        await phase(generate_retry_mix(config, mix),
                    lambda r, w, m: _drive_retry(
                        r, w, m, report, lock, config.timeout_s))


def run_loadtest(config: LoadtestConfig,
                 metrics: MetricsRegistry | None = None
                 ) -> LoadtestReport:
    """Generate the mix, drive it, and return the report.

    Raises:
        ReproError: when the daemon is unreachable.
    """
    mix = (generate_storm_mix(config) if config.storm
           else generate_mix(config))
    report = LoadtestReport(seed=config.seed,
                            fingerprint=mix_fingerprint(mix))
    t0 = time.perf_counter()
    if config.storm:
        asyncio.run(_run_storm(config, mix, report, metrics))
    else:
        asyncio.run(_run(config, mix, report, metrics))
    report.wall_s = time.perf_counter() - t0
    return report


def render_loadtest_report(report: LoadtestReport) -> str:
    """Human-readable report lines (CLI output)."""
    doc = report.to_dict()
    lines = [
        f"! loadtest: seed {doc['seed']}, mix {doc['fingerprint']}",
        f"! requests: {doc['sent']} sent, {doc['completed']} ok, "
        f"{doc['rejected']} rejected, {doc['errored']} errored",
    ]
    if doc["rejections_by_reason"]:
        reasons = ", ".join(f"{k}={v}" for k, v in
                            doc["rejections_by_reason"].items())
        lines.append(f"! shed load (typed): {reasons}")
    lines.append(
        f"! blocks: {doc['blocks_done']} done, "
        f"{doc['blocks_shed']} shed "
        f"(rate {doc['shed_rate']:.1%})")
    if doc["shed_by_reason"]:
        reasons = ", ".join(f"{k}={v}" for k, v in
                            doc["shed_by_reason"].items())
        lines.append(f"! shed reasons: {reasons}")
    lines.append(
        f"! latency: p50 {doc['p50_s'] * 1000:.1f} ms, "
        f"p99 {doc['p99_s'] * 1000:.1f} ms; "
        f"throughput {doc['throughput_rps']:.1f} req/s")
    lines.append(
        f"! error budget: {doc['deadlines_met']} of "
        f"{doc['deadlined']} deadlined requests met their deadline "
        f"({doc['error_budget_ok']:.1%})")
    lines.append(
        f"! tracing: {doc['traced_frames']} frames echoed their "
        f"request's trace id, {doc['trace_mismatches']} mismatched "
        f"({'OK' if doc['trace_mismatches'] == 0 else 'FAILED'})")
    if doc["retries_sent"]:
        lines.append(
            f"! idempotency: {doc['retries_sent']} duplicate-key "
            f"resends, {doc['retries_deduped']} deduped, "
            f"{doc['retries_rejected']} rejected, "
            f"{doc['duplicate_results']} duplicate results "
            f"({'OK' if doc['duplicate_results'] == 0 else 'FAILED'})")
    storm = doc.get("storm")
    if storm:
        seen = "/".join(f"L{level}" for level in storm["levels_seen"])
        lines.append(
            f"! storm ladder: max L{storm['max_level']}, "
            f"seen {seen or 'L?'}, "
            f"{storm['transitions_total']} transitions "
            f"({storm['ascents_total']} up, "
            f"{storm['descents_total']} down), "
            f"{'recovered to L0' if storm['recovered'] else 'DID NOT RECOVER'}")
        for cls in sorted(storm["by_class"]):
            s = storm["by_class"][cls]
            lines.append(
                f"! storm[{cls}]: {s['sent']} sent, "
                f"{s['completed']} ok, "
                f"{s['rejected_overload']} overload-rejected, "
                f"{s['rejected_other']} other-rejected, "
                f"{s['errored']} errored, {s['retries']} retries; "
                f"budget {s['budget_ok']:.1%}, "
                f"p99 {s['p99_s'] * 1000:.1f} ms")
    return "\n".join(lines)
