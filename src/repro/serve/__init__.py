"""Scheduling-as-a-service: the hardened ``repro serve`` daemon.

Everything before this package is one-shot CLI; this is the serving
layer the ROADMAP's "millions of users" claim needs, built so the
robustness machinery (supervised pool, fallback chains, budgets,
journal semantics, chaos) earns its keep under live traffic:

* :mod:`repro.serve.protocol` -- the newline-delimited JSON wire
  protocol (requests, streamed per-block results, typed rejections).
* :mod:`repro.serve.admission` -- per-tenant token-bucket rate
  limiting, per-tenant work budgets (reusing
  :class:`~repro.runner.watchdog.Budget`), and bounded-queue
  backpressure with explicit 429-style load shedding.
* :mod:`repro.serve.engine` -- per-request execution: deadline
  propagation down to :func:`~repro.runner.fallback.\
schedule_block_resilient` wall-clock budgets, per-thread warm
  :class:`~repro.dag.builders.cache.PairwiseCache`, and shed
  accounting (scheduled + degraded + shed + quarantined = total).
* :mod:`repro.serve.server` -- the asyncio daemon: unix-socket or
  localhost-TCP listener, health/readiness endpoints wired to pool
  and breaker state, and graceful drain on SIGTERM (stop admitting,
  finish or shed in-flight blocks, exit 0).
* :mod:`repro.serve.loadtest` -- the seeded ``repro loadtest`` client:
  p50/p99 latency, throughput, shed rate, and error-budget report
  through the obs metrics registry.
* :mod:`repro.serve.chaosserve` -- ``repro chaos --serve``: worker
  crashes, client disconnects, and deadline storms against a live
  server, asserting zero lost and zero double-scheduled blocks; with
  ``--kill-daemon``, seeded SIGKILLs of the daemon itself under a
  real supervisor, audited from the WAL.
* :mod:`repro.serve.wal` -- the request write-ahead log: fsync before
  acknowledge, idempotency-keyed dedup, crash recovery that re-runs
  acknowledged-but-unfinished requests without re-scheduling their
  recorded blocks.
* :mod:`repro.serve.supervise` -- ``repro serve --supervised``: a
  restart-with-backoff parent that detects crash loops and preserves
  the WAL directory across daemon generations.
"""

from repro.serve.admission import (
    AdmissionController,
    TenantState,
    TokenBucket,
)
from repro.serve.chaosserve import (
    KillDaemonConfig,
    KillDaemonReport,
    ServeChaosConfig,
    ServeChaosReport,
    render_kill_daemon_report,
    render_serve_chaos_report,
    run_kill_daemon_chaos,
    run_serve_chaos,
)
from repro.serve.engine import run_request
from repro.serve.loadtest import (
    LoadtestConfig,
    LoadtestReport,
    generate_mix,
    generate_retry_mix,
    render_loadtest_report,
    run_loadtest,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    REJECT_REASONS,
    ScheduleRequest,
    parse_address,
)
from repro.serve.server import BackgroundServer, ReproServer, ServeConfig
from repro.serve.supervise import (
    DaemonSupervisor,
    SupervisorPolicy,
    spawn_serve_child,
)
from repro.serve.wal import WalRecovery, WriteAheadLog

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "DaemonSupervisor",
    "generate_mix",
    "generate_retry_mix",
    "KillDaemonConfig",
    "KillDaemonReport",
    "LoadtestConfig",
    "LoadtestReport",
    "parse_address",
    "PROTOCOL_VERSION",
    "REJECT_REASONS",
    "render_kill_daemon_report",
    "render_loadtest_report",
    "render_serve_chaos_report",
    "ReproServer",
    "run_kill_daemon_chaos",
    "run_loadtest",
    "run_request",
    "run_serve_chaos",
    "ScheduleRequest",
    "ServeChaosConfig",
    "ServeChaosReport",
    "ServeConfig",
    "spawn_serve_child",
    "SupervisorPolicy",
    "TenantState",
    "TokenBucket",
    "WalRecovery",
    "WriteAheadLog",
]
