"""Adaptive overload control: pressure sentinel + degradation ladder.

The daemon's binary defenses (occupancy bound, token buckets,
deadline sheds) either admit a request at full quality or reject it
outright.  This module adds the middle ground the paper's Section 6
argues for -- cheaper construction modes exist precisely so a
scheduler can trade quality for throughput when conditions demand it:

* :class:`OverloadMonitor` periodically samples pressure signals --
  process RSS, event-loop lag, admission occupancy against its bound,
  the :class:`~repro.obs.expo.RollingWindow`'s sliding-window p99 and
  queue depth, and the WAL's in-flight backlog -- and folds them into
  one scalar *pressure score* (the max over per-signal budget
  fractions, so the dominant signal names itself).
* :class:`DegradationLadder` is a hysteresis state machine over five
  ordered levels:

  - **L0 normal** -- full service.
  - **L1 shed-optional** -- drop optional work: warm caches clamp to
    :attr:`OverloadConfig.shed_cache_entries` and per-request trace
    detail is dropped.
  - **L2 brownout** -- admitted requests run the cheaper
    :attr:`OverloadConfig.brownout_chain` with reduced per-request
    parallelism (client chain preferences are overridden).
  - **L3 prioritized-shed** -- best-effort tenants are rejected with
    the typed ``overload`` reason and an honest ``retry_after_s``;
    ``priority`` tenants keep flowing.
  - **L4 emergency** -- nothing is admitted, in-flight requests
    finish, warm caches are released.

  Each level has a distinct *enter* threshold (score at or above
  which the ladder may ascend into it) and a lower *exit* threshold
  (score at or below which it may descend out of it), plus minimum
  dwell times in both directions, so a score oscillating inside the
  hysteresis band produces **zero** transitions and even a worst-case
  oscillation transitions at a rate bounded by the dwells -- the
  ladder never flaps.

Every transition is a typed :class:`Transition` event: counted into
the metrics registry, stamped into the server tracer, exported as the
``repro_overload_level`` gauge on the Prometheus endpoint, shown by
``repro top``, and summarized in the ``repro report`` Overload
section.  The clock is injectable everywhere, so transition sequences
are byte-reproducible in tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError

#: the ladder's ordered levels, least to most degraded
LEVEL_NAMES = ("normal", "shed-optional", "brownout",
               "prioritized-shed", "emergency")

L_NORMAL = 0
L_SHED_OPTIONAL = 1
L_BROWNOUT = 2
L_PRIORITIZED_SHED = 3
L_EMERGENCY = 4

#: per-level ascend thresholds (pressure score >= enter[L] may enter
#: L).  Occupancy alone saturates at 1.0, so a merely-full queue can
#: reach prioritized shed but never emergency -- L4 needs a signal
#: (p99, RSS, loop lag, backlog) running 30% past its budget.
DEFAULT_ENTER = (0.0, 0.70, 0.85, 1.00, 1.30)

#: per-level descend thresholds (score <= exit[L] may leave L).
#: Strictly below the matching enter threshold: the gap is the
#: hysteresis band.
DEFAULT_EXIT = (0.0, 0.55, 0.70, 0.85, 1.10)

#: minimum seconds the ladder must sit at each level before it may
#: descend out of it
DEFAULT_DWELL_S = (0.0, 1.0, 1.0, 1.5, 2.0)

#: how many recent transitions a ladder retains for its snapshot
RECENT_TRANSITIONS = 16

#: tenants whose name carries this prefix are priority class even
#: without explicit registration (a namespace convention, like queue
#: names)
PRIORITY_TENANT_PREFIX = "priority"


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning for the monitor, the ladder, and the degradations.

    Attributes:
        interval_s: seconds between monitor samples.
        p99_budget_s: sliding-window p99 latency that counts as a
            pressure score of 1.0.
        lag_budget_s: event-loop lag that counts as 1.0.
        rss_budget_mb: process RSS that counts as 1.0 (None = the RSS
            signal is ignored).
        backlog_budget: WAL in-flight keys that count as 1.0.
        enter / exit: per-level ascend/descend score thresholds (see
            module docstring); ``exit[L] < enter[L]`` for L >= 1.
        dwell_s: per-level minimum residence before descending.
        dwell_up_s: minimum seconds between consecutive ascents.
        brownout_chain: builder fallback chain admitted requests run
            at L2+ (overrides both the server default and the
            client's request chain).
        brownout_jobs: per-request parallelism cap at L2+.
        shed_cache_entries: warm-cache LRU clamp at L1+.
        priority_tenants: tenant names explicitly in the priority
            class; names starting with
            :data:`PRIORITY_TENANT_PREFIX` are priority regardless.
    """

    interval_s: float = 0.25
    p99_budget_s: float = 2.0
    lag_budget_s: float = 0.25
    rss_budget_mb: float | None = None
    backlog_budget: int = 64
    enter: tuple[float, ...] = DEFAULT_ENTER
    exit: tuple[float, ...] = DEFAULT_EXIT
    dwell_s: tuple[float, ...] = DEFAULT_DWELL_S
    dwell_up_s: float = 0.25
    brownout_chain: tuple[str, ...] = ("table-forward",)
    brownout_jobs: int = 1
    shed_cache_entries: int = 64
    priority_tenants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        n = len(LEVEL_NAMES)
        if len(self.enter) != n or len(self.exit) != n \
                or len(self.dwell_s) != n:
            raise ReproError(
                f"overload thresholds need {n} levels, got "
                f"enter={len(self.enter)} exit={len(self.exit)} "
                f"dwell={len(self.dwell_s)}")
        for lvl in range(1, n):
            if self.enter[lvl] <= self.enter[lvl - 1]:
                raise ReproError(
                    "overload enter thresholds must be strictly "
                    f"increasing, got {self.enter}")
            if self.exit[lvl] >= self.enter[lvl]:
                raise ReproError(
                    f"overload exit[{lvl}]={self.exit[lvl]} must sit "
                    f"below enter[{lvl}]={self.enter[lvl]} (the "
                    f"hysteresis band)")
        if self.interval_s <= 0 or self.dwell_up_s < 0:
            raise ReproError(
                f"overload interval must be positive and dwell_up "
                f"non-negative, got interval={self.interval_s} "
                f"dwell_up={self.dwell_up_s}")


@dataclass
class OverloadSignals:
    """One sample of every pressure signal the monitor reads.

    Attributes:
        occupancy: admitted requests running or queued right now.
        capacity: the admission bound (``max_active + max_queued``).
        queue_depth: the window's deepest recent occupancy -- a
            latched saturation marker that catches floods shorter
            than the sampling interval; scaled to 0.9 in the score
            so it can drive brownout but never prioritized shed.
        p99_s: sliding-window p99 request latency (None = no
            requests in the window).
        loop_lag_s: how late the monitor's periodic tick fired -- a
            direct measure of event-loop starvation.
        rss_mb: process resident set size (None = unknown platform).
        wal_backlog: accepted-but-unfinished idempotency keys.
    """

    occupancy: int = 0
    capacity: int = 1
    queue_depth: int = 0
    p99_s: float | None = None
    loop_lag_s: float = 0.0
    rss_mb: float | None = None
    wal_backlog: int = 0

    def to_dict(self) -> dict:
        return {
            "occupancy": self.occupancy,
            "capacity": self.capacity,
            "queue_depth": self.queue_depth,
            "p99_s": self.p99_s,
            "loop_lag_s": round(self.loop_lag_s, 6),
            "rss_mb": (round(self.rss_mb, 3)
                       if self.rss_mb is not None else None),
            "wal_backlog": self.wal_backlog,
        }


def pressure_score(signals: OverloadSignals,
                   config: OverloadConfig) -> tuple[float, str]:
    """Fold one signal sample into ``(score, dominant_signal)``.

    Each signal is normalised against its budget (1.0 = at budget);
    the score is the max, so one saturated signal is enough to climb
    and the dominant signal names itself in every transition event.
    Ties break alphabetically for determinism.
    """
    capacity = max(1, signals.capacity)
    parts: dict[str, float] = {
        "occupancy": signals.occupancy / capacity,
        # A latched saturation marker (the window's recent max
        # occupancy): a flood shorter than the sampling interval
        # still stamps it, so short bursts reliably reach brownout
        # (0.9 >= enter[2]).  Scaled to 0.9 so the latch alone can
        # never drive prioritized shed or emergency -- L3+ takes a
        # *live* signal (occupancy at bound, p99, RSS, lag,
        # backlog).  It decays with its short window horizon, which
        # bounds how long a past burst can hold the ladder up.
        "queue-depth": 0.9 * signals.queue_depth / capacity,
        "loop-lag": signals.loop_lag_s / config.lag_budget_s,
        "wal-backlog": signals.wal_backlog
        / max(1, config.backlog_budget),
    }
    if signals.p99_s is not None:
        parts["p99"] = signals.p99_s / config.p99_budget_s
    if signals.rss_mb is not None \
            and config.rss_budget_mb is not None:
        parts["rss"] = signals.rss_mb / config.rss_budget_mb
    dominant = max(sorted(parts), key=lambda k: parts[k])
    return (parts[dominant], dominant)


@dataclass(frozen=True)
class Transition:
    """One typed ladder transition (what gets counted and traced)."""

    at_s: float
    from_level: int
    to_level: int
    score: float
    dominant: str

    @property
    def direction(self) -> str:
        return "ascend" if self.to_level > self.from_level \
            else "descend"

    def to_dict(self) -> dict:
        return {
            "at_s": round(self.at_s, 6),
            "from_level": self.from_level,
            "from": LEVEL_NAMES[self.from_level],
            "to_level": self.to_level,
            "to": LEVEL_NAMES[self.to_level],
            "direction": self.direction,
            "score": round(self.score, 4),
            "dominant": self.dominant,
        }


class DegradationLadder:
    """The hysteresis state machine over L0..L4.

    :meth:`observe` is the only mutator: feed it one signal sample
    per monitor tick and it returns the :class:`Transition` it made,
    or None.  Ascents may jump straight to the highest level whose
    enter threshold the score clears (a sudden storm does not climb
    one rung per tick), but must be ``dwell_up_s`` apart; descents
    step one level at a time and only after the current level's
    ``dwell_s`` has elapsed *and* the score has fallen to its exit
    threshold.  With an injectable clock the transition sequence for
    a fixed signal trace is byte-reproducible.
    """

    def __init__(self, config: OverloadConfig | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Callable[[Transition], None]
                 | None = None) -> None:
        self.config = config or OverloadConfig()
        self._clock = clock
        self._on_transition = on_transition
        self.level = L_NORMAL
        self.max_level = L_NORMAL
        self._since = clock()
        self._last_score = 0.0
        self._last_dominant = "occupancy"
        self.transitions_total = 0
        self.ascents_total = 0
        self.descents_total = 0
        self.recent: list[Transition] = []

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    @property
    def score(self) -> float:
        """The most recently observed pressure score."""
        return self._last_score

    @property
    def dominant(self) -> str:
        """The signal that produced the most recent score."""
        return self._last_dominant

    def _move(self, to_level: int, now: float,
              score: float, dominant: str) -> Transition:
        event = Transition(at_s=now, from_level=self.level,
                           to_level=to_level, score=score,
                           dominant=dominant)
        self.level = to_level
        self.max_level = max(self.max_level, to_level)
        self._since = now
        self.transitions_total += 1
        if event.direction == "ascend":
            self.ascents_total += 1
        else:
            self.descents_total += 1
        self.recent.append(event)
        del self.recent[:-RECENT_TRANSITIONS]
        if self._on_transition is not None:
            self._on_transition(event)
        return event

    def observe(self, signals: OverloadSignals) -> Transition | None:
        """Fold one sample in; return the transition made, if any."""
        now = self._clock()
        score, dominant = pressure_score(signals, self.config)
        self._last_score = score
        self._last_dominant = dominant
        cfg = self.config
        target = self.level
        for lvl in range(len(LEVEL_NAMES) - 1, self.level, -1):
            if score >= cfg.enter[lvl]:
                target = lvl
                break
        if target > self.level:
            if now - self._since >= cfg.dwell_up_s:
                return self._move(target, now, score, dominant)
            return None
        if self.level > L_NORMAL and score <= cfg.exit[self.level] \
                and now - self._since >= cfg.dwell_s[self.level]:
            return self._move(self.level - 1, now, score, dominant)
        return None

    def snapshot(self) -> dict:
        """Ladder state for the ``stats``/``health`` endpoints."""
        now = self._clock()
        return {
            "enabled": True,
            "level": self.level,
            "level_name": self.level_name,
            "score": round(self._last_score, 4),
            "dominant": self._last_dominant,
            "since_s": round(now - self._since, 3),
            "max_level": self.max_level,
            "transitions_total": self.transitions_total,
            "ascents_total": self.ascents_total,
            "descents_total": self.descents_total,
            "recent_transitions": [t.to_dict() for t in self.recent],
        }


def process_rss_mb() -> float | None:
    """Current process resident set size in MiB, or None.

    Reads ``/proc/self/statm`` (present on Linux; the only platform
    the daemon targets).  Falls back to ``resource.getrusage``'s
    *peak* RSS where procfs is absent -- a conservative overestimate
    is the right failure mode for an overload sentinel.  Returns None
    rather than raising when neither source exists.
    """
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource
        return resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except (ImportError, OSError, ValueError):  # pragma: no cover
        return None


class OverloadMonitor:
    """Samples pressure signals and drives the ladder.

    The monitor is synchronous and host-agnostic: the server's async
    loop (or a test) calls :meth:`tick` once per ``interval_s``.  The
    event-loop-lag signal is measured *here* -- each tick records when
    the next one is due, and the overshoot on arrival is exactly how
    starved the loop was.

    Args:
        ladder: the state machine to feed.
        sample: callable returning a fresh :class:`OverloadSignals`
            (``loop_lag_s`` and ``rss_mb`` may be left at their
            defaults; the monitor fills them in).
        interval_s: expected tick period (lag baseline).
        clock: injectable monotonic clock.
        rss: RSS sampler (injectable; None disables the signal).
    """

    def __init__(self, ladder: DegradationLadder,
                 sample: Callable[[], OverloadSignals],
                 interval_s: float = 0.25,
                 clock: Callable[[], float] = time.monotonic,
                 rss: Callable[[], float | None]
                 | None = process_rss_mb) -> None:
        self.ladder = ladder
        self._sample = sample
        self.interval_s = interval_s
        self._clock = clock
        self._rss = rss
        self._due: float | None = None
        self.last_signals = OverloadSignals()
        self.ticks = 0

    def tick(self) -> Transition | None:
        """One sampling round; returns the ladder transition, if any."""
        now = self._clock()
        lag = max(0.0, now - self._due) if self._due is not None \
            else 0.0
        self._due = now + self.interval_s
        signals = self._sample()
        signals.loop_lag_s = lag
        if signals.rss_mb is None and self._rss is not None:
            signals.rss_mb = self._rss()
        self.last_signals = signals
        self.ticks += 1
        return self.ladder.observe(signals)

    def snapshot(self) -> dict:
        """Monitor state: ladder snapshot plus the latest signals."""
        doc = self.ladder.snapshot()
        doc["signals"] = self.last_signals.to_dict()
        doc["ticks"] = self.ticks
        doc["interval_s"] = self.interval_s
        return doc


def is_priority_tenant(tenant: str,
                       priority_tenants: frozenset[str]
                       | tuple[str, ...] = ()) -> bool:
    """Tenant priority classification (see
    :attr:`OverloadConfig.priority_tenants`)."""
    return tenant in priority_tenants \
        or tenant.startswith(PRIORITY_TENANT_PREFIX)
