"""Dependence types shared by the DAG and machine subpackages."""

from __future__ import annotations

import enum


class DepType(enum.Enum):
    """Data dependence classification (paper section 1).

    RAW (read-after-write) is the true dependence; WAR (write-after-
    read) is the anti-dependence; WAW (write-after-write) is the
    output dependence.
    """

    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
