"""End-to-end scheduling pipeline: the paper's section 6 experiment.

The section 6 comparison pairs each DAG construction algorithm "with a
simple forward scheduling pass", using three backward static
heuristics: *max path to leaf*, *max delay to leaf*, and *max delay to
child*.  Each approach makes two passes over the instructions (DAG
construction + intermediate heuristic pass) and then one scheduling
pass over the DAG -- :func:`run_pipeline` reproduces exactly that
structure per basic block, accumulating the structural statistics of
Tables 4 and 5 and the construction work counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Type

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.base import BuildStats, DagBuilder
from repro.dag.stats import ProgramDagStats
from repro.errors import ReproError
from repro.heuristics.passes import backward_pass, backward_pass_levels
from repro.machine.model import MachineModel
from repro.obs.metrics import (
    MetricsRegistry,
    record_block_structure,
    record_build,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.scheduling.list_scheduler import schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate, verify_order
from repro.verify.checker import (
    BlockFailure,
    degraded_timing,
    verify_schedule,
)

#: The section 6 priority: max path to leaf, then max delay to leaf,
#: then max delay to child (an ``a``-class value maintained by add_arc).
SECTION6_PRIORITY = winnowing(
    "max_path_to_leaf",
    "max_delay_to_leaf",
    "max_delay_to_child",
)


@dataclass
class PipelineResult:
    """Aggregated outcome of scheduling a whole benchmark.

    Attributes:
        approach: the builder's display name.
        n_blocks: basic blocks processed.
        n_instructions: total instructions scheduled.
        build_stats: summed construction work counters.
        dag_stats: Table 4/5 structural statistics.
        total_makespan: summed per-block makespans of the schedules
            (degraded blocks charged at their original-order makespan).
        total_original_makespan: summed makespans of original orders.
        degraded_makespan: the portion of both totals contributed by
            failed blocks (charged identically to both sides, since a
            degraded block runs in its original order).
        unique_memory_exprs_max: largest per-block unique-memory-
            expression count (Table 3 column).
        failures: per-block failure records for blocks that fell back
            to their original order (empty on a clean run).
    """

    approach: str
    n_blocks: int = 0
    n_instructions: int = 0
    build_stats: BuildStats = field(default_factory=BuildStats)
    dag_stats: ProgramDagStats = field(default_factory=ProgramDagStats)
    total_makespan: int = 0
    total_original_makespan: int = 0
    degraded_makespan: int = 0
    unique_memory_exprs_max: int = 0
    failures: list[BlockFailure] = field(default_factory=list)

    @property
    def degraded_fraction(self) -> float:
        """Fraction of processed blocks that fell back to original
        order (0.0 on a clean or empty run)."""
        if self.n_blocks == 0:
            return 0.0
        return len(self.failures) / self.n_blocks

    @property
    def speedup(self) -> float:
        """Original over scheduled makespan, over the blocks that were
        actually scheduled.

        Degraded blocks are excluded from the ratio: they charge their
        original-order makespan to *both* totals, so leaving them in
        would drag the ratio toward 1.0 and mask real degradation --
        check :attr:`degraded_fraction` alongside this number.  When
        every block failed (or nothing was scheduled) there is no
        schedule to rate and the speedup is explicitly 1.0.
        """
        scheduled = self.total_makespan - self.degraded_makespan
        if scheduled <= 0:
            return 1.0
        return ((self.total_original_makespan - self.degraded_makespan)
                / scheduled)


def run_pipeline(blocks: list[BasicBlock], machine: MachineModel,
                 builder_factory: Callable[[], DagBuilder],
                 priority: Callable | None = None,
                 heuristic_driver: str = "reverse_walk",
                 schedule: bool = True,
                 verify: bool = False,
                 strict: bool = False,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None
                 ) -> PipelineResult:
    """Run construction + heuristic pass + forward scheduling per block.

    Args:
        blocks: the benchmark's basic blocks (window already applied).
        machine: timing model.
        builder_factory: zero-argument callable producing a fresh
            builder (builders are stateful per block).
        priority: scheduling priority; defaults to the section 6
            three-heuristic winnowing.
        heuristic_driver: "reverse_walk" or "levels" -- the two
            intermediate-pass drivers of section 4.
        schedule: when False, stop after construction + heuristic pass
            (for construction-only measurements).
        verify: independently verify every block's schedule with
            :func:`repro.verify.checker.verify_schedule` (re-deriving
            dependences with the compare-against-all reference).
        strict: re-raise the first per-block
            :class:`~repro.errors.ReproError` instead of degrading.
        tracer: optional :class:`~repro.obs.trace.Tracer`; records a
            ``pipeline`` span with per-block spans (build/heuristics/
            schedule/verify stages) and degradation events.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            records block structure (Table 3) and per-builder work
            counters (Tables 4/5).

    Returns:
        Aggregated statistics for the whole benchmark.  When
        ``strict`` is False (the default), a block whose construction,
        scheduling, or verification fails is charged its *original*
        order's makespan on both sides of the speedup ratio and is
        recorded in ``result.failures``; working blocks are unaffected.
    """
    if priority is None:
        priority = SECTION6_PRIORITY
    tracer = tracer or NULL_TRACER
    driver = (backward_pass_levels if heuristic_driver == "levels"
              else backward_pass)
    builder_name = builder_factory().name
    result = PipelineResult(approach=builder_name)
    with tracer.span("pipeline", approach=builder_name):
        for block in blocks:
            if not block.instructions:
                continue
            stage = "build"
            with tracer.span("block", index=block.index,
                             label=block.label,
                             size=len(block.instructions)) as block_attrs:
                try:
                    builder = builder_factory()
                    with tracer.span("build", builder=builder_name):
                        outcome = builder.build(block)
                    dag = outcome.dag
                    # Intermediate pass (the second pass over the
                    # instructions).
                    with tracer.span("heuristics",
                                     driver=heuristic_driver):
                        driver(dag, require_est=False)
                    makespan = original_makespan = 0
                    if schedule:
                        stage = "schedule"
                        with tracer.span("schedule"):
                            sched = schedule_forward(dag, machine,
                                                     priority)
                            verify_order(sched.order, dag)
                            original = simulate(list(dag.real_nodes()),
                                                machine)
                        makespan = sched.timing.makespan
                        original_makespan = original.makespan
                        if verify:
                            stage = "verify"
                            verify_schedule(
                                block, sched.order, machine,
                                claimed_issue_times=sched.timing
                                .issue_times,
                                approach=builder_name, tracer=tracer,
                                metrics=metrics).raise_if_failed()
                except ReproError as exc:
                    if strict:
                        raise
                    tracer.event("degraded", index=block.index,
                                 stage=stage)
                    block_attrs["degraded"] = True
                    result.failures.append(BlockFailure(
                        block.index, block.label, stage, str(exc)))
                    result.n_blocks += 1
                    result.n_instructions += len(block.instructions)
                    if schedule:
                        fallback = degraded_timing(block, machine)
                        result.total_makespan += fallback
                        result.total_original_makespan += fallback
                        result.degraded_makespan += fallback
                    continue
                block_attrs["degraded"] = False
            result.build_stats.merge(outcome.stats)
            result.dag_stats.add_dag(dag)
            result.n_blocks += 1
            result.n_instructions += len(block.instructions)
            n_mem_exprs = len(block.unique_memory_exprs())
            if metrics is not None:
                rmap = getattr(builder, "reachability", None)
                record_build(
                    metrics, builder_name, outcome.stats,
                    rmap.words_touched if rmap is not None else 0)
                record_block_structure(metrics,
                                       len(block.instructions),
                                       n_mem_exprs)
            if n_mem_exprs > result.unique_memory_exprs_max:
                result.unique_memory_exprs_max = n_mem_exprs
            if schedule:
                result.total_makespan += makespan
                result.total_original_makespan += original_makespan
    return result
