"""Structural fingerprints of the paper's nine benchmarks (Table 3).

Each :class:`WorkloadProfile` captures the columns of Table 3 plus two
behavioural knobs the paper's section 6 discussion motivates:

* ``fp_fraction`` -- FP-heavy scientific codes (linpack/lloops/
  tomcatv/nasa7/fpppp) vs integer system codes (grep/regex/dfa/cccp);
* ``mem_at_end`` -- fpppp's "placement of symbolic memory address
  expressions more toward the end of the large basic block", the
  mechanism behind the forward/backward table-building asymmetry.

Paper values for reference (Table 3):

===========  ========  =======  ====  ======  =======  =====
benchmark    #blocks   #insts   max   avg     mem max  mem avg
===========  ========  =======  ====  ======  =======  =====
grep         730       1739     34    2.38    5        0.32
regex        873       2417     52    2.77    9        0.31
dfa          1623      4760     45    2.93    13       0.67
cccp         3480      8831     36    2.54    10       0.35
linpack      390       3391     145   8.69    62       2.58
lloops       263       3753     124   14.27   40       4.37
tomcatv      112       1928     326   17.21   68       5.24
nasa7        756       10654    284   14.09   60       4.23
fpppp        662       25545    11750 38.59   324      4.76
===========  ========  =======  ====  ======  =======  =====

The fpppp-1000/2000/4000 rows of Table 3 come from applying
:func:`repro.cfg.windows.apply_window` to the fpppp profile, exactly
as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadProfile:
    """One benchmark's structural fingerprint.

    Attributes:
        name: benchmark name.
        n_blocks: number of basic blocks.
        total_insts: total instruction count.
        max_block: largest basic block size.
        giant_blocks: explicit sizes of outlier blocks (always includes
            ``max_block``); the rest of the size distribution is drawn
            around the residual average.
        typical_cap: clip for non-giant block sizes.
        mem_max_per_block: Table 3 "unique memory exprs / block, max".
        mem_avg_per_block: Table 3 "unique memory exprs / block, avg".
        fp_fraction: fraction of non-memory instructions that are FP.
        mem_fraction: fraction of instructions that are loads/stores.
        mem_at_end: concentrate memory references near block ends
            (the fpppp quirk).
        seed: base RNG seed; generation is fully deterministic.
    """

    name: str
    n_blocks: int
    total_insts: int
    max_block: int
    giant_blocks: tuple[int, ...]
    typical_cap: int
    mem_max_per_block: int
    mem_avg_per_block: float
    fp_fraction: float
    mem_fraction: float = 0.3
    mem_at_end: bool = False
    seed: int = 1991

    def __post_init__(self) -> None:
        if self.n_blocks <= 0 or self.total_insts <= 0:
            raise WorkloadError(f"{self.name}: empty profile")
        if not self.giant_blocks or max(self.giant_blocks) != self.max_block:
            raise WorkloadError(
                f"{self.name}: giant_blocks must include max_block")
        if sum(self.giant_blocks) > self.total_insts:
            raise WorkloadError(
                f"{self.name}: giant blocks exceed total instructions")
        if len(self.giant_blocks) > self.n_blocks:
            raise WorkloadError(f"{self.name}: more giants than blocks")

    @property
    def avg_block(self) -> float:
        """Average instructions per block."""
        return self.total_insts / self.n_blocks


def _profile(name: str, n_blocks: int, total: int, max_block: int,
             mem_max: int, mem_avg: float, fp: float,
             giants: tuple[int, ...] | None = None,
             typical_cap: int | None = None,
             mem_at_end: bool = False) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        n_blocks=n_blocks,
        total_insts=total,
        max_block=max_block,
        giant_blocks=giants if giants is not None else (max_block,),
        typical_cap=typical_cap if typical_cap is not None
        else max(4, max_block // 3),
        mem_max_per_block=mem_max,
        mem_avg_per_block=mem_avg,
        fp_fraction=fp,
    mem_at_end=mem_at_end,
    )


PROFILES: dict[str, WorkloadProfile] = {
    p.name: p for p in (
        _profile("grep", 730, 1739, 34, 5, 0.32, fp=0.0),
        _profile("regex", 873, 2417, 52, 9, 0.31, fp=0.0),
        _profile("dfa", 1623, 4760, 45, 13, 0.67, fp=0.0),
        _profile("cccp", 3480, 8831, 36, 10, 0.35, fp=0.0),
        _profile("linpack", 390, 3391, 145, 62, 2.58, fp=0.55,
                 giants=(145, 120, 96), typical_cap=60),
        _profile("lloops", 263, 3753, 124, 40, 4.37, fp=0.6,
                 giants=(124, 110, 90, 80), typical_cap=70),
        _profile("tomcatv", 112, 1928, 326, 68, 5.24, fp=0.65,
                 giants=(326, 280, 200), typical_cap=90),
        _profile("nasa7", 756, 10654, 284, 60, 4.23, fp=0.6,
                 giants=(284, 260, 240, 200, 180), typical_cap=80),
        _profile("fpppp", 662, 25545, 11750, 324, 4.76, fp=0.7,
                 giants=(11750, 2400, 1100), typical_cap=60,
                 mem_at_end=True),
    )
}

#: Table 3/4/5 row order.
TABLE_ORDER: tuple[str, ...] = (
    "grep", "regex", "dfa", "cccp", "linpack", "lloops", "tomcatv",
    "nasa7", "fpppp",
)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by name.

    Raises:
        WorkloadError: for unknown benchmark names.
    """
    profile = PROFILES.get(name)
    if profile is None:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {sorted(PROFILES)}")
    return profile


def scaled_profile(name: str, factor: float,
                   keep_giants: bool = True) -> WorkloadProfile:
    """A reduced-size variant of a profile for quick benchmark runs.

    Scales the block count and total size by ``factor`` while (by
    default) preserving the giant-block sizes that drive the paper's
    asymptotic story -- an ``n**2`` blow-up needs the big blocks, not
    the many small ones.

    Args:
        name: base profile name.
        factor: in (0, 1]; 1 returns the profile unchanged.
        keep_giants: keep outlier block sizes unscaled.

    Raises:
        WorkloadError: if ``factor`` is out of range.
    """
    if not 0 < factor <= 1:
        raise WorkloadError(f"scale factor must be in (0, 1], got {factor}")
    base = get_profile(name)
    if factor == 1:
        return base
    giants = (base.giant_blocks if keep_giants
              else tuple(max(1, int(g * factor)) for g in base.giant_blocks))
    n_blocks = max(len(giants) + 1, int(base.n_blocks * factor))
    floor = sum(giants) + (n_blocks - len(giants))
    total = max(floor, int(base.total_insts * factor))
    return replace(
        base,
        name=f"{base.name}@{factor:g}",
        n_blocks=n_blocks,
        total_insts=total,
        max_block=max(giants),
        giant_blocks=giants,
    )
