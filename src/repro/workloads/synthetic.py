"""Deterministic synthetic instruction streams matching a profile.

The generator emits SPARC-like basic blocks whose *structure* -- block
sizes, def/use chain density, unique memory expressions per block,
instruction-class mix, block terminators with delay slots -- matches a
:class:`~repro.workloads.profiles.WorkloadProfile`.  Everything is
seeded, so two calls with the same profile produce identical programs.

Conventions matching the paper's measurement setup:

* blocks end in conditional branches, calls, returns, or SAVE/RESTORE;
* delayed control transfers push their delay-slot instruction into the
  *following* block (where Table 3 counts it);
* the fpppp profile concentrates memory references toward the end of
  its giant block ("placement of symbolic memory address expressions
  more toward the end of the large basic block", section 6).
"""

from __future__ import annotations

import random

from repro.asm.program import Program
from repro.cfg.basic_block import BasicBlock
from repro.errors import WorkloadError
from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import lookup_opcode
from repro.isa.operands import (
    ImmOperand,
    LabelOperand,
    MemOperand,
    Operand,
    RegOperand,
)
from repro.isa.registers import parse_register
from repro.workloads.profiles import WorkloadProfile

_POINTER_REGS = ("%l0", "%l1", "%i0", "%i1", "%o0")
# Pointer bases are never ALU destinations: a base-address definition
# stays live across the whole block, parenting every reference through
# it (the paper's high max-children counts come from exactly this).
_INT_REGS = tuple(r for r in (
    tuple(f"%o{i}" for i in range(6))
    + tuple(f"%l{i}" for i in range(8))
    + tuple(f"%i{i}" for i in range(6)))
    if r not in _POINTER_REGS)
_FP_EVEN = tuple(f"%f{i}" for i in range(0, 32, 2))
_INT_OPS = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra")
_FP_OPS = ("faddd", "fsubd", "fmuld", "faddd", "fsubd", "fmuld", "fdivd")


def _block_sizes(profile: WorkloadProfile, rng: random.Random) -> list[int]:
    """Block sizes with exact count, sum, and maximum.

    The giant blocks are placed explicitly; the rest are drawn from an
    exponential around the residual mean (compiled code is mostly tiny
    blocks with a long tail), then nudged to hit the exact total.
    """
    giants = list(profile.giant_blocks)
    n_rest = profile.n_blocks - len(giants)
    rest_total = profile.total_insts - sum(giants)
    if n_rest == 0:
        return giants
    mean = rest_total / n_rest
    cap = max(2, min(profile.typical_cap, profile.max_block))
    sizes = [max(1, min(cap, round(rng.expovariate(1.0 / mean) + 0.5)))
             for _ in range(n_rest)]
    # Nudge to the exact total.
    delta = rest_total - sum(sizes)
    guard = 0
    while delta != 0 and guard < 10 * profile.total_insts:
        i = rng.randrange(n_rest)
        if delta > 0 and sizes[i] < cap:
            sizes[i] += 1
            delta -= 1
        elif delta < 0 and sizes[i] > 1:
            sizes[i] -= 1
            delta += 1
        guard += 1
    if delta != 0:
        raise WorkloadError(
            f"{profile.name}: cannot reach total {profile.total_insts} "
            f"with cap {cap}")
    # Interleave the giants at deterministic positions.
    out = sizes
    for k, g in enumerate(giants):
        out.insert((k * 97) % (len(out) + 1), g)
    return out


def _mem_pool(profile: WorkloadProfile, size: int, block_seed: str,
              rng: random.Random) -> list[MemExpr]:
    """The block's distinct symbolic memory expressions."""
    if size < 1:
        return []
    scale = size / max(profile.avg_block, 1.0)
    # Expectation-exact integerization (calibrated against the Table 3
    # averages; the 1.1 factor compensates for clipping losses on
    # small blocks).
    lam = profile.mem_avg_per_block * scale * 1.1
    target = int(lam) + (1 if rng.random() < lam - int(lam) else 0)
    target = max(0, min(target, profile.mem_max_per_block, size))
    if size == profile.max_block:
        # The biggest block carries the Table 3 per-block maximum.
        target = min(profile.mem_max_per_block, max(1, size - 2))
    pool: list[MemExpr] = []
    for k in range(target):
        shape = rng.random()
        if shape < 0.5:
            pool.append(MemExpr(base="%i6", offset=-4 * (k + 1)))
        elif shape < 0.85:
            base = rng.choice(_POINTER_REGS)
            pool.append(MemExpr(base=base, offset=4 * k))
        else:
            pool.append(MemExpr(symbol=f"g{block_seed}_{k}"))
    return pool


class _BlockBuilder:
    """Generates one block's instruction bodies with realistic chains."""

    def __init__(self, profile: WorkloadProfile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self.defined_int: list[str] = []
        self.defined_fp: list[str] = []
        self._int_cursor = 0
        self._fp_cursor = 0
        # Reuse-locality window for memory expressions.
        self.recent: list[MemExpr] = []
        self.recent_cap = max(4, profile.mem_max_per_block // 4)

    def _next_int_dest(self) -> str:
        reg = _INT_REGS[self._int_cursor % len(_INT_REGS)]
        self._int_cursor += 1
        self.defined_int.append(reg)
        if len(self.defined_int) > 8:
            self.defined_int.pop(0)
        return reg

    def _next_fp_dest(self) -> str:
        reg = _FP_EVEN[self._fp_cursor % len(_FP_EVEN)]
        self._fp_cursor += 1
        self.defined_fp.append(reg)
        if len(self.defined_fp) > 6:
            self.defined_fp.pop(0)
        return reg

    def _int_source(self) -> str:
        if self.defined_int and self.rng.random() < 0.75:
            return self.rng.choice(self.defined_int)
        return self.rng.choice(_INT_REGS)

    def _fp_source(self) -> str:
        if self.defined_fp and self.rng.random() < 0.75:
            return self.rng.choice(self.defined_fp)
        return self.rng.choice(_FP_EVEN)

    def _make(self, mnemonic: str, *operands: Operand) -> Instruction:
        # Index is patched by the caller.
        return Instruction(0, lookup_opcode(mnemonic), tuple(operands))

    def alu(self) -> Instruction:
        rng = self.rng
        if rng.random() < 0.08:
            return self._make("sethi", ImmOperand(rng.randrange(1 << 20)),
                              RegOperand(parse_register(self._next_int_dest())))
        op = rng.choice(_INT_OPS)
        src1 = RegOperand(parse_register(self._int_source()))
        second: Operand
        if rng.random() < 0.4:
            second = ImmOperand(rng.randrange(1, 128))
        else:
            second = RegOperand(parse_register(self._int_source()))
        dest = RegOperand(parse_register(self._next_int_dest()))
        return self._make(op, src1, second, dest)

    def fp(self) -> Instruction:
        rng = self.rng
        weights_pick = rng.random()
        op = _FP_OPS[-1] if weights_pick < 0.05 \
            else rng.choice(_FP_OPS[:-1])
        src1 = RegOperand(parse_register(self._fp_source()))
        src2 = RegOperand(parse_register(self._fp_source()))
        dest = RegOperand(parse_register(self._next_fp_dest()))
        return self._make(op, src1, src2, dest)

    def load(self, expr: MemExpr, fp: bool) -> Instruction:
        mem = MemOperand(expr)
        if fp:
            dest = RegOperand(parse_register(self._next_fp_dest()))
            return self._make("ldd", mem, dest)
        dest = RegOperand(parse_register(self._next_int_dest()))
        return self._make("ld", mem, dest)

    def store(self, expr: MemExpr, fp: bool) -> Instruction:
        mem = MemOperand(expr)
        if fp and self.defined_fp:
            src = RegOperand(parse_register(self.rng.choice(self.defined_fp)))
            return self._make("std", src, mem)
        src = RegOperand(parse_register(self._int_source()))
        return self._make("st", src, mem)

    def body_instruction(self, position: int, body_len: int,
                         pool: list[MemExpr],
                         untouched: list[MemExpr]) -> Instruction:
        """One body instruction, honoring the memory/FP mix.

        Every expression in the block's pool is guaranteed to be
        referenced: once the remaining body positions are about to run
        out, untouched expressions are emitted unconditionally (this
        also realizes the fpppp-style end-of-block concentration).
        """
        rng = self.rng
        profile = self.profile
        positions_left = body_len - position
        force_mem = bool(untouched) and positions_left <= len(untouched)
        mem_p = profile.mem_fraction
        if profile.mem_at_end and body_len >= 8:
            mem_p *= 0.35 if position < 0.6 * body_len else 2.0
        if pool and (force_mem or rng.random() < mem_p):
            # First references to pool expressions are paced across the
            # block; repeat references favor recently used expressions
            # (real code has strong reuse locality -- this is what
            # bounds the per-window distinct-expression counts the
            # paper reports for fpppp-1000/2000/4000).
            p_new = min(1.0, 1.5 * len(untouched) / max(1, positions_left))
            if untouched and (force_mem or rng.random() < p_new):
                expr = untouched.pop()
            elif self.recent and rng.random() < 0.85:
                expr = rng.choice(self.recent)
            else:
                expr = rng.choice(pool)
            if expr not in self.recent:
                self.recent.append(expr)
                if len(self.recent) > self.recent_cap:
                    self.recent.pop(0)
            fp = profile.fp_fraction > 0 and rng.random() < profile.fp_fraction
            if rng.random() < 0.6:
                return self.load(expr, fp)
            return self.store(expr, fp)
        if rng.random() < profile.fp_fraction:
            return self.fp()
        return self.alu()


def _terminator(rng: random.Random, profile: WorkloadProfile,
                n_blocks: int, block_index: int,
                builder: _BlockBuilder) -> tuple[list[Instruction], bool]:
    """Block-ending instructions; returns (instructions, delayed?)."""
    style = rng.random()
    if block_index == n_blocks - 1:
        return [builder._make("retl")], True
    if style < 0.55:
        cmp = builder._make("cmp",
                            RegOperand(parse_register(builder._int_source())),
                            ImmOperand(rng.randrange(1, 64)))
        cond = rng.choice(("be", "bne", "bl", "ble", "bg", "bge"))
        target = rng.randrange(n_blocks)
        branch = builder._make(cond, LabelOperand(f"L{target}"))
        return [cmp, branch], True
    if style < 0.65:
        target = rng.randrange(n_blocks)
        return [builder._make("ba", LabelOperand(f"L{target}"))], True
    if style < 0.73 and profile.fp_fraction == 0:
        return [builder._make("call", LabelOperand("helper"))], True
    if style < 0.78 and profile.fp_fraction == 0:
        op = "save" if rng.random() < 0.5 else "restore"
        sp = RegOperand(parse_register("%sp"))
        return [builder._make(op, sp, ImmOperand(-96), sp)], False
    return [], False  # fall through to the next block's label


def generate_blocks(profile: WorkloadProfile,
                    seed: int | None = None) -> list[BasicBlock]:
    """Generate the benchmark's basic blocks directly.

    This is the fast path the benchmarks use (no text round trip).
    Instruction indices are global and consecutive, exactly as
    :func:`repro.cfg.partition.partition_blocks` would number them.
    """
    base_seed = profile.seed if seed is None else seed
    master = random.Random(f"{profile.name}:{base_seed}:sizes")
    sizes = _block_sizes(profile, master)
    blocks: list[BasicBlock] = []
    next_index = 0
    pending_delay_slot = False
    for block_index, size in enumerate(sizes):
        rng = random.Random(f"{profile.name}:{base_seed}:{block_index}")
        builder = _BlockBuilder(profile, rng)
        instrs: list[Instruction] = []
        remaining = size
        if pending_delay_slot and remaining > 0:
            # The previous block's delayed transfer: its slot
            # instruction opens this block (paper's counting rule).
            slot = builder.alu() if rng.random() < 0.6 \
                else builder._make("nop")
            instrs.append(slot)
            remaining -= 1
        tail: list[Instruction] = []
        delayed = False
        if remaining >= 3:
            tail, delayed = _terminator(rng, profile, len(sizes),
                                        block_index, builder)
            remaining -= len(tail)
        pool = _mem_pool(profile, size, f"{block_index}", rng)
        untouched = list(pool)
        rng.shuffle(untouched)
        # Pointer bases referenced by the pool are defined once at the
        # top of large blocks -- the high-fanout nodes behind the
        # paper's large max-children counts (a base-address definition
        # parents every memory reference through it).
        if remaining >= 12:
            bases = sorted({e.base for e in pool
                            if e.base is not None and e.base != "%i6"})
            for base in bases:
                if remaining <= len(pool):
                    break
                instrs.append(builder._make(
                    "sethi", ImmOperand(rng.randrange(1 << 20)),
                    RegOperand(parse_register(base))))
                remaining -= 1
        for position in range(remaining):
            instrs.append(builder.body_instruction(position, remaining,
                                                   pool, untouched))
        instrs.extend(tail)
        pending_delay_slot = delayed
        numbered = [ins.with_index(next_index + k)
                    for k, ins in enumerate(instrs)]
        next_index += len(numbered)
        blocks.append(BasicBlock(block_index, numbered, label=None))
    return blocks


def generate_program(profile: WorkloadProfile,
                     seed: int | None = None) -> Program:
    """Generate the benchmark as a parseable :class:`Program`.

    Every block start carries a label ``L<k>`` so that
    :func:`partition_blocks` reproduces the generator's block
    boundaries; used by round-trip tests and the text-based examples.
    """
    blocks = generate_blocks(profile, seed)
    program = Program(profile.name)
    for block in blocks:
        start = len(program.instructions)
        program.add_label(f"L{block.index}", start)
        for k, ins in enumerate(block.instructions):
            label = f"L{block.index}" if k == 0 else None
            program.instructions.append(
                Instruction(len(program.instructions), ins.opcode,
                            ins.operands, label=label,
                            annulled=ins.annulled))
    return program
