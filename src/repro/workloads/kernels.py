"""Hand-written assembly kernels for examples and tests.

Small, human-readable SPARC-like kernels in the spirit of the paper's
scientific benchmarks: a daxpy inner loop (Linpack's core), a Livermore
hydro-fragment step, a dot product, and the paper's own Figure 1
block.  All are single translation units parseable by
:func:`repro.asm.parse_asm`.
"""

from __future__ import annotations

from repro.errors import WorkloadError

FIGURE1 = """\
! Paper Figure 1: the transitive RAW arc carries 20 cycles of timing
! information bridging a WAR(1) + RAW(4) path.
    fdivd %f0, %f2, %f4     ! 1: f4 = f0/f2   (20 cycles)
    faddd %f6, %f8, %f0     ! 2: f0 = f6+f8   (4 cycles, WAR on %f0)
    faddd %f0, %f4, %f10    ! 3: f10 = f0+f4  (RAW from 1 and 2)
"""

DAXPY = """\
! daxpy inner-loop body: y[i] = y[i] + a*x[i], unrolled by two.
daxpy:
    ldd [%i0], %f0          ! x[i]
    ldd [%i1], %f2          ! y[i]
    fmuld %f0, %f30, %f4    ! a*x[i]
    faddd %f2, %f4, %f6
    std %f6, [%i1]
    ldd [%i0+8], %f8        ! x[i+1]
    ldd [%i1+8], %f10       ! y[i+1]
    fmuld %f8, %f30, %f12
    faddd %f10, %f12, %f14
    std %f14, [%i1+8]
    add %i0, 16, %i0
    add %i1, 16, %i1
    subcc %i2, 2, %i2
    bg daxpy
    nop
"""

LIVERMORE1 = """\
! Livermore kernel 1 (hydro fragment): x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
lk1:
    ldd [%i3+80], %f0       ! z[k+10]
    ldd [%i3+88], %f2       ! z[k+11]
    fmuld %f0, %f26, %f4    ! r*z[k+10]
    fmuld %f2, %f28, %f6    ! t*z[k+11]
    faddd %f4, %f6, %f8
    ldd [%i2], %f10         ! y[k]
    fmuld %f10, %f8, %f12
    faddd %f12, %f30, %f14  ! + q
    std %f14, [%i1]
    add %i1, 8, %i1
    add %i2, 8, %i2
    add %i3, 8, %i3
    subcc %i4, 1, %i4
    bg lk1
    nop
"""

DOT_PRODUCT = """\
! double-precision dot product step with running sum in %f30.
dot:
    ldd [%o0], %f0
    ldd [%o1], %f2
    fmuld %f0, %f2, %f4
    faddd %f30, %f4, %f30
    add %o0, 8, %o0
    add %o1, 8, %o1
    subcc %o2, 1, %o2
    bg dot
    nop
"""

MEMORY_DISAMBIGUATION = """\
! Exercises the three aliasing policies: same-base/different-offset
! stack slots, an unknown pointer, and a static symbol.
    ld [%fp-4], %o0
    ld [%fp-8], %o1
    add %o0, %o1, %o2
    st %o2, [%fp-4]
    ld [%l0], %o3           ! unknown pointer
    st %o3, [counter]       ! static storage
    ld [%fp-12], %o4
    add %o3, %o4, %o5
    st %o5, [%l0+4]
"""

SUPERSCALAR_MIX = """\
! Interleavable integer and FP work for the alternate-type heuristic.
    ld [%fp-8], %o0
    ldd [%fp-16], %f0
    add %o0, 4, %o1
    faddd %f0, %f2, %f4
    sub %o1, 2, %o2
    fmuld %f4, %f6, %f8
    sll %o2, 3, %o3
    fsubd %f8, %f0, %f10
    st %o3, [%fp-20]
    std %f10, [%fp-28]
"""

KERNELS: dict[str, str] = {
    "figure1": FIGURE1,
    "daxpy": DAXPY,
    "livermore1": LIVERMORE1,
    "dot_product": DOT_PRODUCT,
    "memory_disambiguation": MEMORY_DISAMBIGUATION,
    "superscalar_mix": SUPERSCALAR_MIX,
}


def kernel_source(name: str) -> str:
    """The assembly text of a named kernel.

    Raises:
        WorkloadError: for unknown kernel names.
    """
    source = KERNELS.get(name)
    if source is None:
        raise WorkloadError(
            f"unknown kernel {name!r}; known: {sorted(KERNELS)}")
    return source


def straightline_body(name: str) -> list[str]:
    """A kernel's body as pure straight-line code.

    Comment, label, branch, and nop lines are dropped so the remainder
    can be concatenated into one long branch-free block -- the shape
    benchmark drivers need when they repeat a kernel many times and
    window the result into identical blocks (the repeated-loop-body
    population the section 6 experiment schedules).

    Raises:
        WorkloadError: for unknown kernel names.
    """
    body: list[str] = []
    for line in kernel_source(name).splitlines():
        text = line.split("!", 1)[0].strip()
        if not text or text.endswith(":"):
            continue
        mnemonic = text.split()[0].rstrip(",a")
        if mnemonic in ("nop", "call", "jmpl", "ret") \
                or mnemonic.startswith("b") and mnemonic != "btst" \
                or mnemonic.startswith("fb"):
            continue
        body.append("    " + text)
    return body


def straightline_source(name: str, copies: int = 1) -> str:
    """``copies`` repetitions of a kernel's straight-line body.

    Windowing the result by the body length yields ``copies``
    *textually identical* basic blocks -- the workload that makes
    cross-block dependence caching measurable, and a realistic stand-in
    for the unrolled inner loops dominating the paper's scientific
    benchmarks.

    Raises:
        WorkloadError: for unknown kernel names or ``copies < 1``.
    """
    if copies < 1:
        raise WorkloadError(f"copies must be >= 1, got {copies}")
    body = straightline_body(name)
    return "\n".join("\n".join(body) for _ in range(copies)) + "\n"
