"""Random mini-C programs: compiler-output-shaped workloads.

The synthetic assembly generator (:mod:`repro.workloads.synthetic`)
matches the paper's Table 3 *statistics*; this module generates
workloads with the *dataflow shape* of real compiler output instead:
expression trees become dependence chains, variable reuse creates
store-to-load forwarding, naive codegen sprays redundant loads, and
int/double mixing inserts conversion-through-memory sequences.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cfg import partition_blocks
from repro.cfg.basic_block import BasicBlock
from repro.minic import compile_to_program

_INT_VARS = ("i", "j", "k", "m", "n")
_DOUBLE_VARS = ("a", "b", "c", "d", "x", "y")
_INT_OPS = "+-*&|^"
_DOUBLE_OPS = "+-*/"


@dataclass(frozen=True)
class MiniCWorkloadSpec:
    """Shape parameters for a random mini-C program.

    Attributes:
        n_statements: assignments per program.
        max_depth: expression-tree depth bound.
        double_fraction: probability a statement computes in doubles.
        allow_mixing: permit int subexpressions inside double
            statements (forces conversion-through-memory codegen).
        seed: RNG seed.
    """

    n_statements: int = 6
    max_depth: int = 3
    double_fraction: float = 0.5
    allow_mixing: bool = True
    seed: int = 1991


def _int_expr(rng: random.Random, depth: int) -> str:
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.35:
            return str(rng.randrange(1, 100))
        return rng.choice(_INT_VARS)
    op = rng.choice(_INT_OPS)
    left = _int_expr(rng, depth - 1)
    right = _int_expr(rng, depth - 1)
    if op in "*" and rng.random() < 0.3:
        # Occasional division/remainder for long-latency chains.
        op = rng.choice(("/", "%"))
        right = str(rng.randrange(1, 16))  # avoid interesting-free /0
    return f"({left} {op} {right})"


def _double_expr(rng: random.Random, depth: int, allow_mixing: bool) -> str:
    if depth == 0 or rng.random() < 0.25:
        roll = rng.random()
        if roll < 0.2:
            return f"{rng.randrange(1, 9)}.{rng.randrange(0, 99):02d}"
        if allow_mixing and roll < 0.35:
            return rng.choice(_INT_VARS)
        return rng.choice(_DOUBLE_VARS)
    op = rng.choice(_DOUBLE_OPS)
    left = _double_expr(rng, depth - 1, allow_mixing)
    right = _double_expr(rng, depth - 1, allow_mixing)
    return f"({left} {op} {right})"


def generate_minic_source(spec: MiniCWorkloadSpec) -> str:
    """A random mini-C program per ``spec`` (deterministic)."""
    rng = random.Random(f"minic:{spec.seed}")
    lines = [f"int {', '.join(_INT_VARS)};",
             f"double {', '.join(_DOUBLE_VARS)};"]
    for _ in range(spec.n_statements):
        if rng.random() < spec.double_fraction:
            target = rng.choice(_DOUBLE_VARS)
            expr = _double_expr(rng, spec.max_depth, spec.allow_mixing)
        else:
            target = rng.choice(_INT_VARS)
            expr = _int_expr(rng, spec.max_depth)
        lines.append(f"{target} = {expr};")
    return "\n".join(lines)


def generate_minic_blocks(spec: MiniCWorkloadSpec) -> list[BasicBlock]:
    """Compile a random mini-C program and return its basic blocks."""
    source = generate_minic_source(spec)
    return partition_blocks(compile_to_program(source, f"minic-{spec.seed}"))


def minic_workload(n_programs: int = 20, seed: int = 1991,
                   **spec_overrides) -> list[BasicBlock]:
    """A batch of compiled mini-C blocks for benchmarking.

    Args:
        n_programs: how many independent programs to generate.
        seed: base seed; program ``k`` uses ``seed + k``.
        **spec_overrides: forwarded to :class:`MiniCWorkloadSpec`.
    """
    blocks: list[BasicBlock] = []
    for k in range(n_programs):
        spec = MiniCWorkloadSpec(seed=seed + k, **spec_overrides)
        for block in generate_minic_blocks(spec):
            blocks.append(BasicBlock(len(blocks), block.instructions,
                                     block.label))
    return blocks
