"""Synthetic workloads calibrated to the paper's Table 3.

The paper measured SPARC assembly emitted by SunOS 4.1.1 compilers for
nine benchmarks.  Those artifacts are unavailable, so
:mod:`repro.workloads.profiles` records each benchmark's *structural
fingerprint* straight from Table 3 (block count, instruction count,
block-size extremes, memory-expression density) and
:mod:`repro.workloads.synthetic` deterministically generates an
instruction stream matching it.  :mod:`repro.workloads.kernels` adds
small hand-written assembly kernels for examples and tests.
"""

from repro.workloads.profiles import (
    PROFILES,
    WorkloadProfile,
    get_profile,
    scaled_profile,
)
from repro.workloads.synthetic import generate_blocks, generate_program
from repro.workloads.kernels import (
    KERNELS,
    kernel_source,
    straightline_body,
    straightline_source,
)
from repro.workloads.minic_programs import (
    MiniCWorkloadSpec,
    generate_minic_blocks,
    generate_minic_source,
    minic_workload,
)

__all__ = [
    "MiniCWorkloadSpec",
    "generate_minic_blocks",
    "generate_minic_source",
    "minic_workload",
    "PROFILES",
    "WorkloadProfile",
    "get_profile",
    "scaled_profile",
    "generate_blocks",
    "generate_program",
    "KERNELS",
    "kernel_source",
    "straightline_body",
    "straightline_source",
]
