"""The intermediate heuristic-calculation step (paper section 4).

After DAG construction, "an intermediate pass over the DAG in the
opposite direction of DAG construction" fills in the static heuristics
the construction order could not produce:

* :func:`forward_pass` computes max path/delay *from a root* and the
  earliest start time (EST);
* :func:`backward_pass` computes max path/delay *to a leaf*, the
  latest start time (LST), slack, and (optionally) the descendant
  aggregates via reachability bitmaps.

Section 4 compares two drivers for the backward pass -- a *level
algorithm* (an array of per-level linked lists, outer loop from the
maximum level down) and a plain *reverse walk* of the instruction
list -- and concludes (conclusion 4) they are equivalent, the reverse
walk being simpler.  Both are implemented so the claim can be
benchmarked; they produce identical annotations.

Note on EST/LST: the paper defines them with a uniform ``latency(p)``
term.  We use the *arc delay* instead, which generalizes the uniform
latency to the dependence-type-specific delays of section 2 (a WAR arc
contributes its short delay, exactly the situation Figure 1 examines).
With uniform arc delays the two definitions coincide.
"""

from __future__ import annotations

from repro.dag.bitmap import ReachabilityMap
from repro.dag.graph import Dag, DagNode


def compute_levels(dag: Dag) -> list[list[DagNode]]:
    """Assign forward levels and return the per-level node lists.

    Root nodes get level 0; every other node gets one plus the maximum
    level of any parent (paper section 4).  Dummy nodes participate so
    the level lists cover the whole DAG.
    """
    order = dag.topological_order()
    for node in order:
        node.level = 0
    for node in order:
        for arc in node.out_arcs:
            if node.level + 1 > arc.child.level:
                arc.child.level = node.level + 1
    max_level = max((n.level for n in order), default=0)
    levels: list[list[DagNode]] = [[] for _ in range(max_level + 1)]
    for node in order:
        levels[node.level].append(node)
    return levels


def forward_pass(dag: Dag) -> None:
    """Fill the ``f``-class heuristics: max path/delay from root, EST.

    Roots have value 0 for all three; every arc propagates
    ``parent value (+1 | +delay)`` to its child.  Runs as a single
    forward walk of the instruction list (any topological order works).
    """
    order = dag.topological_order()
    for node in order:
        node.max_path_from_root = 0
        node.max_delay_from_root = 0
        node.est = 0
    for node in order:
        for arc in node.out_arcs:
            child = arc.child
            if node.max_path_from_root + 1 > child.max_path_from_root:
                child.max_path_from_root = node.max_path_from_root + 1
            if node.max_delay_from_root + arc.delay > child.max_delay_from_root:
                child.max_delay_from_root = node.max_delay_from_root + arc.delay
            if node.est + arc.delay > child.est:
                child.est = node.est + arc.delay


def _backward_visit(node: DagNode, critical_length: int,
                    rmap: ReachabilityMap | None,
                    exec_sums: list[int] | None) -> None:
    """Compute one node's backward heuristics from its finished children."""
    path = delay = 0
    lst = critical_length - node.execution_time
    for arc in node.out_arcs:
        child = arc.child
        if child.max_path_to_leaf + 1 > path:
            path = child.max_path_to_leaf + 1
        if child.max_delay_to_leaf + arc.delay > delay:
            delay = child.max_delay_to_leaf + arc.delay
        if child.lst - arc.delay < lst:
            lst = child.lst - arc.delay
        if rmap is not None:
            rmap.absorb(node.id, child.id)
    node.max_path_to_leaf = path
    node.max_delay_to_leaf = delay
    node.lst = lst
    node.slack = node.lst - node.est
    if rmap is not None:
        node.n_descendants = rmap.descendant_count(node.id)
        if exec_sums is not None:
            # One masked dot product over the bitmap row instead of
            # extracting every descendant id bit by bit (which was
            # quadratic over the dense maps of deep blocks).
            node.sum_exec_descendants = \
                rmap.weighted_descendant_sum(node.id, exec_sums)


def _critical_length(dag: Dag) -> int:
    """Schedule length lower bound: max over nodes of EST + exec time.

    This is the value the paper assigns to the block-terminating dummy
    node, from which LST propagates backward.
    """
    return max((n.est + n.execution_time for n in dag.nodes
                if not n.is_dummy), default=0)


def backward_pass(dag: Dag, descendants: bool = False,
                  require_est: bool = True) -> None:
    """Fill the ``b``-class heuristics via a reverse walk.

    "Any reverse topological sort, including a reverse scan of the
    original instructions in the basic block, produces the same
    result" (section 4) -- this is the reverse-walk driver the paper
    recommends.

    Args:
        dag: the DAG; mutated in place.
        descendants: also compute #descendants and the sum of
            descendant execution times (needs reachability bitmaps;
            skipped by default because only some algorithms use them).
        require_est: LST/slack need EST; when True and EST looks
            uncomputed, :func:`forward_pass` is run first.
    """
    if require_est and all(n.est == 0 for n in dag.nodes):
        forward_pass(dag)
    critical = _critical_length(dag)
    dag.critical_length = critical  # for incremental updates
    rmap = ReachabilityMap(len(dag)) if descendants else None
    exec_sums = ([n.execution_time for n in dag.nodes]
                 if descendants else None)
    for node in reversed(dag.topological_order()):
        _backward_visit(node, critical, rmap, exec_sums)


def backward_pass_levels(dag: Dag, descendants: bool = False,
                         require_est: bool = True) -> None:
    """The level-algorithm driver for the backward pass.

    Builds the per-level lists, then visits levels from maximum to
    minimum so "a parent can examine all its children and know that
    all descendants have been processed" (section 4).  Produces the
    same annotations as :func:`backward_pass`; exists so conclusion 4
    (no advantage over the reverse walk) can be measured.
    """
    if require_est and all(n.est == 0 for n in dag.nodes):
        forward_pass(dag)
    levels = compute_levels(dag)
    critical = _critical_length(dag)
    dag.critical_length = critical  # for incremental updates
    rmap = ReachabilityMap(len(dag)) if descendants else None
    exec_sums = ([n.execution_time for n in dag.nodes]
                 if descendants else None)
    for level in reversed(levels):
        for node in level:
            _backward_visit(node, critical, rmap, exec_sums)
