"""Uncovering heuristics (Table 1, fourth block).

Uncovering heuristics "try to enlarge the candidate list": choosing a
node whose children then become ready gives the scheduler more choice
on later cycles.  Three refinements of the same idea, from crudest to
exact:

* **#children** -- static, inflated by transitive arcs;
* **#single-parent children** -- dynamic, counts children whose only
  unscheduled parent is this candidate;
* **#uncovered children** -- dynamic, additionally requires the arc
  delay to be one, measuring "exactly how many nodes will be added to
  the candidate list" (Warren's measure).
"""

from __future__ import annotations

from typing import Any

from repro.dag.graph import DagNode


def n_single_parent_children(node: DagNode, state: Any) -> int:
    """Children whose only unscheduled parent is this candidate.

    Implements the paper's pseudocode using the per-node
    ``#unscheduled_parents`` counter that the scheduler decrements as
    parents issue.
    """
    count = 0
    for arc in node.out_arcs:
        if arc.child.unscheduled_parents == 1:
            count += 1
    return count


def sum_delays_single_parent_children(node: DagNode, state: Any) -> int:
    """Like #single-parent children, weighting each child by its arc
    delay -- raises the priority of nodes feeding multi-cycle arcs."""
    total = 0
    for arc in node.out_arcs:
        if arc.child.unscheduled_parents == 1:
            total += arc.delay
    return total


def n_uncovered_children(node: DagNode, state: Any) -> int:
    """Children that would join the candidate list immediately.

    The refinement of #single-parent children: the arc delay must also
    be one, otherwise the child becomes ready only after the delay
    elapses.  "Due to multiple resource definitions and asymmetric
    bypass paths, #uncovered children can be different from
    #single-parent children and yet be greater than zero."
    """
    count = 0
    for arc in node.out_arcs:
        if arc.child.unscheduled_parents == 1 and arc.delay <= 1:
            count += 1
    return count
