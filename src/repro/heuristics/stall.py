"""Stall-behavior heuristics (Table 1, first block)."""

from __future__ import annotations

from typing import Any

from repro.dag.graph import DagNode


def interlock_with_previous(node: DagNode, state: Any) -> int:
    """1 when the candidate cannot execute in the next cycle because of
    a dependence on the most recently scheduled node.

    Implemented the cheap way the paper describes: follow the
    candidate's parent links looking for the most recently scheduled
    node with an arc delay greater than one.  Instructions scheduled
    earlier than the most recent are NOT considered (the paper notes
    this blind spot -- "its function is much better performed by
    earliest execution time").
    """
    last = state.last_scheduled
    if last is None:
        return 0
    for arc in node.in_arcs:
        if arc.parent is last and arc.delay > 1:
            return 1
    return 0


def no_interlock_with_previous(node: DagNode, state: Any) -> int:
    """1 when the candidate is free of interlock with the previous
    instruction (the polarity Gibbons & Muchnick rank first)."""
    return 1 - interlock_with_previous(node, state)


def earliest_execution_time(node: DagNode, state: Any) -> int:
    """The dynamic earliest-execution-time value.

    Maintained by the forward scheduler: when a parent issues, each
    child's value becomes ``max(previous value, issue time + arc
    delay)``.  "This measure may be inaccurate when all transitive
    arcs are removed" -- which is exactly what the Figure 1 benchmark
    demonstrates.
    """
    return node.earliest_exec_time


def earliest_execution_time_with_units(node: DagNode, state: Any) -> int:
    """Earliest execution time extended with function-unit busy times.

    "If the function units are not pipelined, then structural hazards
    can be considered by performing a maximum earliest starting time
    calculation that includes the finish times of any required
    function units." (section 3)
    """
    base = node.earliest_exec_time
    if node.instr is None:
        return base
    unit = state.machine.units.unit_for(node.instr.opcode.iclass)
    if unit.pipelined:
        return base
    return max(base, state.unit_free.get(unit.name, 0))
