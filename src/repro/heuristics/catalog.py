"""The complete Table 1 catalog: all 26 heuristics, bound to code.

``CATALOG`` reproduces the paper's Table 1 row by row -- category,
relationship- vs timing-based column, calculation pass (``a``/``f``/
``b``/``v``), and the ``**`` transitive-arc-sensitivity marker -- and
binds each row to its implementation (a :class:`DagNode` attribute or
a dynamic calculator).  The Table 1 verification benchmark walks this
list and evaluates every entry on live DAGs.
"""

from __future__ import annotations

from repro.heuristics.base import Category, Heuristic, PassKind
from repro.heuristics import instruction_class as _ic
from repro.heuristics import register_usage as _reg
from repro.heuristics import stall as _stall
from repro.heuristics import uncovering as _unc

_C = Category
_P = PassKind

CATALOG: tuple[Heuristic, ...] = (
    # --- stall behavior ---------------------------------------------------
    Heuristic("interlock_with_previous", "interlock with previous inst.",
              _C.STALL, timing_based=False, pass_kind=_P.VISIT,
              dynamic_fn=_stall.interlock_with_previous,
              description="candidate stalls against the most recently "
                          "scheduled node"),
    Heuristic("earliest_execution_time", "earliest execution time",
              _C.STALL, timing_based=True, pass_kind=_P.VISIT,
              transitive_sensitive=True,
              dynamic_fn=_stall.earliest_execution_time,
              description="dynamic ready time maintained as parents issue"),
    Heuristic("interlock_with_child", "interlock with child",
              _C.STALL, timing_based=False, pass_kind=_P.ADD_ARC,
              transitive_sensitive=True, static_attr="interlock_with_child",
              description="some child cannot execute in the next cycle "
                          "(any out-arc delay > 1)"),
    Heuristic("execution_time", "execution time",
              _C.STALL, timing_based=True, pass_kind=_P.ADD_ARC,
              static_attr="execution_time",
              description="operation latency of the node"),
    # --- instruction class ------------------------------------------------
    Heuristic("alternate_type", "alternate type",
              _C.INSTRUCTION_CLASS, timing_based=False, pass_kind=_P.VISIT,
              dynamic_fn=_ic.alternate_type,
              description="issue class differs from the last scheduled "
                          "instruction (superscalar pairing)"),
    Heuristic("fpu_busy_time", "busy times for flt. pt. function units",
              _C.INSTRUCTION_CLASS, timing_based=True, pass_kind=_P.VISIT,
              dynamic_fn=_ic.fpu_busy_time,
              description="structural-hazard wait on non-pipelined units"),
    # --- critical path ----------------------------------------------------
    Heuristic("max_path_to_leaf", "max path length to a leaf",
              _C.CRITICAL_PATH, timing_based=False, pass_kind=_P.BACKWARD,
              static_attr="max_path_to_leaf",
              description="arcs to the most distant leaf"),
    Heuristic("max_delay_to_leaf", "max total delay to a leaf",
              _C.CRITICAL_PATH, timing_based=True, pass_kind=_P.BACKWARD,
              static_attr="max_delay_to_leaf",
              description="summed arc delays to the most distant leaf"),
    Heuristic("max_path_from_root", "max path length from root",
              _C.CRITICAL_PATH, timing_based=False, pass_kind=_P.FORWARD,
              static_attr="max_path_from_root",
              description="arcs from the most distant root"),
    Heuristic("max_delay_from_root", "max total delay from root",
              _C.CRITICAL_PATH, timing_based=True, pass_kind=_P.FORWARD,
              static_attr="max_delay_from_root",
              description="summed arc delays from the most distant root"),
    Heuristic("est", "earliest start time (EST)",
              _C.CRITICAL_PATH, timing_based=True, pass_kind=_P.FORWARD,
              transitive_sensitive=True, static_attr="est",
              description="max over parents of EST(p) + arc delay"),
    Heuristic("lst", "latest start time (LST)",
              _C.CRITICAL_PATH, timing_based=True, pass_kind=_P.BACKWARD,
              transitive_sensitive=True, static_attr="lst",
              description="min over children of LST(c) - arc delay"),
    Heuristic("slack", "slack (= LST-EST)",
              _C.CRITICAL_PATH, timing_based=True,
              pass_kind=_P.FORWARD_BACKWARD, transitive_sensitive=True,
              static_attr="slack",
              description="zero slack marks the critical path"),
    # --- uncovering ---------------------------------------------------------
    Heuristic("n_children", "#children",
              _C.UNCOVERING, timing_based=False, pass_kind=_P.ADD_ARC,
              transitive_sensitive=True, static_attr="n_children",
              description="outgoing arcs; estimates candidate-list growth"),
    Heuristic("sum_delays_to_children", "phi delays to children",
              _C.UNCOVERING, timing_based=True, pass_kind=_P.ADD_ARC,
              transitive_sensitive=True,
              static_attr="sum_delays_to_children",
              description="phi=sum of out-arc delays (phi=max equals "
                          "execution time)"),
    Heuristic("n_single_parent_children", "#single-parent children",
              _C.UNCOVERING, timing_based=False, pass_kind=_P.VISIT,
              dynamic_fn=_unc.n_single_parent_children,
              description="children whose only unscheduled parent is the "
                          "candidate"),
    Heuristic("sum_delays_single_parent_children",
              "sum of delays to single-parent children",
              _C.UNCOVERING, timing_based=True, pass_kind=_P.VISIT,
              dynamic_fn=_unc.sum_delays_single_parent_children,
              description="delay-weighted #single-parent children"),
    Heuristic("n_uncovered_children", "#uncovered children",
              _C.UNCOVERING, timing_based=False, pass_kind=_P.VISIT,
              dynamic_fn=_unc.n_uncovered_children,
              description="children that join the candidate list at once "
                          "(single unscheduled parent AND delay 1)"),
    # --- structural ---------------------------------------------------------
    Heuristic("n_parents", "#parents",
              _C.STRUCTURAL, timing_based=False, pass_kind=_P.ADD_ARC,
              transitive_sensitive=True, static_attr="n_parents",
              description="incoming arcs; Shieh & Papachristou use it "
                          "inversely"),
    Heuristic("sum_delays_from_parents", "phi delays from parents",
              _C.STRUCTURAL, timing_based=True, pass_kind=_P.ADD_ARC,
              transitive_sensitive=True,
              static_attr="sum_delays_from_parents",
              description="phi=sum of in-arc delays"),
    Heuristic("n_descendants", "#descendants",
              _C.STRUCTURAL, timing_based=False, pass_kind=_P.BACKWARD,
              static_attr="n_descendants",
              description="popcount of the reachability bitmap minus one"),
    Heuristic("sum_exec_descendants",
              "sum of execution times of descendants",
              _C.STRUCTURAL, timing_based=True, pass_kind=_P.BACKWARD,
              static_attr="sum_exec_descendants",
              description="execution-time-weighted #descendants"),
    # --- register usage -----------------------------------------------------
    Heuristic("registers_born", "#registers born",
              _C.REGISTER_USAGE, timing_based=False, pass_kind=_P.ADD_ARC,
              static_attr="registers_born",
              description="values created that stay live (inverse "
                          "heuristic prepass)"),
    Heuristic("registers_killed", "#registers killed",
              _C.REGISTER_USAGE, timing_based=False, pass_kind=_P.ADD_ARC,
              static_attr="registers_killed",
              description="last uses performed (GCC v2's addition to "
                          "Tiemann)"),
    Heuristic("liveness", "liveness",
              _C.REGISTER_USAGE, timing_based=False, pass_kind=_P.ADD_ARC,
              static_attr="liveness",
              description="Warren's net register-pressure measure "
                          "(born - killed here)"),
    Heuristic("birthing", "birthing instruction",
              _C.REGISTER_USAGE, timing_based=False, pass_kind=_P.ADD_ARC,
              static_attr="priority_bias",
              description="Tiemann's upward bias on RAW parents of the "
                          "most recently scheduled node"),
)

_BY_KEY: dict[str, Heuristic] = {h.key: h for h in CATALOG}


def catalog() -> tuple[Heuristic, ...]:
    """All 26 heuristics in Table 1 order."""
    return CATALOG


def heuristic_by_key(key: str) -> Heuristic:
    """Look a heuristic up by its stable key.

    Raises:
        KeyError: for unknown keys.
    """
    return _BY_KEY[key]


def by_category(category: Category) -> list[Heuristic]:
    """The catalog rows in one category, in table order."""
    return [h for h in CATALOG if h.category is category]
