"""Structural heuristics (Table 1, fifth block).

"Structural heuristics help balance progress through the DAG."

* ``#parents`` and the φ-delays-from-parents aggregates are ``a``-class
  values maintained by ``add_arc`` (and, as the paper warns, inflated
  by transitive arcs).
* ``#descendants`` and the sum of descendant execution times are
  ``b``-class values: "a better approach is for add_arc to maintain
  reachability bit maps ... the #descendants is then merely the
  population count on the reachability bit map minus one."  Our
  backward pass computes them exactly that way
  (:func:`repro.heuristics.passes.backward_pass` with
  ``descendants=True``).
"""

from __future__ import annotations

from typing import Any

from repro.dag.graph import DagNode


def inverse_n_parents(node: DagNode, state: Any = None) -> int:
    """Negated #parents, for ranking where fewer parents is better.

    Shieh & Papachristou recommend #parents as an *inverse* heuristic
    for forward scheduling: more parents means more completions to
    wait for.
    """
    return -node.n_parents
