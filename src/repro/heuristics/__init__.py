"""The 26 scheduling heuristics of the paper's Table 1.

Heuristics split by *when* they can be computed (Table 1 legend):

* ``a`` -- maintained by ``Dag.add_arc`` while the DAG is built;
* ``f`` -- need a forward pass over the block
  (:func:`repro.heuristics.passes.forward_pass`);
* ``b`` -- need a backward pass
  (:func:`repro.heuristics.passes.backward_pass`);
* ``v`` -- dynamic, computed by node visitation during scheduling
  (the callables in the category modules, driven by the scheduler's
  :class:`~repro.scheduling.list_scheduler.SchedulerState`).

:mod:`repro.heuristics.catalog` ties every Table 1 row to its
implementation.
"""

from repro.heuristics.base import Category, Heuristic, PassKind
from repro.heuristics.catalog import CATALOG, catalog, heuristic_by_key
from repro.heuristics.incremental import (
    annotate,
    apply_inherited_incremental,
    update_after_arc,
)
from repro.heuristics.passes import (
    backward_pass,
    backward_pass_levels,
    compute_levels,
    forward_pass,
)
from repro.heuristics.register_usage import annotate_register_usage

__all__ = [
    "Category",
    "Heuristic",
    "PassKind",
    "CATALOG",
    "catalog",
    "heuristic_by_key",
    "annotate",
    "apply_inherited_incremental",
    "update_after_arc",
    "forward_pass",
    "backward_pass",
    "backward_pass_levels",
    "compute_levels",
    "annotate_register_usage",
]
