"""Incremental maintenance of the pass-computed heuristics.

Table 1 tags every heuristic with *when* it can be computed: the
``a``-class values are maintained arc-by-arc inside
:meth:`~repro.dag.graph.Dag.add_arc` already, but the ``f``- and
``b``-class values (max path/delay from root and to leaf, EST, LST,
slack) normally need the full intermediate passes of
:mod:`repro.heuristics.passes`.  When a single arc is added to an
*already annotated* DAG -- the inherited-latency pseudo-arcs of
:mod:`repro.scheduling.interblock` are the motivating case -- re-running
whole passes is wasted work: only the frontier downstream (for the
``f`` values) and upstream (for the ``b`` values) of the new arc can
change.

:func:`update_after_arc` performs exactly that bounded propagation and
produces annotations identical to re-running both full passes.  The one
global effect is the critical length: EST growth below the new arc can
lengthen the schedule lower bound, which shifts *every* node's LST
uniformly (LST is ``critical - fixed downward offset``), so that case
pays one O(n) shift; slack is re-derived for whichever nodes moved.

Limitations: the descendant aggregates (``n_descendants``,
``sum_exec_descendants``) are bitmap-derived and are *not* maintained
here -- use a full ``backward_pass(descendants=True)`` when an
algorithm needs them after DAG edits.
"""

from __future__ import annotations

from repro.dag.graph import Dag, DagNode
from repro.heuristics.passes import backward_pass, forward_pass
from repro.obs.metrics import MetricsRegistry, record_incremental_repair
from repro.scheduling.interblock import ResidualLatency, apply_inherited


def annotate(dag: Dag, descendants: bool = False) -> None:
    """Run both full passes and remember the critical length.

    Equivalent to ``forward_pass`` + ``backward_pass`` except that the
    critical length is stashed on the DAG (``dag.critical_length``) so
    later :func:`update_after_arc` calls can detect growth.
    """
    forward_pass(dag)
    backward_pass(dag, descendants=descendants, require_est=False)


def _forward_frontier(dag: Dag, child: DagNode) -> tuple[int, bool]:
    """Recompute f-class values downstream of ``child``.

    Each worklist node is recomputed exactly from its in-arcs (its
    parents are upstream and therefore final); children are enqueued
    only when a value actually changed.

    Returns:
        ``(visited, est_changed)``: how many worklist nodes were
        recomputed, and whether any node's EST changed (the critical
        length may have grown).
    """
    est_changed = False
    visited = 0
    worklist = [child]
    seen = {child.id}
    while worklist:
        node = worklist.pop()
        seen.discard(node.id)
        visited += 1
        path = delay = est = 0
        for arc in node.in_arcs:
            parent = arc.parent
            if parent.max_path_from_root + 1 > path:
                path = parent.max_path_from_root + 1
            if parent.max_delay_from_root + arc.delay > delay:
                delay = parent.max_delay_from_root + arc.delay
            if parent.est + arc.delay > est:
                est = parent.est + arc.delay
        changed = (path != node.max_path_from_root
                   or delay != node.max_delay_from_root)
        if est != node.est:
            changed = est_changed = True
        if not changed:
            continue
        node.max_path_from_root = path
        node.max_delay_from_root = delay
        node.est = est
        node.slack = node.lst - node.est
        for arc in node.out_arcs:
            if arc.child.id not in seen:
                seen.add(arc.child.id)
                worklist.append(arc.child)
    return visited, est_changed


def _backward_frontier(dag: Dag, parent: DagNode,
                       critical: int) -> int:
    """Recompute b-class values upstream of ``parent``.

    Mirror image of the forward frontier: recompute each worklist node
    exactly from its out-arcs (children are downstream and final),
    enqueue parents on change.

    Returns:
        How many worklist nodes were recomputed.
    """
    visited = 0
    worklist = [parent]
    seen = {parent.id}
    while worklist:
        node = worklist.pop()
        seen.discard(node.id)
        visited += 1
        path = delay = 0
        lst = critical - node.execution_time
        for arc in node.out_arcs:
            c = arc.child
            if c.max_path_to_leaf + 1 > path:
                path = c.max_path_to_leaf + 1
            if c.max_delay_to_leaf + arc.delay > delay:
                delay = c.max_delay_to_leaf + arc.delay
            if c.lst - arc.delay < lst:
                lst = c.lst - arc.delay
        if (path == node.max_path_to_leaf
                and delay == node.max_delay_to_leaf
                and lst == node.lst):
            continue
        node.max_path_to_leaf = path
        node.max_delay_to_leaf = delay
        node.lst = lst
        node.slack = node.lst - node.est
        for arc in node.in_arcs:
            if arc.parent.id not in seen:
                seen.add(arc.parent.id)
                worklist.append(arc.parent)
    return visited


def update_after_arc(dag: Dag, parent: DagNode, child: DagNode,
                     metrics: MetricsRegistry | None = None) -> None:
    """Repair the f/b heuristics after ``add_arc(parent, child, ...)``.

    Call once per inserted (or delay-grown merged) arc, after the
    ``Dag.add_arc`` call.  The DAG must already carry full-pass
    annotations from :func:`annotate` (or from the two passes plus a
    stashed ``dag.critical_length``); without the stash this falls back
    to the full passes.

    The result is identical to re-running ``forward_pass`` +
    ``backward_pass`` on the whole DAG.

    Args:
        dag: the annotated DAG the arc was inserted into.
        parent: the new arc's parent node.
        child: the new arc's child node.
        metrics: optional registry; records frontier nodes visited
            against the node count the replaced full passes would have
            walked (the win the incremental repair buys).
    """
    n_real = sum(1 for n in dag.nodes if not n.is_dummy)
    critical = getattr(dag, "critical_length", None)
    if critical is None:
        annotate(dag)
        record_incremental_repair(metrics, 2 * n_real, 2 * n_real)
        return
    visited, est_changed = _forward_frontier(dag, child)
    if est_changed:
        new_critical = max(
            (n.est + n.execution_time for n in dag.nodes
             if not n.is_dummy), default=0)
        if new_critical > critical:
            # LST = critical - (downward offset): growth shifts every
            # node uniformly; slack follows wherever EST stood still.
            shift = new_critical - critical
            for node in dag.nodes:
                node.lst += shift
                node.slack = node.lst - node.est
            dag.critical_length = critical = new_critical
    visited += _backward_frontier(dag, parent, critical)
    record_incremental_repair(metrics, visited, 2 * n_real)


def apply_inherited_incremental(
        dag: Dag, inherited: list[ResidualLatency],
        metrics: MetricsRegistry | None = None) -> DagNode:
    """Inherited-latency seeding on an already annotated DAG.

    The incremental counterpart of
    :func:`repro.scheduling.interblock.apply_inherited` +
    ``backward_pass``: the pseudo entry node's arcs are applied with
    frontier updates instead of whole-DAG re-passes.  Annotations come
    out identical; only the touched frontier is visited.

    Args:
        dag: the annotated DAG.
        inherited: residual latencies from the predecessor block.
        metrics: optional registry, forwarded to each arc repair.

    Returns:
        The pseudo entry node.
    """
    pseudo = apply_inherited(dag, inherited)
    for arc in list(pseudo.out_arcs):
        update_after_arc(dag, pseudo, arc.child, metrics=metrics)
    return pseudo
