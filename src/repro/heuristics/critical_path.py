"""Critical-path heuristics (Table 1, third block).

All values here are static and live directly on :class:`DagNode`
slots, filled by :mod:`repro.heuristics.passes`:

* ``max_path_to_leaf`` / ``max_delay_to_leaf`` -- backward pass;
* ``max_path_from_root`` / ``max_delay_from_root`` -- forward pass;
* ``est`` (earliest start time) -- forward pass;
* ``lst`` (latest start time) -- backward pass, seeded from the
  critical-path length;
* ``slack = lst - est`` -- both; zero-slack nodes form the critical
  path.

This module provides small helpers on top of those attributes.
"""

from __future__ import annotations

from repro.dag.graph import Dag, DagNode


def critical_path_nodes(dag: Dag) -> list[DagNode]:
    """Nodes with zero slack (after both passes have run).

    "Those nodes with a slack of zero are on the critical path."
    """
    return [n for n in dag.nodes if not n.is_dummy and n.slack == 0]


def critical_path_length(dag: Dag) -> int:
    """The block's critical-path length (max EST + execution time)."""
    return max((n.est + n.execution_time for n in dag.nodes
                if not n.is_dummy), default=0)
