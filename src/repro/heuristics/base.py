"""Heuristic metadata: Table 1's rows as first-class objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Any

from repro.dag.graph import DagNode


class Category(enum.Enum):
    """The six broad classifications of paper section 1 / Table 1."""

    STALL = "stall behavior"
    INSTRUCTION_CLASS = "instruction class"
    CRITICAL_PATH = "critical path"
    UNCOVERING = "uncovering"
    STRUCTURAL = "structural"
    REGISTER_USAGE = "register usage"


class PassKind(enum.Enum):
    """When a heuristic's value becomes available (Table 1 legend)."""

    ADD_ARC = "a"             # determined when node/arc is added to DAG
    FORWARD = "f"             # requires a forward pass over the block
    BACKWARD = "b"            # requires a backward pass over the block
    FORWARD_BACKWARD = "f+b"  # requires both (slack)
    VISIT = "v"               # requires node visitation during scheduling


@dataclass(frozen=True)
class Heuristic:
    """One Table 1 row, bound to its implementation.

    Attributes:
        key: stable identifier, also the scheduler priority key.
        title: the paper's row title.
        category: one of the six broad classes.
        timing_based: True for the "timing-based" column, False for
            "relationship-based".
        pass_kind: when the value can be computed.
        transitive_sensitive: True for the ``**`` rows -- "calculation
            is affected by the presence of transitive arcs".
        static_attr: name of the :class:`DagNode` attribute holding the
            value, for static (a/f/b) heuristics.
        dynamic_fn: callable ``(node, state) -> value`` for dynamic
            (v) heuristics; ``state`` is the scheduler's state object.
        description: one-line summary from the paper's section 3.
    """

    key: str
    title: str
    category: Category
    timing_based: bool
    pass_kind: PassKind
    transitive_sensitive: bool = False
    static_attr: str | None = None
    dynamic_fn: Callable[[DagNode, Any], float] | None = None
    description: str = ""

    @property
    def is_dynamic(self) -> bool:
        """True for heuristics that need the scheduling-time state."""
        return self.pass_kind is PassKind.VISIT

    def value(self, node: DagNode, state: Any = None) -> float:
        """Evaluate the heuristic for ``node``.

        Args:
            node: the candidate node.
            state: the scheduler state; required for dynamic
                heuristics, ignored for static ones.

        Raises:
            ValueError: if a dynamic heuristic is evaluated without a
                scheduler state.
        """
        if self.dynamic_fn is not None:
            if state is None:
                raise ValueError(
                    f"heuristic {self.key!r} is dynamic and needs a "
                    "scheduler state")
            return self.dynamic_fn(node, state)
        assert self.static_attr is not None
        return getattr(node, self.static_attr)
