"""Instruction-class heuristics (Table 1, second block)."""

from __future__ import annotations

from typing import Any

from repro.dag.graph import DagNode


def alternate_type(node: DagNode, state: Any) -> int:
    """1 when the candidate's issue class differs from the most
    recently scheduled instruction's.

    On a superscalar processor, alternating classes lets more
    instructions issue per cycle (section 3); the heuristic "is useful
    in either direction".
    """
    last = state.last_scheduled
    if last is None or last.instr is None or node.instr is None:
        return 1
    return int(node.instr.opcode.issue_class
               is not last.instr.opcode.issue_class)


def fpu_busy_time(node: DagNode, state: Any) -> int:
    """Cycles the candidate would wait for its (non-pipelined) unit.

    0 means no structural stall.  Used as an inverse heuristic
    (smaller is better); Krishnamurthy ranks it second in his priority
    function.
    """
    if node.instr is None:
        return 0
    unit = state.machine.units.unit_for(node.instr.opcode.iclass)
    if unit.pipelined:
        return 0
    free = state.unit_free.get(unit.name, 0)
    return max(0, free - state.current_time)
