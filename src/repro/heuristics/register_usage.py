"""Register-usage heuristics (Table 1, sixth block).

These matter for *prepass* scheduling (before register allocation),
where lengthening live ranges raises register pressure:

* ``#registers born`` -- values this instruction creates that stay
  live (an inverse heuristic: postpone pressure increases);
* ``#registers killed`` -- last uses this instruction performs
  (schedule pressure *decreases* early; GCC v2 added this to
  Tiemann's algorithm);
* ``liveness`` -- Warren's net measure, modeled here as
  born - killed;
* ``birthing instruction`` -- Tiemann's dynamic bias: each RAW parent
  of the most recently scheduled node (in his backward pass) gets its
  priority adjusted upward to shorten the new live range.  The bias
  lives in ``DagNode.priority_bias`` and is maintained by the Tiemann
  scheduler.

Block-local analysis convention: nothing is assumed live out of the
block, so a value defined and never used locally is born dead (born
does not count it) and the last local use of any register kills it.
This is the standard prepass approximation; Warren's full liveness
uses global information this library intentionally keeps out of scope
(the paper's future work item 3).
"""

from __future__ import annotations

from typing import Any

from repro.dag.graph import Dag, DagNode
from repro.isa.resources import ResourceKind, defs_and_uses


def annotate_register_usage(dag: Dag) -> None:
    """Fill ``registers_born`` / ``registers_killed`` / ``liveness``.

    One backward walk over the block maintaining the live set:

    * an instruction kills every register it uses that is not live
      below it (it performs the last use);
    * an instruction gives birth to every register it defines that IS
      live below it (the value has a consumer).
    """
    live: set[str] = set()
    for node in reversed(dag.topological_order()):
        if node.instr is None:
            continue
        defs, uses = defs_and_uses(node.instr)
        reg_defs = [r.name for r in defs if r.kind is ResourceKind.REG]
        reg_uses = [r.name for r in uses if r.kind is ResourceKind.REG]
        node.registers_born = sum(1 for name in set(reg_defs)
                                  if name in live)
        for name in reg_defs:
            live.discard(name)
        killed = sum(1 for name in set(reg_uses) if name not in live)
        node.registers_killed = killed
        live.update(reg_uses)
        node.liveness = node.registers_born - node.registers_killed


def birthing_bias(node: DagNode, state: Any) -> int:
    """The dynamic Tiemann birthing-instruction priority adjustment."""
    return node.priority_bias


def apply_birthing_adjustment(scheduled: DagNode, amount: int = 1) -> None:
    """Raise the priority of each RAW parent of a just-scheduled node.

    Called by the Tiemann backward scheduler after every selection so
    the defining instructions of the values just consumed are chosen
    soon, shortening register lifetimes.
    """
    from repro.dep import DepType
    for arc in scheduled.in_arcs:
        if arc.dep is DepType.RAW and not arc.parent.scheduled:
            arc.parent.priority_bias += amount
