"""An architectural interpreter for straight-line blocks.

Executes instruction sequences over a concrete machine state (32-bit
integer registers, IEEE single/double FP register file modeled as
32-bit words, byte-addressable memory, ``%icc``/``%fcc``/``%y``).  Its
purpose is *semantic validation of scheduling*: transformations "must
preserve data dependencies" (paper section 1), so executing a block in
its original order and in any legal schedule from the same initial
state must produce bit-for-bit identical final states.  The property
suite (``tests/test_semantics.py``) checks exactly that across random
blocks, mini-C output, and every scheduler in the repository.

Deliberate simplifications (all deterministic, all order-insensitive,
each documented at its implementation):

* ``sdiv``/``udiv`` divide 32/32 (the real V8 uses ``%y:rs1`` as a
  64-bit dividend); ``%y`` is still written (zero) so WAW/WAR ordering
  stays observable.
* ``mulscc`` implements a deterministic multiply-step approximation.
* ``fsqrts/d`` of a negative operand yields the square root of the
  absolute value (no NaN plumbing).
* Conditional branches are evaluated against the condition codes:
  NOT-taken branches fall through (with correct annul-the-slot
  semantics for ``,a`` branches), so whole programs whose conditions
  all evaluate false execute linearly -- this is what validates the
  delay-slot layout decisions of :mod:`repro.transform`.  TAKEN
  branches, ``ba``, calls, and returns raise
  :class:`UnsupportedInstruction` (there is no control-flow graph to
  follow).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.isa.instruction import Instruction
from repro.isa.memory import MemExpr
from repro.isa.opcodes import OperandFormat
from repro.isa.operands import ImmOperand, RegOperand, SymImmOperand

_WORD = 1 << 32
_INT_MIN = -(1 << 31)


class UnsupportedInstruction(ReproError):
    """Raised for instructions the interpreter does not execute."""


def _u32(value: int) -> int:
    return value & (_WORD - 1)


def _s32(value: int) -> int:
    value = _u32(value)
    return value - _WORD if value >= (1 << 31) else value


@dataclass
class MachineState:
    """Concrete architectural state.

    Attributes:
        int_regs: integer register values (unsigned 32-bit), canonical
            names; ``%g0`` reads as zero regardless of content.
        fp_regs: 32-bit word per single FP register name.
        memory: byte-addressable memory (sparse).
        symbols: symbolic-address assignment for direct references.
        y: the %y register (unsigned 32-bit).
        icc: integer condition codes (n, z, v, c).
        fcc: fp compare result: 0 equal, 1 less, 2 greater.
    """

    int_regs: dict[str, int] = field(default_factory=dict)
    fp_regs: dict[str, int] = field(default_factory=dict)
    memory: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    y: int = 0
    icc: tuple[bool, bool, bool, bool] = (False, True, False, False)
    fcc: int = 0

    # -- register access ---------------------------------------------------

    def read_int(self, name: str) -> int:
        if name == "%g0":
            return 0
        return self.int_regs.get(name, 0)

    def write_int(self, name: str, value: int) -> None:
        if name != "%g0":
            self.int_regs[name] = _u32(value)

    def read_fp_word(self, name: str) -> int:
        return self.fp_regs.get(name, 0)

    def write_fp_word(self, name: str, value: int) -> None:
        self.fp_regs[name] = _u32(value)

    def read_double(self, even: str) -> float:
        number = int(even[2:])
        high = self.read_fp_word(even)
        low = self.read_fp_word(f"%f{number + 1}")
        return struct.unpack(">d", struct.pack(">II", high, low))[0]

    def write_double(self, even: str, value: float) -> None:
        high, low = struct.unpack(">II", struct.pack(">d", value))
        number = int(even[2:])
        self.write_fp_word(even, high)
        self.write_fp_word(f"%f{number + 1}", low)

    def read_single(self, name: str) -> float:
        return struct.unpack(">f",
                             struct.pack(">I", self.read_fp_word(name)))[0]

    def write_single(self, name: str, value: float) -> None:
        try:
            word = struct.unpack(">I", struct.pack(">f", value))[0]
        except OverflowError:
            word = 0x7F800000  # +inf
        self.write_fp_word(name, word)

    # -- memory access -----------------------------------------------------

    def address_of(self, expr: MemExpr) -> int:
        address = expr.offset
        if expr.base is not None:
            address += _s32(self.read_int(expr.base))
        if expr.index is not None:
            address += _s32(self.read_int(expr.index))
        if expr.symbol is not None:
            if expr.symbol not in self.symbols:
                self.symbols[expr.symbol] = 0x40000000 \
                    + 256 * len(self.symbols)
            address += self.symbols[expr.symbol]
        return address

    def load_bytes(self, address: int, n: int) -> int:
        value = 0
        for i in range(n):
            value = (value << 8) | (self.memory.get(address + i, 0) & 0xFF)
        return value

    def store_bytes(self, address: int, n: int, value: int) -> None:
        for i in range(n):
            shift = 8 * (n - 1 - i)
            self.memory[address + i] = (value >> shift) & 0xFF

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> tuple:
        """A hashable, comparable digest of the full state."""
        return (tuple(sorted(self.int_regs.items())),
                tuple(sorted(self.fp_regs.items())),
                tuple(sorted(self.memory.items())),
                self.y, self.icc, self.fcc)

    def copy(self) -> "MachineState":
        clone = MachineState(dict(self.int_regs), dict(self.fp_regs),
                             dict(self.memory), dict(self.symbols),
                             self.y, self.icc, self.fcc)
        return clone


def _alu_icc(result: int, carry: bool, overflow: bool) -> tuple:
    value = _u32(result)
    return (value >= 1 << 31, value == 0, overflow, carry)


_INT_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andn": lambda a, b: a & ~b,
    "orn": lambda a, b: a | ~b,
    "xnor": lambda a, b: ~(a ^ b),
    "sll": lambda a, b: a << (b & 31),
    "srl": lambda a, b: _u32(a) >> (b & 31),
    "sra": lambda a, b: _s32(a) >> (b & 31),
    "taddcc": lambda a, b: a + b,
    "tsubcc": lambda a, b: a - b,
}

_FP3 = {
    "faddd": lambda a, b: a + b, "fsubd": lambda a, b: a - b,
    "fmuld": lambda a, b: a * b,
    "fdivd": lambda a, b: a / b if b != 0.0 else math.inf * (
        1 if a >= 0 else -1),
    "fadds": lambda a, b: a + b, "fsubs": lambda a, b: a - b,
    "fmuls": lambda a, b: a * b,
    "fdivs": lambda a, b: a / b if b != 0.0 else math.inf * (
        1 if a >= 0 else -1),
}

_LOAD_SIZES = {"ld": 4, "ldub": 1, "lduh": 2, "ldsb": 1, "ldsh": 2,
               "ldd": 8}
_STORE_SIZES = {"st": 4, "stb": 1, "sth": 2, "std": 8}


class Interpreter:
    """Executes straight-line instruction sequences."""

    def __init__(self, state: MachineState) -> None:
        self.state = state
        self._annul_next = False

    # -- operand helpers ---------------------------------------------------

    def _src(self, operand) -> int:
        if isinstance(operand, RegOperand):
            return _s32(self.state.read_int(operand.register.name))
        if isinstance(operand, ImmOperand):
            return operand.value
        if isinstance(operand, SymImmOperand):
            address = self.state.address_of(MemExpr(symbol=operand.symbol))
            return (address >> 10 if operand.part == "hi"
                    else address & 0x3FF)
        raise UnsupportedInstruction(f"bad source operand {operand!r}")

    def _dest_name(self, operand) -> str:
        assert isinstance(operand, RegOperand)
        return operand.register.name

    # -- execution ---------------------------------------------------------

    def run(self, instructions: list[Instruction]) -> MachineState:
        """Execute the sequence; returns the (mutated) state.

        A not-taken annulling branch squashes the following (delay
        slot) instruction, per the SPARC ``,a`` semantics.
        """
        for instr in instructions:
            if self._annul_next:
                self._annul_next = False
                continue
            self.step(instr)
        return self.state

    def step(self, instr: Instruction) -> None:
        op = instr.opcode
        fmt = op.fmt
        handler = getattr(self, f"_exec_{fmt.value}", None)
        if handler is None:
            raise UnsupportedInstruction(
                f"cannot interpret {op.mnemonic} ({fmt.value})")
        handler(instr)

    # ALU family ------------------------------------------------------------

    def _int_result(self, instr: Instruction) -> tuple[int, int, int]:
        a = self._src(instr.operands[0])
        b = self._src(instr.operands[1])
        return a, b, 0

    def _exec_alu3(self, instr: Instruction) -> None:
        a, b, _ = self._int_result(instr)
        mnemonic = instr.opcode.mnemonic
        if mnemonic in ("smul", "umul"):  # via MULDIV fall-through
            raise AssertionError
        if mnemonic in ("save", "restore"):
            raise UnsupportedInstruction("register windows not modeled")
        result = _INT_BINOPS[mnemonic](a, b)
        self.state.write_int(self._dest_name(instr.operands[2]), result)

    def _exec_alu3_cc(self, instr: Instruction) -> None:
        a, b, _ = self._int_result(instr)
        mnemonic = instr.opcode.mnemonic
        base = mnemonic[:-2] if mnemonic.endswith("cc") else mnemonic
        if mnemonic in ("taddcc", "tsubcc"):
            base = mnemonic
        result = _INT_BINOPS[base](a, b)
        carry = bool(_u32(a) + _u32(b) >= _WORD) if "add" in base \
            else bool(_u32(a) < _u32(b))
        overflow = not (_INT_MIN <= result < 1 << 31)
        self.state.icc = _alu_icc(result, carry, overflow)
        self.state.write_int(self._dest_name(instr.operands[2]), result)

    def _exec_alu3_c(self, instr: Instruction) -> None:
        a, b, _ = self._int_result(instr)
        carry_in = 1 if self.state.icc[3] else 0
        if instr.opcode.mnemonic == "addx":
            result = a + b + carry_in
        else:
            result = a - b - carry_in
        self.state.write_int(self._dest_name(instr.operands[2]), result)

    def _exec_alu3_cc2(self, instr: Instruction) -> None:
        a, b, _ = self._int_result(instr)
        carry_in = 1 if self.state.icc[3] else 0
        if instr.opcode.mnemonic == "addxcc":
            result = a + b + carry_in
            carry = bool(_u32(a) + _u32(b) + carry_in >= _WORD)
        else:
            result = a - b - carry_in
            carry = bool(_u32(a) < _u32(b) + carry_in)
        overflow = not (_INT_MIN <= result < 1 << 31)
        self.state.icc = _alu_icc(result, carry, overflow)
        self.state.write_int(self._dest_name(instr.operands[2]), result)

    def _exec_muldiv(self, instr: Instruction) -> None:
        a, b, _ = self._int_result(instr)
        mnemonic = instr.opcode.mnemonic
        dest = self._dest_name(instr.operands[2])
        if mnemonic == "smul":
            product = a * b
            self.state.y = _u32(product >> 32)
            self.state.write_int(dest, product)
        elif mnemonic == "umul":
            product = _u32(a) * _u32(b)
            self.state.y = _u32(product >> 32)
            self.state.write_int(dest, product)
        elif mnemonic == "sdiv":
            # Simplification: 32/32 divide (no %y:rs1 dividend), %y
            # deterministically zeroed.
            quotient = int(a / b) if b != 0 else 0
            self.state.y = 0
            self.state.write_int(dest, quotient)
        else:  # udiv
            quotient = _u32(a) // _u32(b) if b != 0 else 0
            self.state.y = 0
            self.state.write_int(dest, quotient)

    def _exec_mulscc(self, instr: Instruction) -> None:
        # Deterministic multiply-step approximation: conditional add
        # on %y's low bit, then rotate the bit stream.
        a, b, _ = self._int_result(instr)
        addend = b if (self.state.y & 1) else 0
        result = a + addend
        self.state.y = _u32((self.state.y >> 1) | ((_u32(a) & 1) << 31))
        carry = bool(_u32(a) + _u32(addend) >= _WORD)
        overflow = not (_INT_MIN <= result < 1 << 31)
        self.state.icc = _alu_icc(result, carry, overflow)
        self.state.write_int(self._dest_name(instr.operands[2]), result)

    def _exec_cmp(self, instr: Instruction) -> None:
        a = self._src(instr.operands[0])
        b = self._src(instr.operands[1]) if len(instr.operands) > 1 else 0
        result = a - b
        carry = bool(_u32(a) < _u32(b))
        overflow = not (_INT_MIN <= result < 1 << 31)
        self.state.icc = _alu_icc(result, carry, overflow)

    def _exec_mov(self, instr: Instruction) -> None:
        self.state.write_int(self._dest_name(instr.operands[1]),
                             self._src(instr.operands[0]))

    def _exec_sethi(self, instr: Instruction) -> None:
        value = self._src(instr.operands[0])
        self.state.write_int(self._dest_name(instr.operands[1]),
                             value << 10)

    def _exec_rdy(self, instr: Instruction) -> None:
        self.state.write_int(self._dest_name(instr.operands[1]),
                             self.state.y)

    def _exec_wry(self, instr: Instruction) -> None:
        self.state.y = _u32(self._src(instr.operands[0]))

    # memory ------------------------------------------------------------------

    def _exec_load(self, instr: Instruction) -> None:
        mem = instr.mem_operand()
        assert mem is not None
        address = self.state.address_of(mem.expr)
        mnemonic = instr.opcode.mnemonic
        size = _LOAD_SIZES[mnemonic]
        dest = instr.operands[1]
        assert isinstance(dest, RegOperand)
        name = dest.register.name
        is_fp = name.startswith("%f")
        if mnemonic == "ldd":
            high = self.state.load_bytes(address, 4)
            low = self.state.load_bytes(address + 4, 4)
            number = int(name[2:]) if is_fp else None
            if is_fp:
                self.state.write_fp_word(name, high)
                self.state.write_fp_word(f"%f{number + 1}", low)
            else:
                from repro.isa.registers import integer_pair, parse_register
                even, odd = integer_pair(parse_register(name))
                self.state.write_int(even.name, high)
                self.state.write_int(odd.name, low)
            return
        value = self.state.load_bytes(address, size)
        if mnemonic == "ldsb" and value >= 1 << 7:
            value -= 1 << 8
        if mnemonic == "ldsh" and value >= 1 << 15:
            value -= 1 << 16
        if is_fp:
            self.state.write_fp_word(name, _u32(value))
        else:
            self.state.write_int(name, value)

    def _exec_store(self, instr: Instruction) -> None:
        mem = instr.mem_operand()
        assert mem is not None
        address = self.state.address_of(mem.expr)
        mnemonic = instr.opcode.mnemonic
        src = instr.operands[0]
        assert isinstance(src, RegOperand)
        name = src.register.name
        is_fp = name.startswith("%f")
        if mnemonic == "std":
            if is_fp:
                number = int(name[2:])
                high = self.state.read_fp_word(name)
                low = self.state.read_fp_word(f"%f{number + 1}")
            else:
                from repro.isa.registers import integer_pair, parse_register
                even, odd = integer_pair(parse_register(name))
                high = self.state.read_int(even.name)
                low = self.state.read_int(odd.name)
            self.state.store_bytes(address, 4, high)
            self.state.store_bytes(address + 4, 4, low)
            return
        value = (self.state.read_fp_word(name) if is_fp
                 else self.state.read_int(name))
        self.state.store_bytes(address, _STORE_SIZES[mnemonic], value)

    def _exec_loadstore(self, instr: Instruction) -> None:
        mem = instr.mem_operand()
        assert mem is not None
        address = self.state.address_of(mem.expr)
        dest = self._dest_name(instr.operands[1])
        if instr.opcode.mnemonic == "swap":
            old = self.state.load_bytes(address, 4)
            self.state.store_bytes(address, 4,
                                   self.state.read_int(dest))
            self.state.write_int(dest, old)
        else:  # ldstub
            old = self.state.load_bytes(address, 1)
            self.state.store_bytes(address, 1, 0xFF)
            self.state.write_int(dest, old)

    # floating point -----------------------------------------------------------

    def _exec_fpop3(self, instr: Instruction) -> None:
        mnemonic = instr.opcode.mnemonic
        double = instr.opcode.double
        read = (self.state.read_double if double
                else self.state.read_single)
        write = (self.state.write_double if double
                 else self.state.write_single)
        a = read(self._dest_name(instr.operands[0]))
        b = read(self._dest_name(instr.operands[1]))
        write(self._dest_name(instr.operands[2]), _FP3[mnemonic](a, b))

    def _exec_fpop2(self, instr: Instruction) -> None:
        mnemonic = instr.opcode.mnemonic
        src = self._dest_name(instr.operands[0])
        dst = self._dest_name(instr.operands[1])
        state = self.state
        if mnemonic == "fmovs":
            state.write_fp_word(dst, state.read_fp_word(src))
        elif mnemonic == "fnegs":
            state.write_fp_word(dst, state.read_fp_word(src) ^ (1 << 31))
        elif mnemonic == "fabss":
            state.write_fp_word(dst, state.read_fp_word(src)
                                & ~(1 << 31))
        elif mnemonic == "fsqrts":
            # Simplification: sqrt of |x| (no NaN plumbing).
            state.write_single(dst, math.sqrt(abs(state.read_single(src))))
        elif mnemonic == "fsqrtd":
            state.write_double(dst, math.sqrt(abs(state.read_double(src))))
        elif mnemonic == "fitos":
            state.write_single(dst, float(_s32(state.read_fp_word(src))))
        elif mnemonic == "fitod":
            state.write_double(dst, float(_s32(state.read_fp_word(src))))
        elif mnemonic == "fstoi":
            state.write_fp_word(dst, _u32(int(state.read_single(src))))
        elif mnemonic == "fdtoi":
            value = state.read_double(src)
            if math.isinf(value) or math.isnan(value):
                value = 0.0
            clamped = max(_INT_MIN, min((1 << 31) - 1, int(value)))
            state.write_fp_word(dst, _u32(clamped))
        elif mnemonic == "fstod":
            state.write_double(dst, state.read_single(src))
        elif mnemonic == "fdtos":
            state.write_single(dst, state.read_double(src))
        else:  # pragma: no cover - table is closed
            raise UnsupportedInstruction(mnemonic)

    def _exec_fcmp(self, instr: Instruction) -> None:
        double = instr.opcode.double
        read = (self.state.read_double if double
                else self.state.read_single)
        a = read(self._dest_name(instr.operands[0]))
        b = read(self._dest_name(instr.operands[1]))
        self.state.fcc = 0 if a == b else (1 if a < b else 2)

    # control / misc -------------------------------------------------------------

    def _exec_none(self, instr: Instruction) -> None:
        pass

    def _branch_taken(self, mnemonic: str) -> bool:
        n, z, v, c = self.state.icc
        fcc = self.state.fcc
        conditions = {
            "ba": True, "bn": False,
            "be": z, "bne": not z,
            "bl": n != v, "bge": n == v,
            "ble": z or (n != v), "bg": not (z or (n != v)),
            "bleu": c or z, "bgu": not (c or z),
            "bcc": not c, "bcs": c,
            "bpos": not n, "bneg": n,
            "bvc": not v, "bvs": v,
            "fbe": fcc == 0, "fbne": fcc != 0,
            "fbl": fcc == 1, "fbg": fcc == 2,
            "fbge": fcc in (0, 2), "fble": fcc in (0, 1),
        }
        return conditions[mnemonic]

    def _exec_branch(self, instr: Instruction) -> None:
        if self._branch_taken(instr.opcode.mnemonic):
            raise UnsupportedInstruction(
                f"taken branch {instr.opcode.mnemonic} (no CFG to follow)")
        # Not taken: fall through; an annulling branch squashes its
        # delay slot.
        if instr.annulled:
            self._annul_next = True

    def _exec_call(self, instr: Instruction) -> None:
        raise UnsupportedInstruction("calls are not executed")

    def _exec_return(self, instr: Instruction) -> None:
        raise UnsupportedInstruction("returns are not executed")


def assign_symbols(state: MachineState,
                   instructions: list[Instruction]) -> None:
    """Pre-assign addresses for every symbol the code references.

    Assignment is by sorted symbol name, so it is independent of
    instruction order -- two schedules of the same block always see
    the same addresses (first-touch assignment would break the
    semantic-equivalence comparisons).
    """
    names: set[str] = set()
    for instr in instructions:
        mem = instr.mem_operand()
        if mem is not None and mem.expr.symbol is not None:
            names.add(mem.expr.symbol)
        for operand in instr.operands:
            if isinstance(operand, SymImmOperand):
                names.add(operand.symbol)
    for name in sorted(names):
        if name not in state.symbols:
            state.symbols[name] = 0x40000000 + 256 * len(state.symbols)


def execute(instructions: list[Instruction],
            state: MachineState) -> MachineState:
    """Execute ``instructions`` on a copy of ``state``; returns it.

    Symbol addresses are pre-assigned in sorted order (see
    :func:`assign_symbols`) so execution results are independent of
    instruction order for symbol discovery.
    """
    instructions = list(instructions)
    clone = state.copy()
    assign_symbols(clone, instructions)
    interp = Interpreter(clone)
    return interp.run(instructions)
