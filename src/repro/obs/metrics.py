"""Typed metrics with labels and a deterministic, jobs-stable snapshot.

A :class:`MetricsRegistry` holds named :class:`Counter`,
:class:`Gauge`, and :class:`Histogram` metrics, each optionally
labelled (``counter.inc(5, builder="n2")``).  The registry's
:meth:`~MetricsRegistry.snapshot` is fully deterministic -- names,
label sets, and values come out sorted -- and is split into two
sections:

* **stable** -- quantities determined by the input program, machine,
  and chain alone: the Table 4/5 work counters, block structure
  (Table 3), makespans, fallback attempts, degradations.  These are
  byte-identical between ``--jobs 1`` and ``--jobs N`` runs (and with
  the pairwise cache on or off); CI enforces it.
* **volatile** -- quantities that legitimately depend on the execution
  configuration: wall-clock seconds, pairwise-cache hit/miss counts
  (each parallel worker warms its own cache, so hit totals shift with
  the worker count), and the supervised pool's resilience counters
  (crashes, retries, quarantines, breaker trips -- environment
  events, not program properties).

Registries cross the batch runner's process boundary as plain dicts:
a worker records per-block metrics into its own registry, ships
:meth:`~MetricsRegistry.dump`, and the parent
:meth:`~MetricsRegistry.merge`\\ s the dumps in program order.  Every
merge operation is commutative and associative (counters and
histogram bins add, gauges combine by their declared aggregation), so
the merged totals equal a serial run's.

The bottom of the module is the repro metric catalog: ``record_*``
helpers the instrumented layers call, so every metric name, help
string, and label set is defined in exactly one place (and
``docs/observability.md`` documents each one against the paper table
it reproduces).
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

#: schema version of the written metrics snapshot document
METRICS_SCHEMA_VERSION = 1

#: default histogram bucket upper bounds (block sizes, counts)
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def _label_key(label_names: tuple[str, ...],
               labels: Mapping[str, object]) -> str:
    """Canonical string form of one label set ("a=x,b=y", sorted)."""
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, "
            f"got {sorted(labels)}")
    return ",".join(f"{k}={labels[k]}" for k in sorted(label_names))


class Metric:
    """Shared shape of one named metric.

    Args:
        name: metric name (``repro_*_total`` for counters).
        help: one-line description.
        labels: label names every update must supply.
        volatile: True for configuration-sensitive quantities
            (excluded from the stable snapshot section).
    """

    kind = "abstract"

    def __init__(self, name: str, help: str,
                 labels: Sequence[str] = (),
                 volatile: bool = False) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self.volatile = volatile
        self.values: dict[str, object] = {}

    def _snapshot_values(self) -> dict:
        return {key: self.values[key] for key in sorted(self.values)}

    def snapshot(self) -> dict:
        """JSON-ready form: kind, help, labels, sorted values."""
        return {"kind": self.kind, "help": self.help,
                "labels": list(self.label_names),
                "values": self._snapshot_values()}

    def merge_values(self, values: dict) -> None:
        """Fold another registry's values for this metric into ours."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum (int or float)."""

    kind = "counter"

    def inc(self, amount: int | float = 1, **labels: object) -> None:
        """Add ``amount`` to the labelled series."""
        key = _label_key(self.label_names, labels)
        self.values[key] = self.values.get(key, 0) + amount

    def merge_values(self, values: dict) -> None:
        for key, value in values.items():
            self.values[key] = self.values.get(key, 0) + value


class Gauge(Metric):
    """A point-in-time value with a declared merge aggregation.

    The aggregation is part of the determinism contract: ``"max"`` is
    commutative and associative, so a gauge merged from parallel
    workers lands on the same value regardless of merge order and may
    live in the *stable* snapshot section.  ``"last"`` takes the
    caller's program order, which has no order-free parallel meaning
    -- so an ``agg="last"`` gauge must be declared ``volatile``, and
    the constructor rejects the stable combination outright rather
    than letting a ``--jobs 4`` snapshot silently diverge from
    ``--jobs 1``.

    Args:
        agg: how concurrent/sequential observations combine --
            ``"max"`` (default; commutative, so parallel merges are
            order-independent) or ``"last"`` (program-order overwrite;
            requires ``volatile=True``).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 labels: Sequence[str] = (), volatile: bool = False,
                 agg: str = "max") -> None:
        if agg not in ("max", "last"):
            raise ValueError(f"unknown gauge aggregation {agg!r}")
        if agg == "last" and not volatile:
            raise ValueError(
                f"gauge {name!r}: agg='last' is merge-order dependent "
                f"and must be volatile (stable-section gauges need a "
                f"commutative aggregation such as 'max')")
        super().__init__(name, help, labels, volatile)
        self.agg = agg

    def set(self, value: int | float, **labels: object) -> None:
        """Observe a value (combined per the gauge's aggregation)."""
        key = _label_key(self.label_names, labels)
        if self.agg == "max" and key in self.values:
            if value <= self.values[key]:  # type: ignore[operator]
                return
        self.values[key] = value

    def snapshot(self) -> dict:
        doc = super().snapshot()
        doc["agg"] = self.agg
        return doc

    def merge_values(self, values: dict) -> None:
        for key, value in values.items():
            if self.agg == "max" and key in self.values:
                if value <= self.values[key]:  # type: ignore[operator]
                    continue
            self.values[key] = value


class Histogram(Metric):
    """Bucketed observations: count, sum, cumulative bucket counts.

    Args:
        buckets: ascending upper bounds; an implicit ``+Inf`` bucket
            tops them off.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labels: Sequence[str] = (), volatile: bool = False,
                 buckets: Sequence[int | float] = DEFAULT_BUCKETS
                 ) -> None:
        super().__init__(name, help, labels, volatile)
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be ascending")

    def observe(self, value: int | float, **labels: object) -> None:
        """Record one observation."""
        key = _label_key(self.label_names, labels)
        series = self.values.get(key)
        if series is None:
            series = {"count": 0, "sum": 0,
                      "bins": [0] * (len(self.buckets) + 1)}
            self.values[key] = series
        series["count"] += 1  # type: ignore[index]
        series["sum"] += value  # type: ignore[index]
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series["bins"][i] += 1  # type: ignore[index]
                break
        else:
            series["bins"][-1] += 1  # type: ignore[index]

    def _snapshot_values(self) -> dict:
        out = {}
        for key in sorted(self.values):
            series = self.values[key]
            cumulative: dict[str, int] = {}
            running = 0
            for bound, count in zip(self.buckets, series["bins"]):
                running += count
                cumulative[str(bound)] = running
            cumulative["+Inf"] = running + series["bins"][-1]
            out[key] = {"count": series["count"],
                        "sum": series["sum"], "buckets": cumulative}
        return out

    def snapshot(self) -> dict:
        doc = super().snapshot()
        doc["bucket_bounds"] = list(self.buckets)
        return doc

    def merge_values(self, values: dict) -> None:
        for key, series in values.items():
            mine = self.values.get(key)
            if mine is None:
                self.values[key] = {
                    "count": series["count"], "sum": series["sum"],
                    "bins": list(series["bins"])}
                continue
            mine["count"] += series["count"]
            mine["sum"] += series["sum"]
            mine["bins"] = [a + b for a, b in zip(mine["bins"],
                                                  series["bins"])]


class MetricsRegistry:
    """A named collection of metrics with deterministic snapshots.

    Metric accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) are get-or-create: the first call defines the
    metric, later calls return the existing one (and reject a
    conflicting redefinition), so ``record_*`` helpers can call them
    unconditionally on every observation.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __bool__(self) -> bool:
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], volatile: bool,
                       **extra: object) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, labels, volatile, **extra)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls) \
                or metric.label_names != tuple(labels) \
                or metric.volatile != volatile:
            raise ValueError(
                f"metric {name!r} already registered with a "
                f"different definition")
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = (),
                volatile: bool = False) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labels,
                                   volatile)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (), volatile: bool = False,
              agg: str = "max") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labels,
                                   volatile,
                                   agg=agg)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (), volatile: bool = False,
                  buckets: Sequence[int | float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(
            Histogram, name, help, labels, volatile,
            buckets=buckets)  # type: ignore[return-value]

    def value(self, name: str, default: object = None,
              **labels: object) -> object:
        """One metric series' current value (reports, tests)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        key = _label_key(metric.label_names, labels)
        return metric.values.get(key, default)

    def snapshot(self) -> dict:
        """The full snapshot document: stable + volatile sections.

        The ``stable`` section is byte-stable across ``--jobs N`` and
        cache configurations; everything configuration-sensitive is
        confined to ``volatile``.
        """
        stable: dict[str, dict] = {}
        volatile: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            (volatile if metric.volatile else stable)[name] = \
                metric.snapshot()
        return {"schema_version": METRICS_SCHEMA_VERSION,
                "stable": stable, "volatile": volatile}

    def dump(self) -> list[dict]:
        """Picklable full state, for crossing process boundaries."""
        out = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"name": name, "kind": metric.kind,
                     "help": metric.help,
                     "labels": list(metric.label_names),
                     "volatile": metric.volatile,
                     "values": metric.values}
            if isinstance(metric, Gauge):
                entry["agg"] = metric.agg
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out.append(entry)
        return out

    def merge(self, dumped: list[dict]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Unknown metrics are registered on the fly; known ones combine
        values (counters and histogram bins add, gauges aggregate).
        Call in program order -- every combination is commutative
        except ``agg="last"`` gauges, which take the caller's order.
        """
        for entry in dumped:
            name = entry["name"]
            kind = entry["kind"]
            if kind == "counter":
                metric: Metric = self.counter(
                    name, entry["help"], entry["labels"],
                    entry["volatile"])
            elif kind == "gauge":
                metric = self.gauge(name, entry["help"],
                                    entry["labels"], entry["volatile"],
                                    agg=entry.get("agg", "max"))
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry["help"], entry["labels"],
                    entry["volatile"],
                    buckets=entry.get("buckets", DEFAULT_BUCKETS))
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
            metric.merge_values(entry["values"])


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write the snapshot document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.snapshot(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def read_metrics(path: str) -> dict:
    """Load a snapshot document written by :func:`write_metrics`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# -- the repro metric catalog ----------------------------------------------
#
# One helper per instrumentation site; each defines its metric names,
# help strings, and labels exactly once.  All take the registry first
# and are no-ops when it is None, so call sites stay one-liners.

#: BuildStats fields mirrored into per-builder counters
_BUILD_COUNTER_FIELDS = (
    ("comparisons", "Node-pair dependence tests (Table 4's n**2 "
                    "cost)."),
    ("table_probes", "Resource-table lookups (Table 5's "
                     "table-building cost)."),
    ("alias_checks", "Unique memory-expression pairs disambiguated."),
    ("arcs_added", "Arcs present in finished DAGs."),
    ("arcs_merged", "Duplicate (parent, child) arcs merged away."),
    ("arcs_suppressed", "Arcs skipped by reachability-bitmap "
                        "insertion."),
    ("bitmap_ops", "Reachability-bitmap queries and updates."),
)


def record_build(metrics: MetricsRegistry | None, builder: str,
                 stats: object, words_touched: int = 0) -> None:
    """Record one accepted construction's work counters (Tables 4/5).

    Args:
        metrics: the registry (None = off).
        builder: chain/CLI name of the builder that built the DAG.
        stats: a :class:`~repro.dag.builders.base.BuildStats`-shaped
            object (duck-typed to avoid an import cycle).
        words_touched: reachability-map words the build touched.
    """
    if metrics is None:
        return
    metrics.counter("repro_build_blocks_total",
                    "Accepted DAG constructions per builder.",
                    labels=("builder",)).inc(1, builder=builder)
    for field, help_text in _BUILD_COUNTER_FIELDS:
        metrics.counter(f"repro_build_{field}_total", help_text,
                        labels=("builder",)).inc(
            getattr(stats, field), builder=builder)
    metrics.counter("repro_bitmap_words_touched_total",
                    "Reachability-map words initialized or OR-ed "
                    "(bitmap cost of Table 5).",
                    labels=("builder",)).inc(words_touched,
                                             builder=builder)
    metrics.gauge("repro_block_arcs_max",
                  "Largest per-block arc count (Table 4/5 arcs/bb "
                  "max).").set(getattr(stats, "arcs_added", 0))


def record_block_structure(metrics: MetricsRegistry | None,
                           n_instructions: int,
                           n_mem_exprs: int) -> None:
    """Record one block's structural numbers (Table 3)."""
    if metrics is None:
        return
    metrics.counter("repro_blocks_total",
                    "Basic blocks processed.").inc(1)
    metrics.counter("repro_instructions_total",
                    "Instructions processed.").inc(n_instructions)
    metrics.gauge("repro_block_size_max",
                  "Largest block, in instructions (Table 3 insts/bb "
                  "max).").set(n_instructions)
    metrics.histogram("repro_block_size_instructions",
                      "Block size distribution (Table 3 insts/bb)."
                      ).observe(n_instructions)
    metrics.counter("repro_mem_exprs_total",
                    "Unique memory expressions, summed over blocks "
                    "(Table 3 memexpr/bb avg numerator)."
                    ).inc(n_mem_exprs)
    metrics.gauge("repro_mem_exprs_max",
                  "Largest per-block unique-memory-expression count "
                  "(Table 3 memexpr/bb max).").set(n_mem_exprs)


def record_outcome(metrics: MetricsRegistry | None,
                   outcome: object, replayed: bool = False) -> None:
    """Record one block outcome's schedule and fallback accounting.

    Args:
        metrics: the registry (None = off).
        outcome: a :class:`~repro.runner.fallback.BlockOutcome`-shaped
            object (``makespan``, ``original_makespan``, ``degraded``,
            ``attempts`` with ``builder``/``stage``/``work``).
        replayed: True when the outcome came from a journal.
    """
    if metrics is None:
        return
    metrics.counter("repro_makespan_cycles_total",
                    "Accepted-schedule makespans, summed (Table 5 "
                    "end-to-end quality).").inc(outcome.makespan)
    metrics.counter("repro_original_makespan_cycles_total",
                    "Original-order makespans, summed.").inc(
        outcome.original_makespan)
    if outcome.degraded:
        metrics.counter("repro_blocks_degraded_total",
                        "Blocks that fell back to original order."
                        ).inc(1)
        metrics.counter("repro_degraded_makespan_cycles_total",
                        "Makespan charged by degraded blocks."
                        ).inc(outcome.makespan)
    if replayed:
        metrics.counter("repro_blocks_replayed_total",
                        "Blocks replayed from a journal instead of "
                        "recomputed.").inc(1)
    attempts = list(outcome.attempts)
    for attempt in attempts:
        metrics.counter("repro_fallback_attempts_total",
                        "Builder attempts by chain entry and final "
                        "stage ('ok' = accepted).",
                        labels=("builder", "stage")).inc(
            1, builder=attempt.builder, stage=attempt.stage)
    for attempt in attempts[:-1]:
        if attempt.work is not None:
            metrics.counter("repro_fallback_wasted_work_total",
                            "Construction work spent on rejected "
                            "chain attempts.").inc(attempt.work)
    for attempt in attempts:
        if attempt.work is not None:
            metrics.counter("repro_watchdog_work_spent_total",
                            "Budgeted construction work across all "
                            "attempts (comparisons + probes + alias "
                            "checks + bitmap ops).").inc(attempt.work)


def record_block_wall(metrics: MetricsRegistry | None,
                      seconds: float) -> None:
    """Record one block's wall-clock spend (volatile)."""
    if metrics is None:
        return
    metrics.counter("repro_block_wall_seconds_total",
                    "Wall-clock seconds spent scheduling blocks "
                    "(host- and load-dependent).",
                    volatile=True).inc(seconds)


def record_cache(metrics: MetricsRegistry | None, hits: int,
                 misses: int, entries: int | None = None,
                 recipes: int | None = None) -> None:
    """Record pairwise-cache activity (volatile: each parallel worker
    warms its own cache, so totals shift with the worker count)."""
    if metrics is None:
        return
    metrics.counter("repro_cache_hits_total",
                    "PairwiseCache recipe replays.",
                    volatile=True).inc(hits)
    metrics.counter("repro_cache_misses_total",
                    "PairwiseCache fresh constructions.",
                    volatile=True).inc(misses)
    if entries is not None:
        metrics.gauge("repro_cache_entries",
                      "Distinct block fingerprints cached.",
                      volatile=True).set(entries)
    if recipes is not None:
        metrics.gauge("repro_cache_recipes",
                      "Recorded per-builder arc recipes.",
                      volatile=True).set(recipes)


def record_verify_check(metrics: MetricsRegistry | None, check: str,
                        passed: bool) -> None:
    """Record one independent-verification check outcome."""
    if metrics is None:
        return
    metrics.counter("repro_verify_checks_total",
                    "Independent verification checks by name and "
                    "result.",
                    labels=("check", "result")).inc(
        1, check=check, result="pass" if passed else "fail")


def record_incremental_repair(metrics: MetricsRegistry | None,
                              visited: int, full_nodes: int) -> None:
    """Record one incremental heuristic repair's frontier size.

    Args:
        metrics: the registry (None = off).
        visited: nodes the frontier worklists actually recomputed.
        full_nodes: nodes the replaced full passes would have visited
            (2x the DAG's real-node count: forward + backward).
    """
    if metrics is None:
        return
    metrics.counter("repro_incremental_nodes_visited_total",
                    "Nodes recomputed by incremental heuristic "
                    "repair.").inc(visited)
    metrics.counter("repro_incremental_full_pass_nodes_total",
                    "Nodes a full forward+backward re-pass would "
                    "have visited instead.").inc(full_nodes)


# -- resilience (supervised pool) ------------------------------------------
#
# All volatile: crashes, retries, and breaker trips depend on the
# execution environment (signals, memory pressure, injected chaos,
# worker count), never on the input program alone.  The stable section
# must stay byte-identical between a clean ``--jobs 1`` and
# ``--jobs N`` run, and these fire only when workers actually die.


def record_worker_crash(metrics: MetricsRegistry | None,
                        kind: str) -> None:
    """Record one worker death attributed to a running task.

    Args:
        metrics: the registry (None = off).
        kind: crash classification -- ``"signal N"``, ``"exit N"``,
            ``"hang"``, or ``"task-error"`` (worker survived but the
            task payload was unusable).
    """
    if metrics is None:
        return
    metrics.counter("repro_worker_crashes_total",
                    "Worker deaths attributed to a running block, "
                    "by crash kind.",
                    labels=("kind",), volatile=True).inc(1, kind=kind)


def record_worker_restart(metrics: MetricsRegistry | None) -> None:
    """Record one replacement worker spawn."""
    if metrics is None:
        return
    metrics.counter("repro_worker_restarts_total",
                    "Replacement workers spawned after a death.",
                    volatile=True).inc(1)


def record_retry(metrics: MetricsRegistry | None) -> None:
    """Record one block re-enqueue after a crash or poisoned payload."""
    if metrics is None:
        return
    metrics.counter("repro_retries_total",
                    "Block re-enqueues after worker crashes (with "
                    "exponential backoff).", volatile=True).inc(1)


def record_quarantine(metrics: MetricsRegistry | None) -> None:
    """Record one block quarantined after exhausting its retries."""
    if metrics is None:
        return
    metrics.counter("repro_quarantined_blocks_total",
                    "Blocks quarantined after exhausting the retry "
                    "budget.", volatile=True).inc(1)


# -- serving (repro serve / loadtest) --------------------------------------
#
# All volatile: request latencies, queue depths, and shed/reject
# counts depend on arrival timing and host load, never on the input
# program alone.

#: request latency histogram bucket bounds, seconds
REQUEST_SECONDS_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                           1.0, 2.5, 5.0, 10.0)


def record_request(metrics: MetricsRegistry | None, tenant: str,
                   status: str, seconds: float | None = None) -> None:
    """Record one served request's terminal status (and latency).

    Args:
        metrics: the registry (None = off).
        tenant: the tenant the request was charged to.
        status: terminal status -- ``"ok"``, ``"timeout"`` (deadline
            expired mid-batch), ``"cancelled"`` (client disconnect or
            drain kill), or ``"error"``.
        seconds: end-to-end request latency (None for requests that
            never started executing).
    """
    if metrics is None:
        return
    metrics.counter("repro_requests_total",
                    "Served requests by tenant and terminal status.",
                    labels=("tenant", "status"), volatile=True).inc(
        1, tenant=tenant, status=status)
    if seconds is not None:
        metrics.histogram("repro_request_seconds",
                          "End-to-end request latency, seconds.",
                          volatile=True,
                          buckets=REQUEST_SECONDS_BUCKETS
                          ).observe(seconds)


def record_rejection(metrics: MetricsRegistry | None, tenant: str,
                     reason: str) -> None:
    """Record one typed admission-control rejection (never silent)."""
    if metrics is None:
        return
    metrics.counter("repro_rejected_requests_total",
                    "Requests refused by admission control, by tenant "
                    "and reason.",
                    labels=("tenant", "reason"), volatile=True).inc(
        1, tenant=tenant, reason=reason)


def record_shed_blocks(metrics: MetricsRegistry | None, n: int,
                       reason: str) -> None:
    """Record blocks shed by an admitted request.

    Args:
        metrics: the registry (None = off).
        n: blocks shed.
        reason: why -- ``"deadline"``, ``"disconnect"``, or
            ``"drain"``.
    """
    if metrics is None or n <= 0:
        return
    metrics.counter("repro_shed_blocks_total",
                    "Blocks shed by admitted requests (deadline "
                    "expiry, client disconnect, drain kill).",
                    labels=("reason",), volatile=True).inc(
        n, reason=reason)


def record_queue_depth(metrics: MetricsRegistry | None,
                       depth: int) -> None:
    """Record the admission queue depth at one observation point.

    ``agg="last"`` matters: with the default max aggregation the
    gauge would latch at its all-time peak and read as permanent
    saturation after any burst.  The scrape sees the most recent
    occupancy; per-window peaks come from the telemetry window.
    """
    if metrics is None:
        return
    metrics.gauge("repro_queue_depth_max",
                  "Request queue occupancy (admitted, not yet "
                  "finished) at the last observation.",
                  volatile=True, agg="last").set(depth)


def record_deadline(metrics: MetricsRegistry | None,
                    met: bool) -> None:
    """Record whether one deadline-carrying request met its deadline."""
    if metrics is None:
        return
    metrics.counter("repro_request_deadlines_total",
                    "Deadline-carrying requests by outcome.",
                    labels=("result",), volatile=True).inc(
        1, result="met" if met else "missed")


def record_breaker_transition(metrics: MetricsRegistry | None,
                              builder: str, to_state: str,
                              state_code: int) -> None:
    """Record one circuit-breaker state transition.

    Args:
        metrics: the registry (None = off).
        builder: chain entry whose breaker moved.
        to_state: "closed", "open", or "half-open".
        state_code: numeric encoding for the state gauge (0 closed,
            1 half-open, 2 open).
    """
    if metrics is None:
        return
    metrics.counter("repro_breaker_transitions_total",
                    "Circuit-breaker state transitions by builder "
                    "and target state.",
                    labels=("builder", "state"), volatile=True).inc(
        1, builder=builder, state=to_state)
    metrics.gauge("repro_breaker_state",
                  "Current breaker state per builder (0 closed, "
                  "1 half-open, 2 open).",
                  labels=("builder",), volatile=True,
                  agg="last").set(state_code, builder=builder)


def record_wal_recovery(metrics: MetricsRegistry | None,
                        replayed: int, dropped: int,
                        recovered: int) -> None:
    """Record one WAL startup recovery (the durability tentpole).

    Args:
        metrics: the registry (None = off).
        replayed: records read back intact from the WAL.
        dropped: torn-tail lines truncated off the WAL.
        recovered: accepted-but-unfinished requests re-enqueued.
    """
    if metrics is None:
        return
    metrics.gauge("repro_wal_replayed",
                  "WAL records replayed at the last daemon start.",
                  volatile=True).set(replayed)
    metrics.gauge("repro_wal_dropped",
                  "Torn-tail WAL lines truncated at the last daemon "
                  "start.", volatile=True).set(dropped)
    metrics.counter("repro_wal_recovered_requests_total",
                    "Accepted-but-unfinished requests re-enqueued "
                    "from the WAL across daemon restarts.",
                    volatile=True).inc(recovered)


def record_overload_transition(metrics: MetricsRegistry | None,
                               from_level: str, to_level: str,
                               direction: str) -> None:
    """Record one degradation-ladder transition.

    The live level itself is exported as the hand-built
    ``repro_overload_level`` gauge in the server's exposition (it
    must exist even when no registry does), so only the transition
    counter lives here.

    Args:
        metrics: the registry (None = off).
        from_level / to_level: level names (e.g. "normal",
            "brownout").
        direction: "ascend" or "descend".
    """
    if metrics is None:
        return
    metrics.counter("repro_overload_transitions_total",
                    "Degradation-ladder transitions by source, "
                    "target, and direction.",
                    labels=("from", "to", "direction"),
                    volatile=True).inc(
        1, **{"from": from_level, "to": to_level,
              "direction": direction})


def record_overload_rejection(metrics: MetricsRegistry | None,
                              tenant_class: str) -> None:
    """Record one typed ``overload`` rejection by tenant class."""
    if metrics is None:
        return
    metrics.counter("repro_overload_rejections_total",
                    "Requests shed by the degradation ladder, by "
                    "tenant priority class.",
                    labels=("tenant_class",), volatile=True).inc(
        1, tenant_class=tenant_class)


def record_wal_dedup(metrics: MetricsRegistry | None) -> None:
    """Record one request answered from the finished-key index
    (exactly-once results: nothing recomputed, nothing charged)."""
    if metrics is None:
        return
    metrics.counter("repro_wal_deduped_requests_total",
                    "Requests answered from the WAL-backed "
                    "idempotency index instead of recomputed.",
                    volatile=True).inc(1)
