"""Deterministic work-profiler: counters attributed to a call tree.

A wall-clock sampling profiler answers "where did the time go" with
an answer that changes every run.  This profiler answers the paper's
actual question -- *where do the work units go* -- by attributing the
machine-independent work counters the builders already maintain
(comparisons, table probes, alias checks, bitmap operations,
reachability words touched, heuristic node visits, instructions
issued) to a ``workload > builder > phase > counter`` call tree.
Because every leaf is a deterministic counter, the profile is
byte-identical across runs, machines, and ``--jobs N``.

Exports:

* collapsed-stack format (``a;b;c;d N`` lines, sorted) -- the input
  format of Brendan Gregg's ``flamegraph.pl`` and of every modern
  flamegraph viewer, so ``repro profile --out work.collapsed`` plugs
  straight into existing tooling;
* a Markdown "where the work goes" table per builder x workload, the
  Tables 4/5 story as a live report.

All heavy imports happen inside functions so ``repro.obs`` stays
importable without pulling in the builder stack, and so the
multiprocessing workers (``--jobs N``) re-import cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: workloads profiled by default (the bench population's kernels)
PROFILE_KERNELS = ("daxpy", "livermore1", "dot_product",
                   "superscalar_mix")

#: builder-phase stack layout, documented once:
#: workload ; builder ; phase ; counter
PROFILE_DEPTH = 4

#: build-phase counters taken from
#: :class:`repro.dag.builders.base.BuildStats`
BUILD_COUNTERS = ("comparisons", "table_probes", "alias_checks",
                  "arcs_added", "arcs_merged", "arcs_suppressed",
                  "bitmap_ops")

_MACHINE_FACTORIES = {
    "generic": "generic_risc",
    "sparc": "sparcstation2_like",
    "rs6000": "rs6000_like",
    "superscalar2": "superscalar2",
}


def _machine(name: str):
    from repro.errors import ReproError
    from repro.machine import presets
    try:
        factory = _MACHINE_FACTORIES[name]
    except KeyError:
        raise ReproError(f"unknown machine preset: {name!r}") from None
    return getattr(presets, factory)()


@dataclass
class WorkProfile:
    """An accumulated work-unit call tree.

    ``stacks`` maps frame tuples (``(workload, builder, phase,
    counter)``) to non-negative unit counts.  Merging is addition, so
    the accumulated totals are independent of the order blocks were
    profiled in -- the property that makes ``--jobs N`` byte-stable.
    """

    machine: str = "generic"
    copies: int = 0
    stacks: dict[tuple, int] = field(default_factory=dict)

    def add(self, stack: tuple, units: int) -> None:
        """Add ``units`` work units at frame tuple ``stack``."""
        if units:
            self.stacks[stack] = self.stacks.get(stack, 0) + units

    def merge(self, leaves: dict) -> None:
        """Fold one block's leaf dict into the profile (addition)."""
        for stack, units in leaves.items():
            self.add(stack, units)

    def total(self) -> int:
        return sum(self.stacks.values())

    def collapsed(self) -> str:
        """Collapsed-stack export (``a;b;c;d N`` per line, sorted).

        Sorted lines plus commutative accumulation make the output
        byte-identical for a given workload regardless of run order
        or worker count.
        """
        lines = [f"{';'.join(stack)} {units}"
                 for stack, units in sorted(self.stacks.items())]
        return "\n".join(lines) + "\n" if lines else ""

    def by_builder_workload(self) -> dict:
        """``{builder: {workload: units}}`` totals (all phases)."""
        table: dict[str, dict[str, int]] = {}
        for (workload, builder, _phase, _counter), units \
                in self.stacks.items():
            row = table.setdefault(builder, {})
            row[workload] = row.get(workload, 0) + units
        return table

    def by_phase(self) -> dict:
        """``{builder: {phase: units}}`` totals (all workloads)."""
        table: dict[str, dict[str, int]] = {}
        for (_workload, builder, phase, _counter), units \
                in self.stacks.items():
            row = table.setdefault(builder, {})
            row[phase] = row.get(phase, 0) + units
        return table

    def markdown(self) -> str:
        """The "where the work goes" report (GitHub Markdown)."""
        kernels = sorted({s[0] for s in self.stacks})
        lines = [
            "# Where the work goes",
            "",
            f"Machine `{self.machine}`, {self.copies} copies per "
            f"kernel, {self.total()} total work units.  Counts are "
            "deterministic work counters (not wall clock); identical "
            "across runs and `--jobs N`.",
            "",
            "## Work units by builder x workload",
            "",
            "| builder | " + " | ".join(kernels) + " | total |",
            "|---|" + "---|" * (len(kernels) + 1),
        ]
        table = self.by_builder_workload()
        for builder in sorted(table):
            row = table[builder]
            cells = [str(row.get(k, 0)) for k in kernels]
            lines.append(f"| `{builder}` | " + " | ".join(cells)
                         + f" | {sum(row.values())} |")
        phases = sorted({s[2] for s in self.stacks})
        lines += [
            "",
            "## Work units by builder x phase",
            "",
            "| builder | " + " | ".join(phases) + " |",
            "|---|" + "---|" * len(phases),
        ]
        phase_table = self.by_phase()
        for builder in sorted(phase_table):
            row = phase_table[builder]
            cells = [str(row.get(p, 0)) for p in phases]
            lines.append(f"| `{builder}` | " + " | ".join(cells) + " |")
        return "\n".join(lines) + "\n"


def _workload_blocks(kernel: str, copies: int):
    """The profiled block population for one kernel (deterministic)."""
    from repro.asm import parse_asm
    from repro.cfg import apply_window, partition_blocks
    from repro.workloads.kernels import (straightline_body,
                                         straightline_source)
    body_len = len(straightline_body(kernel))
    program = parse_asm(straightline_source(kernel, copies),
                        name=kernel)
    return [b for b in apply_window(partition_blocks(program), body_len)
            if b.instructions]


def profile_block(kernel: str, block, machine,
                  builders=None) -> dict:
    """Profile one block: leaf dict of ``{stack: units}``.

    Runs each builder's full pipeline -- build, the backward
    heuristic pass, and list scheduling -- and attributes each phase's
    deterministic work counters to the four-deep stack.  The
    heuristics phase counts node visits (one per DAG node per pass,
    exactly the reverse-walk driver's visit count); the schedule phase
    counts instructions issued.
    """
    from repro.heuristics.passes import backward_pass
    from repro.pipeline import SECTION6_PRIORITY
    from repro.runner.fallback import BUILDER_CLASSES
    from repro.scheduling.list_scheduler import schedule_forward

    names = sorted(builders) if builders else sorted(BUILDER_CLASSES)
    leaves: dict[tuple, int] = {}

    def add(stack: tuple, units: int) -> None:
        if units:
            leaves[stack] = leaves.get(stack, 0) + units

    for name in names:
        builder = BUILDER_CLASSES[name](machine)
        outcome = builder.build(block)
        for counter in BUILD_COUNTERS:
            add((kernel, name, "build", counter),
                getattr(outcome.stats, counter))
        rmap = getattr(builder, "reachability", None)
        if rmap is not None:
            add((kernel, name, "build", "words_touched"),
                rmap.words_touched)
        backward_pass(outcome.dag, require_est=False)
        add((kernel, name, "heuristics", "node_visits"),
            len(outcome.dag.nodes))
        sched = schedule_forward(outcome.dag, machine,
                                 SECTION6_PRIORITY)
        add((kernel, name, "schedule", "instructions_issued"),
            len(sched.order))
    return leaves


def _profile_task(payload: tuple) -> dict:
    """Multiprocessing worker body: profile one ``(kernel, block)``.

    Stringified stacks keep the wire format trivially picklable; the
    parent re-tuples them before merging.
    """
    kernel, block, machine_name, builders = payload
    machine = _machine(machine_name)
    leaves = profile_block(kernel, block, machine, builders)
    return {";".join(stack): units for stack, units in leaves.items()}


def profile_workload(machine_name: str = "generic",
                     kernels=PROFILE_KERNELS, copies: int = 8,
                     builders=None, jobs: int = 1) -> WorkProfile:
    """Profile the kernel population into one :class:`WorkProfile`.

    Args:
        machine_name: machine preset name (resolved per worker so the
            task payloads stay picklable).
        kernels: workload kernel names to profile.
        copies: straight-line body repetitions per kernel.
        builders: builder names to include (default: all).
        jobs: worker processes; results are merged in submission
            order and merging is commutative addition, so any ``jobs``
            value produces byte-identical exports.
    """
    machine = _machine(machine_name)
    tasks = [(kernel, block, machine_name,
              tuple(sorted(builders)) if builders else None)
             for kernel in kernels
             for block in _workload_blocks(kernel, copies)]
    profile = WorkProfile(machine=machine_name, copies=copies)
    if jobs >= 2 and len(tasks) > 1:
        import concurrent.futures
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs) as pool:
            for wire in pool.map(_profile_task, tasks):
                profile.merge({tuple(key.split(";")): units
                               for key, units in wire.items()})
    else:
        for kernel, block, _mname, names in tasks:
            profile.merge(profile_block(kernel, block, machine, names))
    return profile


def write_profile(profile: WorkProfile, path: str,
                  markdown_path: str | None = None) -> None:
    """Write the collapsed-stack export (and optional Markdown)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(profile.collapsed())
    if markdown_path:
        with open(markdown_path, "w", encoding="utf-8") as handle:
            handle.write(profile.markdown())
