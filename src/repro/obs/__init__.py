"""Unified observability: structured tracing, metrics, reporting.

The paper's entire evaluation is measurement -- Tables 3-5 count
comparisons, table operations, and end-to-end run times -- and this
package is the common surface those quantities flow through:

* :mod:`repro.obs.trace` -- a :class:`~repro.obs.trace.Tracer` with
  nested spans and point events, a no-op
  :class:`~repro.obs.trace.NullTracer` default so hot paths pay only a
  truthiness check, and exporters for JSONL and the Chrome
  ``chrome://tracing`` trace-event format;
* :mod:`repro.obs.metrics` -- typed counters/gauges/histograms with
  labels and a deterministic snapshot that is byte-stable under
  ``--jobs N`` (configuration-sensitive quantities such as cache hit
  rates and wall clocks live in a separate *volatile* section);
* :mod:`repro.obs.report` -- ``repro report``: paper-style Tables
  3/4/5 plus cache/fallback/degradation summaries rendered from a run
  journal and/or a metrics snapshot, as Markdown and JSON;
* :mod:`repro.obs.expo` -- Prometheus text exposition of a metrics
  snapshot plus :class:`~repro.obs.expo.RollingWindow`, the
  ring-buffer sliding-window aggregates (p50/p99 latency, queue
  depth, shed/reject rates) behind ``repro serve --telemetry``;
* :mod:`repro.obs.profile` -- ``repro profile``: the deterministic
  work-profiler attributing builder work counters to a
  workload/builder/phase call tree, exported as collapsed stacks for
  flamegraph tooling and a Markdown "where the work goes" table.

Instrumented layers (``repro schedule``/``verify``/``bench``,
:func:`repro.runner.batch.run_batch`,
:func:`repro.runner.fallback.schedule_block_resilient`,
:func:`repro.pipeline.run_pipeline`,
:func:`repro.verify.checker.verify_schedule`) accept ``tracer=`` and
``metrics=`` keywords; both default to off and never change schedules,
journals, or stdout.
"""

from repro.obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    RollingWindow,
    parse_exposition,
    render_exposition,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_metrics,
    write_metrics,
)
from repro.obs.profile import (
    WorkProfile,
    profile_block,
    profile_workload,
    write_profile,
)
from repro.obs.report import (
    load_journal_blocks,
    render_markdown,
    report_from,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    span_tree,
    write_chrome_trace,
    write_trace,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RollingWindow",
    "Tracer",
    "WorkProfile",
    "load_journal_blocks",
    "parse_exposition",
    "profile_block",
    "profile_workload",
    "read_metrics",
    "render_markdown",
    "render_exposition",
    "report_from",
    "span_tree",
    "write_chrome_trace",
    "write_metrics",
    "write_profile",
    "write_trace",
    "write_trace_jsonl",
]
