"""Unified observability: structured tracing, metrics, reporting.

The paper's entire evaluation is measurement -- Tables 3-5 count
comparisons, table operations, and end-to-end run times -- and this
package is the common surface those quantities flow through:

* :mod:`repro.obs.trace` -- a :class:`~repro.obs.trace.Tracer` with
  nested spans and point events, a no-op
  :class:`~repro.obs.trace.NullTracer` default so hot paths pay only a
  truthiness check, and exporters for JSONL and the Chrome
  ``chrome://tracing`` trace-event format;
* :mod:`repro.obs.metrics` -- typed counters/gauges/histograms with
  labels and a deterministic snapshot that is byte-stable under
  ``--jobs N`` (configuration-sensitive quantities such as cache hit
  rates and wall clocks live in a separate *volatile* section);
* :mod:`repro.obs.report` -- ``repro report``: paper-style Tables
  3/4/5 plus cache/fallback/degradation summaries rendered from a run
  journal and/or a metrics snapshot, as Markdown and JSON.

Instrumented layers (``repro schedule``/``verify``/``bench``,
:func:`repro.runner.batch.run_batch`,
:func:`repro.runner.fallback.schedule_block_resilient`,
:func:`repro.pipeline.run_pipeline`,
:func:`repro.verify.checker.verify_schedule`) accept ``tracer=`` and
``metrics=`` keywords; both default to off and never change schedules,
journals, or stdout.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    read_metrics,
    write_metrics,
)
from repro.obs.report import (
    load_journal_blocks,
    render_markdown,
    report_from,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    span_tree,
    write_chrome_trace,
    write_trace,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "load_journal_blocks",
    "read_metrics",
    "render_markdown",
    "report_from",
    "span_tree",
    "write_chrome_trace",
    "write_metrics",
    "write_trace",
    "write_trace_jsonl",
]
