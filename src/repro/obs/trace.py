"""Structured tracing: nested spans, point events, flame-chart export.

A :class:`Tracer` records two entry kinds into an in-memory list:

* a **span** -- a named, timed interval with key/value attributes and
  a parent span (``with tracer.span("build", builder="n2") as attrs``);
  the yielded ``attrs`` dict is mutable, so outcomes discovered at the
  end of the interval (the accepted stage, a failure) can be attached
  before the span closes;
* an **event** -- a named instant (a cache hit, a budget trip, a
  degradation) attached to whichever span is open.

Entries are plain dicts of primitives, so they pickle across the batch
runner's worker processes: a worker traces its blocks into its own
:class:`Tracer` and the parent :meth:`Tracer.absorb`\\ s the entries in
program order, remapping span ids and re-rooting them under the batch
span so the merged tree is identical to a serial run's (worker ids and
timestamps aside -- see :func:`span_tree`).

The default in instrumented code paths is :data:`NULL_TRACER`, a falsy
no-op, so a hot loop pays one truthiness check (``if tracer:``) when
tracing is off.

Exporters: :func:`write_trace_jsonl` (one entry per line, greppable)
and :func:`write_chrome_trace` (the Chrome trace-event format --
load the file in ``chrome://tracing`` or https://ui.perfetto.dev to
see a whole ``run_batch --jobs N`` as a flame chart, one track per
worker).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence


class NullTracer:
    """The no-op tracer: falsy, records nothing, costs nothing.

    Every :class:`Tracer` method exists here as a no-op, so code can
    hold a tracer unconditionally and either guard hot calls with
    ``if tracer:`` or just call through (a span on the null tracer is
    a reusable empty context manager).
    """

    #: entries is always empty (shared immutable instance)
    entries: tuple = ()

    def __bool__(self) -> bool:
        return False

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[dict]:
        yield {}

    def event(self, name: str, **attrs: object) -> None:
        pass

    def absorb(self, entries: Iterable[dict],
               parent: int | None = None,
               worker: object | None = None) -> None:
        pass


#: the module-wide no-op tracer instance
NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans and point events with monotonic timestamps.

    Args:
        worker: track identity stamped on every entry ("main" in the
            parent process; batch workers use their pid).
        clock: timestamp source, injectable for deterministic tests
            (default :func:`time.perf_counter` -- on Linux a
            system-wide monotonic clock, so worker and parent
            timestamps share one timeline).
    """

    def __init__(self, worker: object = "main",
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.worker = worker
        self.entries: list[dict] = []
        self._clock = clock
        self._next_id = 1
        self._stack: list[int] = []

    def __bool__(self) -> bool:
        return True

    @property
    def current_span(self) -> int | None:
        """Id of the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[dict]:
        """Open a named span; the yielded attrs dict is mutable.

        The span entry is appended when the span *closes* (children
        therefore precede their parent in ``entries``; the tree is
        rebuilt from parent ids, not entry order).
        """
        span_id = self._next_id
        self._next_id += 1
        parent = self.current_span
        self._stack.append(span_id)
        t0 = self._clock()
        try:
            yield attrs
        finally:
            t1 = self._clock()
            self._stack.pop()
            self.entries.append({
                "type": "span", "id": span_id, "parent": parent,
                "name": name, "t0": t0, "t1": t1,
                "worker": self.worker, "attrs": dict(attrs)})

    def event(self, name: str, **attrs: object) -> None:
        """Record a point event inside the innermost open span."""
        self.entries.append({
            "type": "event", "name": name, "ts": self._clock(),
            "span": self.current_span, "worker": self.worker,
            "attrs": attrs})

    def absorb(self, entries: Iterable[dict],
               parent: int | None = None,
               worker: object | None = None) -> None:
        """Merge entries recorded by another tracer (a batch worker).

        Span ids are remapped onto this tracer's id space and root
        spans are re-parented under ``parent`` (typically the batch
        span), so the merged tree matches what a serial run would have
        produced; ``worker`` overrides the recorded track identity
        when given (workers already stamp their pid, so the default
        keeps it).
        """
        # Two passes: spans append on *close*, so a child's entry
        # precedes its parent's -- ids must all be assigned before any
        # parent pointer is rewritten.  Mapping in ascending original
        # id order keeps creation order intact in the new id space.
        entries = [dict(entry) for entry in entries]
        remap: dict[int, int] = {}
        for old_id in sorted(entry["id"] for entry in entries
                             if entry["type"] == "span"):
            remap[old_id] = self._next_id
            self._next_id += 1
        for entry in entries:
            if entry["type"] == "span":
                entry["id"] = remap[entry["id"]]
                old_parent = entry["parent"]
                entry["parent"] = (remap.get(old_parent, parent)
                                   if old_parent is not None else parent)
            else:
                old_span = entry.get("span")
                entry["span"] = (remap.get(old_span, parent)
                                 if old_span is not None else parent)
            if worker is not None:
                entry["worker"] = worker
            self.entries.append(entry)


def span_tree(entries: Sequence[dict]) -> list[dict]:
    """Normalize trace entries into a nested structural tree.

    Timestamps, span ids, and worker identities are dropped; what
    remains -- names, attributes, nesting, order of appearance -- is
    exactly the part of a trace that must be identical between
    ``--jobs 1`` and ``--jobs N`` runs (the determinism tests and CI
    compare these trees).  Events are deliberately excluded: cache
    hit/miss events legitimately depend on how blocks were distributed
    over workers.

    Returns:
        The root spans, each ``{"name", "attrs", "children"}``.
    """
    spans = [e for e in entries if e["type"] == "span"]
    nodes = {e["id"]: {"name": e["name"], "attrs": dict(e["attrs"]),
                       "children": []} for e in spans}
    roots: list[dict] = []
    # Entries list parents after children (spans append on close);
    # iterate in id order so children attach in creation order.
    for entry in sorted(spans, key=lambda e: e["id"]):
        node = nodes[entry["id"]]
        parent = entry["parent"]
        if parent is not None and parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            roots.append(node)
    return roots


def write_trace_jsonl(entries: Sequence[dict], path: str) -> None:
    """Write raw trace entries, one JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True,
                                    default=str) + "\n")


def write_chrome_trace(entries: Sequence[dict], path: str) -> None:
    """Write a Chrome trace-event file (``chrome://tracing``).

    Spans become complete events (``ph: "X"``) with microsecond
    timestamps, point events become instants (``ph: "i"``), and each
    distinct worker gets its own thread track named via ``thread_name``
    metadata -- a ``run_batch --jobs N`` run renders as one flame chart
    per worker.
    """
    workers: dict[object, int] = {}

    def tid(worker: object) -> int:
        if worker not in workers:
            workers[worker] = len(workers)
        return workers[worker]

    trace_events: list[dict] = []
    for entry in entries:
        args = {k: v if isinstance(v, (int, float, bool, type(None)))
                else str(v) for k, v in entry["attrs"].items()}
        if entry["type"] == "span":
            trace_events.append({
                "name": entry["name"], "ph": "X", "pid": 1,
                "tid": tid(entry["worker"]),
                "ts": entry["t0"] * 1e6,
                "dur": (entry["t1"] - entry["t0"]) * 1e6,
                "args": args})
        else:
            trace_events.append({
                "name": entry["name"], "ph": "i", "s": "t", "pid": 1,
                "tid": tid(entry["worker"]),
                "ts": entry["ts"] * 1e6, "args": args})
    for worker, worker_tid in workers.items():
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 1,
            "tid": worker_tid,
            "args": {"name": f"worker {worker}"}})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": trace_events,
                   "displayTimeUnit": "ms"}, handle)
        handle.write("\n")


def write_trace(entries: Sequence[dict], path: str) -> None:
    """Write a trace file, format chosen by suffix.

    ``.jsonl`` gets the raw entry stream; anything else (``.json``
    included) gets the Chrome trace-event format.
    """
    if path.endswith(".jsonl"):
        write_trace_jsonl(entries, path)
    else:
        write_chrome_trace(entries, path)
