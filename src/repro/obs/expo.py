"""Prometheus text exposition and time-windowed rolling aggregates.

Two halves of the live telemetry plane:

* :func:`render_exposition` turns a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` document into
  the Prometheus text exposition format (version 0.0.4): ``# HELP`` /
  ``# TYPE`` headers plus one sample line per labelled series,
  histograms expanded into cumulative ``_bucket{le=...}`` samples with
  ``_sum``/``_count``.  Output is deterministic -- metric names, label
  sets, and bucket bounds come out sorted -- so two scrapes of the
  same registry state are byte-identical.
* :class:`RollingWindow` keeps a ring buffer of fixed-width time
  buckets over request latencies, queue depths, and shed/reject
  counts, so a scrape answers "what happened in the last minute"
  (sliding-window p50/p99 and rates) instead of only since-boot
  totals.  Expired buckets are recycled lazily on write/read; no
  background thread.

:func:`parse_exposition` is the matching reader -- the telemetry
smoke tests and CI scrape the endpoint and assert the text parses
back into the families and samples they expect.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping, Sequence

from repro.obs.metrics import REQUEST_SECONDS_BUCKETS

#: exposition format version (the Prometheus text format identifier)
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: object) -> str:
    """Escape one label value (backslash, quote, newline)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _parse_label_key(key: str, label_names: Sequence[str]) -> dict:
    """Invert :func:`repro.obs.metrics._label_key` (``"a=x,b=y"``).

    Values may themselves contain commas; segments without an ``=``
    are re-joined onto the previous value, so any value a recorded
    label ever carried parses back.
    """
    if not key:
        return {}
    parts: list[list[str]] = []
    for segment in key.split(","):
        if "=" in segment and (not parts
                               or len(parts) < len(label_names)):
            name, _, value = segment.partition("=")
            parts.append([name, value])
        elif parts:
            parts[-1][1] += "," + segment
        else:  # pragma: no cover - defensive (malformed key)
            parts.append([segment, ""])
    return {name: value for name, value in parts}


def _format_labels(labels: Mapping[str, object]) -> str:
    """Render a label dict as ``{a="x",b="y"}`` (sorted), or ``""``."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(labels[k])}"'
                     for k in sorted(labels))
    return "{" + inner + "}"


def _format_value(value: object) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def _metric_lines(name: str, metric: dict) -> list[str]:
    """The exposition lines for one snapshot metric entry."""
    kind = metric["kind"]
    label_names = metric.get("labels", [])
    lines = []
    if metric.get("help"):
        lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
    lines.append(f"# TYPE {name} {kind}")
    values = metric.get("values", {})
    for key in sorted(values):
        labels = _parse_label_key(key, label_names)
        if kind == "histogram":
            series = values[key]
            bounds = [str(b) for b in metric.get("bucket_bounds", [])]
            buckets = series.get("buckets", {})
            for bound in bounds + ["+Inf"]:
                bucket_labels = dict(labels)
                bucket_labels["le"] = bound
                lines.append(
                    f"{name}_bucket{_format_labels(bucket_labels)} "
                    f"{_format_value(buckets.get(bound, 0))}")
            lines.append(f"{name}_sum{_format_labels(labels)} "
                         f"{_format_value(series.get('sum', 0))}")
            lines.append(f"{name}_count{_format_labels(labels)} "
                         f"{_format_value(series.get('count', 0))}")
        else:
            lines.append(f"{name}{_format_labels(labels)} "
                         f"{_format_value(values[key])}")
    return lines


def render_exposition(snapshot: dict) -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    Args:
        snapshot: a :meth:`~repro.obs.metrics.MetricsRegistry.\
snapshot` document (``{"stable": {...}, "volatile": {...}}``).
            Metric names are unique across the two sections, and both
            are exposed -- the stable/volatile split is a determinism
            contract, not a visibility one.

    Returns:
        The exposition text, ``\\n``-terminated, deterministic for a
        given snapshot (names, labels, and bounds sorted).
    """
    merged: dict[str, dict] = {}
    merged.update(snapshot.get("stable", {}))
    merged.update(snapshot.get("volatile", {}))
    lines: list[str] = []
    for name in sorted(merged):
        lines.extend(_metric_lines(name, merged[name]))
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> tuple[dict, dict]:
    """Parse exposition text back into families and samples.

    The inverse reader the telemetry smoke tests use: it understands
    exactly the subset :func:`render_exposition` emits.

    Returns:
        ``(families, samples)`` -- ``families`` maps metric name to
        its TYPE; ``samples`` maps the full sample key (name plus the
        rendered label string) to its float value.

    Raises:
        ValueError: for a line that is neither a comment nor a
            parseable sample.
    """
    families: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"unparseable exposition line: {line!r}")
        if value == "+Inf":
            samples[key] = float("inf")
        elif value == "-Inf":
            samples[key] = float("-inf")
        else:
            samples[key] = float(value)
    return families, samples


class RollingWindow:
    """Sliding-window request aggregates over a ring of time buckets.

    The ring holds ``n_buckets`` buckets of ``bucket_s`` seconds each
    (default 12 x 5s = a one-minute window).  Updates land in the
    bucket covering "now"; reads aggregate every bucket still inside
    the window, lazily discarding expired ones.  All updates take one
    lock, so engine threads and the asyncio loop can both write.

    Latencies are bucketed into ``latency_bounds`` (the same bounds as
    ``repro_request_seconds``), and window quantiles are read off the
    cumulative distribution the way ``histogram_quantile`` does: the
    reported pXX is the smallest bucket upper bound covering that
    fraction of the window's observations.
    """

    def __init__(self, window_s: float = 60.0, n_buckets: int = 12,
                 latency_bounds: Sequence[float] =
                 REQUEST_SECONDS_BUCKETS,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if n_buckets < 1 or window_s <= 0:
            raise ValueError("window needs >= 1 bucket and > 0 span")
        self.window_s = float(window_s)
        self.n_buckets = int(n_buckets)
        self.bucket_s = self.window_s / self.n_buckets
        self.latency_bounds = tuple(latency_bounds)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = [self._fresh(-1) for _ in range(self.n_buckets)]

    def _fresh(self, epoch: int) -> dict:
        return {"epoch": epoch, "count": 0, "sum": 0.0,
                "bins": [0] * (len(self.latency_bounds) + 1),
                "statuses": {}, "rejections": 0, "shed": 0,
                "queue_depth_max": 0}

    def _bucket(self, now: float) -> dict:
        epoch = int(now // self.bucket_s)
        slot = self._buckets[epoch % self.n_buckets]
        if slot["epoch"] != epoch:
            slot = self._fresh(epoch)
            self._buckets[epoch % self.n_buckets] = slot
        return slot

    # -- writers --------------------------------------------------------------

    def observe_request(self, status: str, seconds: float) -> None:
        """Record one terminated request's status and latency."""
        with self._lock:
            slot = self._bucket(self._clock())
            slot["count"] += 1
            slot["sum"] += seconds
            slot["statuses"][status] = \
                slot["statuses"].get(status, 0) + 1
            for i, bound in enumerate(self.latency_bounds):
                if seconds <= bound:
                    slot["bins"][i] += 1
                    break
            else:
                slot["bins"][-1] += 1

    def observe_rejection(self) -> None:
        """Record one typed admission rejection."""
        with self._lock:
            self._bucket(self._clock())["rejections"] += 1

    def observe_shed(self, n: int = 1) -> None:
        """Record ``n`` shed blocks."""
        with self._lock:
            self._bucket(self._clock())["shed"] += n

    def observe_queue_depth(self, depth: int) -> None:
        """Record an admission occupancy observation."""
        with self._lock:
            slot = self._bucket(self._clock())
            if depth > slot["queue_depth_max"]:
                slot["queue_depth_max"] = depth

    # -- readers --------------------------------------------------------------

    def _live(self, now: float) -> list[dict]:
        floor = int(now // self.bucket_s) - self.n_buckets + 1
        return [b for b in self._buckets if b["epoch"] >= floor]

    def _quantile(self, bins: Sequence[int], count: int,
                  q: float) -> float | None:
        """Smallest bucket bound covering fraction ``q`` of ``count``."""
        if count <= 0:
            return None
        target = q * count
        running = 0
        for bound, n in zip(self.latency_bounds, bins):
            running += n
            if running >= target:
                return float(bound)
        return float(self.latency_bounds[-1])

    def completion_rate_rps(self) -> float:
        """Request terminations per second over the live window.

        A cheap accessor (no latency-histogram aggregation) for hot
        callers: the admission controller derives honest
        ``retry_after_s`` hints from it on every queue-full or
        overload rejection.
        """
        with self._lock:
            count = sum(b["count"] for b in self._live(self._clock()))
        return count / self.window_s

    def recent(self, horizon_s: float | None = None) -> dict:
        """Short-horizon aggregates for overload control.

        The full window answers dashboard questions ("the last
        minute"); a degradation ladder needs signals that *decay*
        once pressure stops, or it cannot descend until old buckets
        expire.  This aggregates only the buckets inside
        ``horizon_s`` (default: three buckets, 15s at the default
        geometry) -- p99 and queue depth over the recent past.
        """
        with self._lock:
            now = self._clock()
            if horizon_s is None:
                horizon_s = 3 * self.bucket_s
            n = max(1, min(self.n_buckets,
                           int(round(horizon_s / self.bucket_s))))
            floor = int(now // self.bucket_s) - n + 1
            live = [b for b in self._buckets if b["epoch"] >= floor]
            count = sum(b["count"] for b in live)
            bins = [0] * (len(self.latency_bounds) + 1)
            for b in live:
                for i, v in enumerate(b["bins"]):
                    bins[i] += v
            depth = max((b["queue_depth_max"] for b in live),
                        default=0)
        return {
            "horizon_s": n * self.bucket_s,
            "requests": count,
            "queue_depth_max": depth,
            "p99_s": self._quantile(bins, count, 0.99),
        }

    def snapshot(self) -> dict:
        """Aggregate the live window into one summary dict."""
        with self._lock:
            live = self._live(self._clock())
            count = sum(b["count"] for b in live)
            total = sum(b["sum"] for b in live)
            bins = [0] * (len(self.latency_bounds) + 1)
            statuses: dict[str, int] = {}
            for b in live:
                for i, n in enumerate(b["bins"]):
                    bins[i] += n
                for status, n in b["statuses"].items():
                    statuses[status] = statuses.get(status, 0) + n
            rejections = sum(b["rejections"] for b in live)
            shed = sum(b["shed"] for b in live)
            depth = max((b["queue_depth_max"] for b in live),
                        default=0)
        ok = statuses.get("ok", 0)
        return {
            "window_s": self.window_s,
            "requests": count,
            "ok": ok,
            "errors": count - ok,
            "rejections": rejections,
            "shed_blocks": shed,
            "queue_depth_max": depth,
            "latency_sum_s": round(total, 6),
            "request_rate_rps": round(count / self.window_s, 4),
            "reject_rate_rps": round(rejections / self.window_s, 4),
            "shed_rate_bps": round(shed / self.window_s, 4),
            "p50_s": self._quantile(bins, count, 0.50),
            "p99_s": self._quantile(bins, count, 0.99),
            "statuses": dict(sorted(statuses.items())),
        }

    def exposition(self) -> str:
        """The window aggregates as ``repro_window_*`` gauge series."""
        snap = self.snapshot()
        gauges = (
            ("repro_window_seconds",
             "Width of the sliding telemetry window.",
             snap["window_s"]),
            ("repro_window_requests",
             "Requests terminated inside the window.",
             snap["requests"]),
            ("repro_window_errors",
             "Non-ok request terminations inside the window.",
             snap["errors"]),
            ("repro_window_rejections",
             "Typed admission rejections inside the window.",
             snap["rejections"]),
            ("repro_window_shed_blocks",
             "Blocks shed inside the window.",
             snap["shed_blocks"]),
            ("repro_window_queue_depth_max",
             "Deepest admission occupancy observed in the window.",
             snap["queue_depth_max"]),
            ("repro_window_request_rate_rps",
             "Request terminations per second over the window.",
             snap["request_rate_rps"]),
            ("repro_window_request_p50_seconds",
             "Sliding-window median request latency (bucket upper "
             "bound).", snap["p50_s"]),
            ("repro_window_request_p99_seconds",
             "Sliding-window p99 request latency (bucket upper "
             "bound).", snap["p99_s"]),
        )
        lines = []
        for name, help_text, value in gauges:
            if value is None:
                continue
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""
