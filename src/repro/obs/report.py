"""``repro report``: paper-style tables from a journal and/or metrics.

The paper's evaluation is three tables -- Table 3 (benchmark
structure), Table 4 (the ``n**2`` construction work), Table 5 (table
building and end-to-end run times) -- and this module reconstructs
their shape from the artifacts a run leaves behind:

* a **run journal** (:mod:`repro.runner.journal` JSONL) supplies
  per-block outcomes: accepted builder, makespans, every fallback
  attempt, and (since the field was added) per-block wall-clock
  seconds, from which Table 5-style run times are rebuilt per builder;
* a **metrics snapshot** (:func:`repro.obs.metrics.write_metrics`
  JSON) supplies the exact work counters: comparisons, table probes,
  alias checks, bitmap operations and words touched, block structure,
  cache and incremental-repair activity.

Either input works alone; together the report is complete.  Output is
a plain JSON-ready dict (:func:`report_from`) and a Markdown rendering
(:func:`render_markdown`), wired to the CLI as ``repro report``.
"""

from __future__ import annotations

from repro.errors import ReproError

#: journal block records missing a field (old journals) show this
_ABSENT = None


def load_journal_blocks(path: str) -> list[dict]:
    """Read a run journal's block records (header skipped).

    Uses the same hardened line reader as
    :meth:`repro.runner.journal.RunJournal.load` -- v1 plain-JSON and
    v2 CRC-framed lines both parse, the torn final line of a killed
    run is tolerated, and interior damage (CRC mismatch, truncated
    frame, unparseable line) raises -- but does not demand a
    fingerprint match: a report is read-only archaeology.

    Raises:
        ReproError: when the file is unreadable, has no journal
            header, or is damaged anywhere but the torn tail.
    """
    # Imported lazily: repro.obs is imported by low-level modules that
    # repro.runner's package init itself depends on.
    from repro.runner.journal import (
        DAMAGE_TORN_TAIL,
        parse_record_line,
        scan_lines,
    )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise ReproError(f"cannot read journal {path!r}: {exc}")
    if not lines:
        raise ReproError(f"journal {path!r} is empty")
    header, _, _ = parse_record_line(lines[0])
    if header is None or header.get("type") != "header":
        raise ReproError(f"{path!r} does not look like a run journal "
                         f"(missing header line)")
    records, damage = scan_lines(lines[1:], first_lineno=2)
    for defect in damage:
        if defect.kind == DAMAGE_TORN_TAIL:
            continue  # torn final write of a killed run
        raise ReproError(
            f"journal {path!r} is corrupt at line {defect.lineno}: "
            f"{defect.kind}: {defect.detail}; "
            f"run 'repro fsck' to classify and repair")
    return [record for _, record in records
            if record.get("type") in ("block", "quarantined")]


def _values(snapshot: dict | None, name: str) -> dict:
    """One metric's values dict, searching both snapshot sections."""
    if snapshot is None:
        return {}
    for section in ("stable", "volatile"):
        metric = snapshot.get(section, {}).get(name)
        if metric is not None:
            return metric.get("values", {})
    return {}


def _scalar(snapshot: dict | None, name: str, default=None):
    """An unlabelled metric's single value."""
    return _values(snapshot, name).get("", default)


def _per_builder(snapshot: dict | None, name: str) -> dict[str, object]:
    """A ``builder``-labelled metric as ``{builder: value}``."""
    out = {}
    for key, value in _values(snapshot, name).items():
        if key.startswith("builder="):
            out[key[len("builder="):]] = value
    return out


def _round(value, digits: int = 2):
    return None if value is None else round(value, digits)


def _table3(blocks: list[dict] | None, snapshot: dict | None) -> dict:
    """Table 3: benchmark structure (blocks, insts/bb, memexpr/bb)."""
    n_blocks = _scalar(snapshot, "repro_blocks_total")
    n_insts = _scalar(snapshot, "repro_instructions_total")
    row = {
        "blocks": n_blocks,
        "insts": n_insts,
        "insts/bb max": _scalar(snapshot, "repro_block_size_max"),
        "insts/bb avg": _round(n_insts / n_blocks)
        if n_blocks else None,
        "memexpr/bb max": _scalar(snapshot, "repro_mem_exprs_max"),
        "memexpr/bb avg": _round(
            _scalar(snapshot, "repro_mem_exprs_total", 0) / n_blocks)
        if n_blocks else None,
    }
    if row["blocks"] is None and blocks:
        # Journal-only fallback: structure from the block records
        # (memory expressions are not journaled -- left absent).
        sizes = [len(b.get("order", [])) for b in blocks]
        row["blocks"] = len(sizes)
        row["insts"] = sum(sizes)
        row["insts/bb max"] = max(sizes, default=0)
        row["insts/bb avg"] = (_round(sum(sizes) / len(sizes))
                               if sizes else None)
    return row


def _table4(snapshot: dict | None) -> list[dict]:
    """Table 4: per-builder construction work (the n**2 quantities)."""
    built = _per_builder(snapshot, "repro_build_blocks_total")
    comparisons = _per_builder(snapshot, "repro_build_comparisons_total")
    alias = _per_builder(snapshot, "repro_build_alias_checks_total")
    added = _per_builder(snapshot, "repro_build_arcs_added_total")
    merged = _per_builder(snapshot, "repro_build_arcs_merged_total")
    suppressed = _per_builder(snapshot,
                              "repro_build_arcs_suppressed_total")
    rows = []
    for builder in sorted(built):
        rows.append({
            "builder": builder,
            "blocks": built.get(builder, 0),
            "comparisons": comparisons.get(builder, 0),
            "alias checks": alias.get(builder, 0),
            "arcs added": added.get(builder, 0),
            "arcs merged": merged.get(builder, 0),
            "arcs suppressed": suppressed.get(builder, 0),
        })
    return rows


def _table5(blocks: list[dict] | None,
            snapshot: dict | None) -> list[dict]:
    """Table 5: table building cost and per-builder run times.

    Work counters come from the metrics snapshot; wall-clock seconds
    come from journal ``wall_s`` fields summed per accepted builder
    (blocks journaled before the field existed contribute nothing and
    are counted in ``untimed blocks``).
    """
    probes = _per_builder(snapshot, "repro_build_table_probes_total")
    bitmap_ops = _per_builder(snapshot, "repro_build_bitmap_ops_total")
    words = _per_builder(snapshot, "repro_bitmap_words_touched_total")
    wall: dict[str, float] = {}
    untimed: dict[str, int] = {}
    for record in blocks or []:
        builder = record.get("builder") or "(degraded)"
        seconds = record.get("wall_s")
        if seconds is None:
            untimed[builder] = untimed.get(builder, 0) + 1
        else:
            wall[builder] = wall.get(builder, 0.0) + seconds
    rows = []
    for builder in sorted(set(probes) | set(wall) | set(untimed)):
        rows.append({
            "builder": builder,
            "table probes": probes.get(builder, 0),
            "bitmap ops": bitmap_ops.get(builder, 0),
            "bitmap words": words.get(builder, 0),
            "run time (s)": _round(wall.get(builder), 6)
            if builder in wall else _ABSENT,
            "untimed blocks": untimed.get(builder, 0),
        })
    return rows


def _fallback(blocks: list[dict] | None, snapshot: dict | None) -> dict:
    """Fallback-chain and schedule-quality summary."""
    summary: dict = {
        "attempts": {},
        "degraded blocks": _scalar(snapshot,
                                   "repro_blocks_degraded_total", 0),
        "replayed blocks": _scalar(snapshot,
                                   "repro_blocks_replayed_total", 0),
        "wasted work": _scalar(snapshot,
                               "repro_fallback_wasted_work_total", 0),
        "total makespan": _scalar(snapshot,
                                  "repro_makespan_cycles_total"),
        "total original makespan": _scalar(
            snapshot, "repro_original_makespan_cycles_total"),
    }
    for key, value in _values(
            snapshot, "repro_fallback_attempts_total").items():
        summary["attempts"][key] = value
    if blocks:
        if summary["total makespan"] is None:
            summary["total makespan"] = sum(
                b.get("makespan", 0) for b in blocks)
            summary["total original makespan"] = sum(
                b.get("original_makespan", 0) for b in blocks)
        if not summary["attempts"]:
            for record in blocks:
                for attempt in record.get("attempts", []):
                    key = (f"builder={attempt.get('builder')},"
                           f"stage={attempt.get('stage')}")
                    summary["attempts"][key] = \
                        summary["attempts"].get(key, 0) + 1
        if not summary["degraded blocks"]:
            summary["degraded blocks"] = sum(
                1 for b in blocks if b.get("builder") is None)
    scheduled = (summary["total makespan"] or 0)
    original = (summary["total original makespan"] or 0)
    summary["speedup"] = (_round(original / scheduled)
                          if scheduled else None)
    return summary


def _degradations(blocks: list[dict] | None) -> list[dict]:
    """Per-block detail for every degraded block in the journal."""
    rows = []
    for record in blocks or []:
        if record.get("builder") is not None:
            continue
        rows.append({
            "index": record.get("index"),
            "label": record.get("label"),
            "attempts": [
                {"builder": a.get("builder"), "stage": a.get("stage"),
                 "error": a.get("error")}
                for a in record.get("attempts", [])],
        })
    return rows


def _resilience(blocks: list[dict] | None,
                snapshot: dict | None) -> dict | None:
    """Supervised-pool resilience summary: block accounting, crashes,
    retries, quarantines, breaker activity.

    Returns None when there is nothing to report (no quarantined
    records in the journal and no resilience metrics in the
    snapshot), so clean-run reports keep their shape.
    """
    crash_values = _values(snapshot, "repro_worker_crashes_total")
    retries = _scalar(snapshot, "repro_retries_total")
    restarts = _scalar(snapshot, "repro_worker_restarts_total")
    quarantined_metric = _scalar(snapshot,
                                 "repro_quarantined_blocks_total")
    breaker_values = _values(snapshot,
                             "repro_breaker_transitions_total")
    quarantined_records = [b for b in blocks or []
                           if b.get("type") == "quarantined"]
    if not quarantined_records and not crash_values \
            and retries is None and restarts is None \
            and quarantined_metric is None and not breaker_values:
        return None
    section: dict = {
        "worker crashes": {
            key[len("kind="):]: value
            for key, value in sorted(crash_values.items())},
        "worker restarts": restarts or 0,
        "retries": retries or 0,
        "quarantined blocks": (quarantined_metric
                               if quarantined_metric is not None
                               else len(quarantined_records)),
        "breaker transitions": dict(sorted(breaker_values.items())),
        "quarantines": [
            {"index": b.get("index"), "label": b.get("label"),
             "attempts": len(b.get("attempts", [])),
             "reproducer": b.get("reproducer")}
            for b in quarantined_records],
    }
    if blocks:
        total = len(blocks)
        quarantined = len(quarantined_records)
        degraded = sum(1 for b in blocks
                       if b.get("builder") is None
                       and b.get("type") != "quarantined")
        scheduled = total - degraded - quarantined
        section["accounting"] = {
            "total": total,
            "scheduled": scheduled,
            "degraded": degraded,
            "quarantined": quarantined,
            "accounted": scheduled + degraded + quarantined == total,
        }
    return section


def _cache(snapshot: dict | None) -> dict | None:
    """Pairwise-cache summary (volatile), when the snapshot has one."""
    hits = _scalar(snapshot, "repro_cache_hits_total")
    misses = _scalar(snapshot, "repro_cache_misses_total")
    if hits is None and misses is None:
        return None
    total = (hits or 0) + (misses or 0)
    return {
        "hits": hits or 0,
        "misses": misses or 0,
        "hit rate": _round((hits or 0) / total) if total else None,
        "entries": _scalar(snapshot, "repro_cache_entries"),
        "recipes": _scalar(snapshot, "repro_cache_recipes"),
    }


def _durability(snapshot: dict | None) -> dict | None:
    """Serve-daemon durability summary: WAL replay and dedup counters.

    Returns None when the snapshot carries no WAL metrics (batch runs,
    pre-WAL daemons), so existing reports keep their shape.
    """
    replayed = _scalar(snapshot, "repro_wal_replayed")
    dropped = _scalar(snapshot, "repro_wal_dropped")
    recovered = _scalar(snapshot, "repro_wal_recovered_requests_total")
    deduped = _scalar(snapshot, "repro_wal_deduped_requests_total")
    if replayed is None and dropped is None \
            and recovered is None and deduped is None:
        return None
    return {
        "wal records replayed": replayed or 0,
        "torn records dropped": dropped or 0,
        "requests recovered": recovered or 0,
        "requests deduped": deduped or 0,
    }


def _overload(snapshot: dict | None) -> dict | None:
    """Overload-ladder summary: transitions and typed rejections.

    Returns None when the snapshot carries no overload metrics (the
    ladder never moved and nothing was shed), so existing reports
    keep their shape.
    """
    transitions = _values(snapshot, "repro_overload_transitions_total")
    rejections = _values(snapshot, "repro_overload_rejections_total")
    if not transitions and not rejections:
        return None
    ascents = sum(v for k, v in transitions.items()
                  if "direction=ascend" in k)
    descents = sum(v for k, v in transitions.items()
                   if "direction=descend" in k)
    by_class = {}
    for key, value in rejections.items():
        if key.startswith("tenant_class="):
            by_class[key[len("tenant_class="):]] = value
    return {
        "ladder transitions": sum(transitions.values()),
        "ascents": ascents,
        "descents": descents,
        "overload rejections": sum(rejections.values()),
        "best-effort rejections": by_class.get("best-effort", 0),
        "priority rejections": by_class.get("priority", 0),
    }


def report_from(blocks: list[dict] | None = None,
                snapshot: dict | None = None) -> dict:
    """Build the full report document from either or both inputs.

    Args:
        blocks: journal block records
            (:func:`load_journal_blocks`), or None.
        snapshot: a metrics snapshot document
            (:func:`repro.obs.metrics.read_metrics`), or None.

    Raises:
        ReproError: when both inputs are None.
    """
    if blocks is None and snapshot is None:
        raise ReproError(
            "report needs a journal, a metrics snapshot, or both")
    return {
        "sources": {"journal": blocks is not None,
                    "metrics": snapshot is not None},
        "table3": _table3(blocks, snapshot),
        "table4": _table4(snapshot),
        "table5": _table5(blocks, snapshot),
        "fallback": _fallback(blocks, snapshot),
        "degradations": _degradations(blocks),
        "resilience": _resilience(blocks, snapshot),
        "durability": _durability(snapshot),
        "overload": _overload(snapshot),
        "cache": _cache(snapshot),
    }


def _md_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _md_table(headers: list[str], rows: list[list]) -> list[str]:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(_md_cell(v) for v in row) + " |")
    return out


def _md_dict_rows(rows: list[dict]) -> list[str]:
    if not rows:
        return ["(no data)"]
    headers = list(rows[0].keys())
    return _md_table(headers,
                     [[row.get(h) for h in headers] for row in rows])


def render_markdown(report: dict) -> str:
    """Render :func:`report_from` output as a Markdown document."""
    lines: list[str] = ["# Scheduling run report", ""]
    sources = report.get("sources", {})
    used = [name for name in ("journal", "metrics")
            if sources.get(name)]
    lines += [f"Sources: {', '.join(used) if used else 'none'}", ""]

    lines += ["## Table 3 — benchmark structure", ""]
    t3 = report.get("table3", {})
    lines += _md_table(["quantity", "value"],
                       [[k, t3[k]] for k in t3])
    lines.append("")

    lines += ["## Table 4 — DAG construction work", ""]
    lines += _md_dict_rows(report.get("table4", []))
    lines.append("")

    lines += ["## Table 5 — table building and run times", ""]
    lines += _md_dict_rows(report.get("table5", []))
    lines.append("")

    lines += ["## Fallback and schedule quality", ""]
    fb = report.get("fallback", {})
    rows = [[k, fb[k]] for k in fb if k != "attempts"]
    lines += _md_table(["quantity", "value"], rows)
    lines.append("")
    attempts = fb.get("attempts", {})
    if attempts:
        lines += ["### Attempts by builder and stage", ""]
        lines += _md_table(
            ["series", "count"],
            [[k, attempts[k]] for k in sorted(attempts)])
        lines.append("")

    degradations = report.get("degradations", [])
    lines += ["## Degraded blocks", ""]
    if degradations:
        for item in degradations:
            label = item.get("label") or item.get("index")
            lines.append(f"- block {item.get('index')} ({label}):")
            for attempt in item.get("attempts", []):
                lines.append(
                    f"  - {attempt.get('builder')} -> "
                    f"{attempt.get('stage')}"
                    + (f": {attempt.get('error')}"
                       if attempt.get("error") else ""))
    else:
        lines.append("(none)")
    lines.append("")

    resilience = report.get("resilience")
    if resilience:
        lines += ["## Resilience", ""]
        accounting = resilience.get("accounting")
        if accounting:
            lines += _md_table(
                ["quantity", "value"],
                [[k, accounting[k]] for k in accounting])
            lines.append("")
        crashes = resilience.get("worker crashes", {})
        rows = [["worker restarts", resilience.get("worker restarts")],
                ["retries", resilience.get("retries")],
                ["quarantined blocks",
                 resilience.get("quarantined blocks")]]
        rows += [[f"crashes ({kind})", count]
                 for kind, count in crashes.items()]
        rows += [[f"breaker ({series})", count]
                 for series, count in
                 resilience.get("breaker transitions", {}).items()]
        lines += _md_table(["quantity", "value"], rows)
        lines.append("")
        quarantines = resilience.get("quarantines", [])
        if quarantines:
            lines += ["### Quarantined blocks", ""]
            for item in quarantines:
                label = item.get("label") or item.get("index")
                lines.append(
                    f"- block {item.get('index')} ({label}): "
                    f"{item.get('attempts')} attempts"
                    + (f", reproducer `{item.get('reproducer')}`"
                       if item.get("reproducer") else ""))
            lines.append("")

    durability = report.get("durability")
    if durability:
        lines += ["## Durability", ""]
        lines += _md_table(["quantity", "value"],
                           [[k, durability[k]] for k in durability])
        lines.append("")

    overload = report.get("overload")
    if overload:
        lines += ["## Overload", ""]
        lines += _md_table(["quantity", "value"],
                           [[k, overload[k]] for k in overload])
        lines.append("")

    cache = report.get("cache")
    lines += ["## Pairwise cache", ""]
    if cache:
        lines += _md_table(["quantity", "value"],
                           [[k, cache[k]] for k in cache])
    else:
        lines.append("(no cache data)")
    lines.append("")
    return "\n".join(lines)
