"""Whole-program scheduling: parse -> schedule -> re-emit.

The library's end-user transformation: take a parsed
:class:`~repro.asm.program.Program`, schedule every basic block with a
chosen algorithm, optionally fill branch delay slots and propagate
inherited latencies between consecutive blocks, and produce a new
``Program`` whose text can be written back out.

This is the programmatic counterpart of ``python -m repro schedule``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.asm.program import Program
from repro.cfg import (
    apply_window,
    partition_blocks,
    pin_delay_slot_occupants,
)
from repro.dag.builders.base import DagBuilder
from repro.dag.builders.table_forward import TableForwardBuilder
from repro.errors import ReproError
from repro.heuristics.incremental import (
    annotate,
    apply_inherited_incremental,
)
from repro.heuristics.passes import backward_pass
from repro.isa.instruction import Instruction
from repro.machine.model import MachineModel
from repro.pipeline import SECTION6_PRIORITY
from repro.scheduling.delay_slots import fill_delay_slot
from repro.scheduling.interblock import (
    ResidualLatency,
    residual_latencies,
)
from repro.scheduling.list_scheduler import (
    ScheduleResult,
    schedule_forward,
)
from repro.scheduling.timing import simulate, verify_order
from repro.verify.checker import BlockFailure, degraded_timing


@dataclass
class TransformReport:
    """What the whole-program transformation achieved.

    Attributes:
        n_blocks: blocks scheduled.
        original_cycles: summed makespans of the original block orders.
        scheduled_cycles: summed makespans of the produced schedule.
        delay_slots_filled: branch delay slots filled with useful work.
        nops_removed: nop instructions deleted because a filled slot
            made them redundant.
        degraded_cycles: the portion of both cycle totals contributed
            by failed blocks (charged identically to both sides).
        failures: per-block failure records for blocks emitted in
            their original order (empty on a clean run).
    """

    n_blocks: int = 0
    original_cycles: int = 0
    scheduled_cycles: int = 0
    delay_slots_filled: int = 0
    nops_removed: int = 0
    degraded_cycles: int = 0
    failures: list[BlockFailure] = field(default_factory=list)

    @property
    def degraded_fraction(self) -> float:
        """Fraction of processed blocks emitted in original order."""
        if self.n_blocks == 0:
            return 0.0
        return len(self.failures) / self.n_blocks

    @property
    def speedup(self) -> float:
        """Original over scheduled cycles, over the blocks that were
        actually scheduled (degraded blocks excluded; explicitly 1.0
        when every block degraded)."""
        scheduled = self.scheduled_cycles - self.degraded_cycles
        if scheduled <= 0:
            return 1.0
        return (self.original_cycles - self.degraded_cycles) / scheduled


def schedule_program(
        program: Program,
        machine: MachineModel,
        builder_factory: Callable[[], DagBuilder] | None = None,
        priority: Callable | None = None,
        window: int | None = None,
        fill_slots: bool = True,
        inherit_latencies: bool = False,
        strict: bool = False,
) -> tuple[Program, TransformReport]:
    """Schedule every basic block of ``program``.

    Args:
        program: the parsed input program (not mutated).
        machine: timing model.
        builder_factory: DAG construction algorithm (default: table
            forward).
        priority: forward-scheduling priority (default: the section 6
            critical-path winnowing).
        window: optional maximum block size.
        fill_slots: move a safe instruction into each delayed
            terminator's slot and delete the following nop it replaces.
        inherit_latencies: propagate residual operation latencies into
            the next block (straight-line approximation; see
            :mod:`repro.scheduling.interblock`).
        strict: re-raise the first per-block
            :class:`~repro.errors.ReproError`.  When False (the
            default) a block whose construction or scheduling fails is
            emitted in its *original* instruction order -- always
            correct, never faster -- and recorded in
            ``report.failures``.

    Returns:
        ``(new_program, report)``.
    """
    if builder_factory is None:
        builder_factory = lambda: TableForwardBuilder(machine)
    if priority is None:
        priority = SECTION6_PRIORITY

    blocks = pin_delay_slot_occupants(
        apply_window(partition_blocks(program), window))
    report = TransformReport()
    out_instructions: list[Instruction] = []
    residuals: list[ResidualLatency] = []
    pending_slot_filled = False
    # Original index of each block's first instruction -> the block's
    # start position in the output (labels re-anchor to block starts).
    block_starts: dict[int, int] = {}

    def next_block_starts_with_nop(position: int) -> bool:
        """Is the current delay-slot occupant a removable nop?

        Filling a slot is only sound when the instruction currently
        sitting in it (the first instruction of the following block)
        is a nop: a *useful* slot instruction executes on both paths
        of the branch, and pushing it out of the slot would drop it
        from the taken path.
        """
        for later in blocks[position + 1:]:
            if later.instructions:
                return later.instructions[0].opcode.mnemonic == "nop"
        return False

    for block_position, block in enumerate(blocks):
        if not block.instructions:
            continue
        block_starts[block.instructions[0].index] = len(out_instructions)
        body = block.instructions
        # If the previous block's delay slot was filled, the leading
        # nop of this block (the old slot occupant) is now dead.
        if pending_slot_filled and body \
                and body[0].opcode.mnemonic == "nop":
            body = body[1:]
            report.nops_removed += 1
        pending_slot_filled = False
        if not body:
            continue

        from repro.cfg.basic_block import BasicBlock
        work_block = BasicBlock(block.index, list(body), block.label)
        try:
            outcome = builder_factory().build(work_block)
            dag = outcome.dag
            if inherit_latencies:
                # Full passes once on the clean DAG, then repair only
                # the frontier the pseudo-arcs touch -- the inherited
                # arcs no longer force a whole-DAG re-pass.
                annotate(dag)
                apply_inherited_incremental(dag, residuals)
            else:
                backward_pass(dag, require_est=False)
            result = schedule_forward(dag, machine, priority)
            verify_order(result.order, dag)
        except ReproError as exc:
            if strict:
                raise
            # Degrade: the original order is always a correct
            # schedule.  Charge it on both sides of the ratio and drop
            # any inherited residuals (conservative for reporting; the
            # emitted code is unchanged so correctness is unaffected).
            report.failures.append(BlockFailure(
                block.index, block.label, "schedule", str(exc)))
            cycles = degraded_timing(work_block, machine)
            report.n_blocks += 1
            report.original_cycles += cycles
            report.scheduled_cycles += cycles
            report.degraded_cycles += cycles
            residuals = []
            out_instructions.extend(body)
            continue

        order = result.order
        if fill_slots and next_block_starts_with_nop(block_position):
            order, filler = fill_delay_slot(order, dag)
            if filler is not None:
                report.delay_slots_filled += 1
                pending_slot_filled = True

        original = simulate(list(dag.real_nodes()), machine)
        timing = simulate(order, machine)
        report.n_blocks += 1
        report.original_cycles += original.makespan
        report.scheduled_cycles += timing.makespan
        if inherit_latencies:
            residuals = residual_latencies(
                ScheduleResult(order, timing), machine)

        for node in order:
            assert node.instr is not None
            out_instructions.append(node.instr)

    # Re-anchor labels to the new start of the block they named; the
    # instruction-level label attribute moves accordingly (the original
    # first instruction may have been scheduled away from the front).
    new_labels: dict[str, int] = {}
    label_at: dict[int, str] = {}
    for name, old_index in program.labels.items():
        new_index = block_starts.get(old_index, len(out_instructions))
        new_labels[name] = new_index
        label_at.setdefault(new_index, name)

    new_program = Program(program.name + ".scheduled")
    for pos, instr in enumerate(out_instructions):
        new_program.instructions.append(
            Instruction(pos, instr.opcode, instr.operands,
                        label=label_at.get(pos), annulled=instr.annulled,
                        source_line=instr.source_line))
    for name, new_index in new_labels.items():
        new_program.add_label(name, new_index)
    return new_program, report
