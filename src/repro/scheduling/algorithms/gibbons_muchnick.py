"""Gibbons & Muchnick [3]: n**2 backward construction, forward winnowing.

Table 2 row: construction pass ``b`` with the ``n**2`` algorithm
("used backward-pass DAG construction to handle condition code
dependencies in a special way"); forward scheduling; winnowing order:

1. (v) no interlock with previous instruction,
2. interlock with child,
3. number of children,
4. (b) max path length to a leaf.
"""

from __future__ import annotations

from repro.dag.builders.base import DagBuilder
from repro.dag.builders.compare_all import CompareAllBuilder
from repro.dag.graph import Dag
from repro.heuristics.passes import backward_pass
from repro.heuristics.stall import no_interlock_with_previous
from repro.scheduling.algorithms.base import PublishedAlgorithm
from repro.scheduling.list_scheduler import ScheduleResult, schedule_forward
from repro.scheduling.priority import winnowing


class GibbonsMuchnick(PublishedAlgorithm):
    """Gibbons & Muchnick's pipelined-architecture scheduler."""

    name = "Gibbons & Muchnick"
    reference = "[3]"
    dag_pass = "b"
    dag_algorithm = "n**2"
    sched_pass = "f"
    priority_fn = False
    ranking = (
        ("1v", "no interlock w/ previous inst."),
        ("2", "interlock w/ child"),
        ("3", "number of children"),
        ("4b", "max path to leaf"),
    )

    def make_builder(self) -> DagBuilder:
        # The n**2 comparison is direction-insensitive in the arcs it
        # produces; the "backward" label records their condition-code
        # motivation (our CC resources make the special case moot).
        return CompareAllBuilder(self.machine)

    def prepare(self, dag: Dag) -> None:
        backward_pass(dag)

    def run(self, dag: Dag) -> ScheduleResult:
        priority = winnowing(
            no_interlock_with_previous,
            "interlock_with_child",
            "n_children",
            "max_path_to_leaf",
        )
        return schedule_forward(dag, self.machine, priority)
