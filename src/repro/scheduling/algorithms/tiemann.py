"""Tiemann (the GNU instruction scheduler) [15]: backward priority pass.

Table 2 row: table-building forward construction; backward scheduling
pass; single priority value over:

1. (f) max total delay from root,
2. birthing instruction -- "each RAW parent of the most recently
   scheduled node has its priority adjusted upward so that each is
   more likely to be chosen next and thus shorten the lifetime of the
   corresponding live register";
3. original order.

The ``gcc2_registers_killed`` switch adds the #registers-killed
refinement that "the version 2 GNU C compiler includes ... as a
modification to Tiemann's algorithm" [17].
"""

from __future__ import annotations

from repro.dag.builders.base import DagBuilder
from repro.dag.builders.table_forward import TableForwardBuilder
from repro.dag.graph import Dag, DagNode
from repro.heuristics.passes import forward_pass
from repro.heuristics.register_usage import (
    annotate_register_usage,
    apply_birthing_adjustment,
)
from repro.scheduling.algorithms.base import PublishedAlgorithm
from repro.scheduling.list_scheduler import (
    ScheduleResult,
    SchedulerState,
    schedule_backward,
)
from repro.scheduling.priority import weighted

_W1, _W2, _W3 = 10**8, 10**2, 1


class Tiemann(PublishedAlgorithm):
    """Tiemann's GNU scheduler (prepass and postpass capable)."""

    name = "Tiemann (GCC)"
    reference = "[15]"
    dag_pass = "f"
    dag_algorithm = "table building"
    sched_pass = "b"
    priority_fn = True
    ranking = (
        ("1f", "max delay to root"),
        ("2", "birthing instruction"),
        ("3", "original order"),
    )

    def __init__(self, machine, gcc2_registers_killed: bool = False) -> None:
        super().__init__(machine)
        self.gcc2_registers_killed = gcc2_registers_killed

    def make_builder(self) -> DagBuilder:
        return TableForwardBuilder(self.machine)

    def prepare(self, dag: Dag) -> None:
        forward_pass(dag)
        if self.gcc2_registers_killed:
            annotate_register_usage(dag)

    def run(self, dag: Dag) -> ScheduleResult:
        terms: list[tuple] = [
            ("max_delay_from_root", _W1),
            ("birthing", _W2),
        ]
        if self.gcc2_registers_killed:
            # In the backward pass, favoring nodes that *birth* few /
            # kill many registers keeps live ranges short.
            terms.append(("registers_killed", _W3))
        priority = weighted(*terms)

        def adjust(node: DagNode, state: SchedulerState) -> None:
            apply_birthing_adjustment(node)

        # Original order is the built-in tie break of the backward
        # scheduler (highest id is placed nearest the end).
        return schedule_backward(dag, self.machine, priority,
                                 on_schedule=adjust)
