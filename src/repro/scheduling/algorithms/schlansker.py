"""Schlansker [12]: critical-path (slack) backward scheduling.

Table 2 row: DAG construction not given (we pair the backward table
builder, matching the backward scheduling pass); scheduling pass ``b``;
single priority value over:

1. (f+b) slack -- zero-slack nodes are on the critical path;
2. (b) latest start time.

Polarity note: the backward pass selects instructions for the *end* of
the block first, so the highest backward priority goes to nodes that
can afford to start late -- LARGE slack and LARGE latest start time.
Critical (zero-slack) nodes are therefore selected last and end up at
the front of the schedule, exactly where a critical-path algorithm
wants them.

This is the one algorithm in Table 2 whose need for both a forward and
a backward heuristic pass is unavoidable (slack = LST - EST).
"""

from __future__ import annotations

from repro.dag.builders.base import DagBuilder
from repro.dag.builders.table_backward import TableBackwardBuilder
from repro.dag.graph import Dag
from repro.heuristics.passes import backward_pass, forward_pass
from repro.scheduling.algorithms.base import PublishedAlgorithm
from repro.scheduling.list_scheduler import ScheduleResult, schedule_backward
from repro.scheduling.priority import weighted

_W1, _W2 = 10**8, 1


class Schlansker(PublishedAlgorithm):
    """Schlansker's VLIW/superscalar critical-path scheduler."""

    name = "Schlansker"
    reference = "[12]"
    dag_pass = "n.g."
    dag_algorithm = "n.g."
    sched_pass = "b"
    priority_fn = True
    ranking = (
        ("1f+b", "slack time"),
        ("2b", "latest start time"),
    )

    def make_builder(self) -> DagBuilder:
        return TableBackwardBuilder(self.machine)

    def prepare(self, dag: Dag) -> None:
        forward_pass(dag)
        backward_pass(dag, require_est=False)

    def run(self, dag: Dag) -> ScheduleResult:
        priority = weighted(
            ("slack", _W1),
            ("lst", _W2),
        )
        return schedule_backward(dag, self.machine, priority)
