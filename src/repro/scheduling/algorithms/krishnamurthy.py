"""Krishnamurthy [8]: table-building forward, forward pass + fixup.

Table 2 row: construction ``f`` / table building; scheduling
``f+postpass``; single priority value combining (in rank order):

1. (v) earliest execution time (inverse -- ready sooner is better),
2. (v) fpu interlocks (inverse -- busy unit is worse),
3. (b) max path length to a leaf,
4. execution time,
5. (b) max total delay to a leaf.

The postpass "fixup" tries to fill more operation delay slots than the
heuristic pass filled.
"""

from __future__ import annotations

from repro.dag.builders.base import DagBuilder
from repro.dag.builders.table_forward import TableForwardBuilder
from repro.dag.graph import Dag
from repro.heuristics.passes import backward_pass
from repro.scheduling.algorithms.base import PublishedAlgorithm
from repro.scheduling.fixup import delay_slot_fixup
from repro.scheduling.list_scheduler import ScheduleResult, schedule_forward
from repro.scheduling.priority import weighted
from repro.scheduling.timing import simulate

# Integer weight ladder: each rank dominates everything below it for
# any realistic block (values stay far below each step's span).
_W1, _W2, _W3, _W4, _W5 = 10**16, 10**12, 10**8, 10**4, 1


class Krishnamurthy(PublishedAlgorithm):
    """Krishnamurthy's multi-cycle-operation scheduler for pipelined RISC."""

    name = "Krishnamurthy"
    reference = "[8]"
    dag_pass = "f"
    dag_algorithm = "table building"
    sched_pass = "f+postpass"
    priority_fn = True
    ranking = (
        ("1v", "earliest time"),
        ("2v", "fpu interlocks"),
        ("3b", "max path to leaf"),
        ("4", "execution time"),
        ("5b", "max delay to leaf"),
    )

    def make_builder(self) -> DagBuilder:
        return TableForwardBuilder(self.machine)

    def prepare(self, dag: Dag) -> None:
        backward_pass(dag)

    def run(self, dag: Dag) -> ScheduleResult:
        priority = weighted(
            ("earliest_execution_time", _W1, "min"),
            ("fpu_busy_time", _W2, "min"),
            ("max_path_to_leaf", _W3),
            ("execution_time", _W4),
            ("max_delay_to_leaf", _W5),
        )
        result = schedule_forward(dag, self.machine, priority)
        fixed = delay_slot_fixup(result.order, self.machine)
        return ScheduleResult(fixed, simulate(fixed, self.machine))
