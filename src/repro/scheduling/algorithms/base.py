"""Base class and result type for the six published algorithms.

Each algorithm bundles the paper's three steps (Table 2 columns):

1. **DAG construction** -- which algorithm and pass direction;
2. **intermediate heuristic calculation** -- only the passes the
   algorithm's heuristics actually need;
3. **scheduling pass** -- direction, heuristic ranking, and whether
   the heuristics combine into a single priority value or winnow.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.base import BuildOutcome, DagBuilder
from repro.dag.graph import Dag, DagNode
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import ScheduleResult
from repro.scheduling.timing import ScheduleTiming, simulate, verify_order


@dataclass
class AlgorithmResult:
    """Outcome of one algorithm on one block.

    Attributes:
        algorithm: the algorithm's display name.
        order: scheduled instruction order.
        timing: pipeline timing of the schedule.
        original_timing: timing of the block's original order.
        build: the DAG construction outcome (dag + work counters).
    """

    algorithm: str
    order: list[DagNode]
    timing: ScheduleTiming
    original_timing: ScheduleTiming
    build: BuildOutcome

    @property
    def makespan(self) -> int:
        """Completion cycle of the produced schedule."""
        return self.timing.makespan

    @property
    def speedup(self) -> float:
        """Original makespan divided by scheduled makespan."""
        if self.timing.makespan == 0:
            return 1.0
        return self.original_timing.makespan / self.timing.makespan


class PublishedAlgorithm(abc.ABC):
    """One row of Table 2.

    Class attributes mirror the table: construction pass/algorithm,
    scheduling pass, priority-function vs winnowing, and the ranked
    heuristics (rank string as printed in the table, heuristic title).
    """

    #: display name
    name: str = "abstract"
    #: literature reference as cited by the paper
    reference: str = ""
    #: DAG construction pass: "f", "b", or "n.g." (not given)
    dag_pass: str = "n.g."
    #: DAG construction algorithm: "n**2", "table building", or "n.g."
    dag_algorithm: str = "n.g."
    #: scheduling pass: "f", "b", "f+postpass"
    sched_pass: str = "f"
    #: True when heuristics combine into a single priority value
    priority_fn: bool = False
    #: ranked heuristics: (rank label, Table 2 row title)
    ranking: tuple[tuple[str, str], ...] = ()

    def __init__(self, machine: MachineModel) -> None:
        self.machine = machine

    @abc.abstractmethod
    def make_builder(self) -> DagBuilder:
        """The DAG construction algorithm this scheduler pairs with."""

    @abc.abstractmethod
    def prepare(self, dag: Dag) -> None:
        """Run the intermediate heuristic passes this algorithm needs."""

    @abc.abstractmethod
    def run(self, dag: Dag) -> ScheduleResult:
        """Run the scheduling pass."""

    def schedule_block(self, block: BasicBlock) -> AlgorithmResult:
        """Apply all three steps to one basic block."""
        outcome = self.make_builder().build(block)
        self.prepare(outcome.dag)
        result = self.run(outcome.dag)
        verify_order(result.order, outcome.dag)
        original = simulate(
            [outcome.dag.nodes[i] for i in range(len(block.instructions))],
            self.machine)
        return AlgorithmResult(self.name, result.order, result.timing,
                               original, outcome)
