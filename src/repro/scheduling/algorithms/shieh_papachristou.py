"""Shieh & Papachristou [13]: forward winnowing over five heuristics.

Table 2 row: construction not given (we pair the forward table
builder); forward scheduling; winnowing order:

1. (b) max total delay to a leaf,
2. execution time,
3. number of children,
4. number of parents,
5. (f) max path length from root.

This is the second algorithm needing heuristics from both directions,
but the paper observes that the fifth heuristic "could possibly be
omitted or replaced with little effect because it is the last
heuristic to be applied" -- the ``drop_path_to_root`` switch exists so
that claim can be benchmarked.
"""

from __future__ import annotations

from repro.dag.builders.base import DagBuilder
from repro.dag.builders.table_forward import TableForwardBuilder
from repro.dag.graph import Dag
from repro.heuristics.passes import backward_pass, forward_pass
from repro.scheduling.algorithms.base import PublishedAlgorithm
from repro.scheduling.list_scheduler import ScheduleResult, schedule_forward
from repro.scheduling.priority import winnowing


class ShiehPapachristou(PublishedAlgorithm):
    """Shieh & Papachristou's pipelined-stream reordering algorithm."""

    name = "Shieh & Papachristou"
    reference = "[13]"
    dag_pass = "n.g."
    dag_algorithm = "n.g."
    sched_pass = "f"
    priority_fn = False
    ranking = (
        ("1b", "max delay to leaf"),
        ("2", "execution time"),
        ("3", "number of children"),
        ("4", "number of parents"),
        ("5f", "max path to root"),
    )

    def __init__(self, machine, drop_path_to_root: bool = False) -> None:
        super().__init__(machine)
        self.drop_path_to_root = drop_path_to_root

    def make_builder(self) -> DagBuilder:
        return TableForwardBuilder(self.machine)

    def prepare(self, dag: Dag) -> None:
        backward_pass(dag)
        if not self.drop_path_to_root:
            forward_pass(dag)

    def run(self, dag: Dag) -> ScheduleResult:
        terms = [
            "max_delay_to_leaf",
            "execution_time",
            "n_children",
            "n_parents",
        ]
        if not self.drop_path_to_root:
            # The paper refers to this last heuristic as "minimum path
            # to a root": among otherwise equal candidates, prefer the
            # shallower node so deep chains are started sooner.
            terms.append(("max_path_from_root", "min"))
        return schedule_forward(dag, self.machine, winnowing(*terms))
