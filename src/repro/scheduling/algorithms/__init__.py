"""The six published instruction scheduling algorithms of Table 2."""

from repro.scheduling.algorithms.base import (
    AlgorithmResult,
    PublishedAlgorithm,
)
from repro.scheduling.algorithms.gibbons_muchnick import GibbonsMuchnick
from repro.scheduling.algorithms.krishnamurthy import Krishnamurthy
from repro.scheduling.algorithms.schlansker import Schlansker
from repro.scheduling.algorithms.shieh_papachristou import ShiehPapachristou
from repro.scheduling.algorithms.tiemann import Tiemann
from repro.scheduling.algorithms.warren import Warren

ALL_ALGORITHMS = (
    GibbonsMuchnick,
    Krishnamurthy,
    Schlansker,
    ShiehPapachristou,
    Tiemann,
    Warren,
)

__all__ = [
    "AlgorithmResult",
    "PublishedAlgorithm",
    "GibbonsMuchnick",
    "Krishnamurthy",
    "Schlansker",
    "ShiehPapachristou",
    "Tiemann",
    "Warren",
    "ALL_ALGORITHMS",
]
