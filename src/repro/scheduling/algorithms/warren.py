"""Warren [16]: the IBM RISC System/6000 scheduler.

Table 2 row: ``n**2`` forward construction; forward scheduling;
winnowing order:

1. (v) earliest (execution) time,
2. alternate type -- balance the superscalar's instruction classes,
3. (b) max total delay to a leaf,
4. register liveness,
5. (v) number of uncovered children -- Warren's exact measure of
   candidate-list growth,
6. original order.

Warren's algorithm "is designed to be performed both prepass as well
as postpass"; the ``prepass`` flag keeps or drops the liveness term
accordingly (after register allocation, pressure no longer matters).
"""

from __future__ import annotations

from repro.dag.builders.base import DagBuilder
from repro.dag.builders.compare_all import CompareAllBuilder
from repro.dag.graph import Dag
from repro.heuristics.passes import backward_pass
from repro.heuristics.register_usage import annotate_register_usage
from repro.scheduling.algorithms.base import PublishedAlgorithm
from repro.scheduling.list_scheduler import ScheduleResult, schedule_forward
from repro.scheduling.priority import winnowing


class Warren(PublishedAlgorithm):
    """Warren's RS/6000 scheduler."""

    name = "Warren"
    reference = "[16]"
    dag_pass = "f"
    dag_algorithm = "n**2"
    sched_pass = "f"
    priority_fn = False
    ranking = (
        ("1v", "earliest time"),
        ("2", "alternate type"),
        ("3b", "max delay to leaf"),
        ("4", "register liveness"),
        ("5v", "number uncovered"),
        ("6", "original order"),
    )

    def __init__(self, machine, prepass: bool = True) -> None:
        super().__init__(machine)
        self.prepass = prepass

    def make_builder(self) -> DagBuilder:
        return CompareAllBuilder(self.machine)

    def prepare(self, dag: Dag) -> None:
        backward_pass(dag)
        if self.prepass:
            annotate_register_usage(dag)

    def run(self, dag: Dag) -> ScheduleResult:
        terms: list = [
            ("earliest_execution_time", "min"),
            "alternate_type",
            "max_delay_to_leaf",
        ]
        if self.prepass:
            # Lower liveness (more kills than births) shrinks pressure.
            terms.append(("liveness", "min"))
        terms.append("n_uncovered_children")
        # Original order is the scheduler's built-in tie break.
        return schedule_forward(dag, self.machine, winnowing(*terms))
