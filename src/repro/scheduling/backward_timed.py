"""Clock-driven backward list scheduling.

The plain backward pass (:func:`~repro.scheduling.list_scheduler.
schedule_backward`) is priority-only: it fixes an order and lets the
pipeline sort out the stalls, which on machines with long latencies or
non-pipelined units can regress below the original order (measured in
``bench_table2_algorithms.py``).

This extension runs the backward pass against a *reverse clock*,
mirroring the forward scheduler exactly: reverse time ``rt`` counts
cycles back from the block's end; placing a node at ``rt`` makes each
parent ready no earlier than ``rt + arc delay`` (the parent must issue
that much before its child).  Candidates whose reverse-ready time lies
in the future wait, and the clock advances over reverse stalls --
giving the backward scheduler the same stall-awareness Table 1's
"earliest execution time" gives the forward one.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dag.graph import Dag, DagNode
from repro.errors import SchedulingError
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import (
    ScheduleResult,
    SchedulerState,
    _find_terminator,
)
from repro.scheduling.timing import simulate


def schedule_backward_timed(dag: Dag, machine: MachineModel,
                            priority: Callable[[DagNode, Any], Any],
                            pin_terminator: bool = True,
                            on_schedule: Callable[[DagNode, SchedulerState],
                                                  None] | None = None
                            ) -> ScheduleResult:
    """Backward list scheduling with a reverse clock.

    Args:
        dag: the block's DAG.
        machine: timing model (scalar reverse clock; function-unit
            hazards are still resolved by the final simulation).
        priority: ``(node, state) -> comparable``; largest wins among
            reverse-ready candidates, ties broken by latest original
            position (preserving original order).
        pin_terminator: place the block-ending transfer at the end.
        on_schedule: hook per selection (e.g. Tiemann's birthing bias).

    Raises:
        SchedulingError: on a cyclic DAG.
    """
    dag.reset_schedule_state()
    state = SchedulerState(machine)
    real = dag.real_nodes()
    terminator = _find_terminator(dag) if pin_terminator else None
    # Reverse-ready time per node id: min cycles from block end at
    # which the node may issue (0 = the last cycle).
    reverse_ready: dict[int, int] = {n.id: 0 for n in real}
    candidates = [n for n in real if n.unscheduled_children == 0]
    reversed_order: list[DagNode] = []
    rt = 0  # reverse clock

    while len(reversed_order) < len(real):
        if not candidates:
            raise SchedulingError("no candidates but schedule incomplete "
                                  "(cyclic DAG?)")
        if terminator is not None and not reversed_order \
                and terminator in candidates:
            best = terminator
        else:
            ready = [c for c in candidates if reverse_ready[c.id] <= rt]
            if not ready:
                rt = min(reverse_ready[c.id] for c in candidates)
                continue
            best = max(ready, key=lambda c: (priority(c, state), c.id))
        candidates.remove(best)
        best.scheduled = True
        reversed_order.append(best)
        for arc in best.in_arcs:
            parent = arc.parent
            if parent.is_dummy:
                continue
            parent.unscheduled_children -= 1
            need = rt + arc.delay
            if need > reverse_ready[parent.id]:
                reverse_ready[parent.id] = need
            if parent.unscheduled_children == 0:
                candidates.append(parent)
        state.last_scheduled = best
        state.n_scheduled += 1
        state.current_time = rt
        if on_schedule is not None:
            on_schedule(best, state)
        rt += 1

    order = list(reversed(reversed_order))
    return ScheduleResult(order, simulate(order, machine))
