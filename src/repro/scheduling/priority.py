"""Priority-function combinators.

"Some algorithms combine the heuristic information into a single
priority value per node, while others apply heuristics in a given
order in a winnowing-like process." (paper section 5)

* :func:`winnowing` builds a lexicographic priority: the first
  heuristic decides, later ones only break ties -- equivalent to
  repeatedly winnowing the candidate list.
* :func:`weighted` builds a single scalar priority value.

Both return ``priority(node, state) -> comparable``; the schedulers
select the candidate with the *largest* priority, breaking remaining
ties by original instruction order.  A term may be a catalog key
(string) or any ``(node, state) -> number`` callable; ``minimize=``
terms are negated so that smaller raw values rank higher.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dag.graph import DagNode
from repro.heuristics.catalog import heuristic_by_key

Term = Callable[[DagNode, Any], float]


def by_key(key: "str | Term", minimize: bool = False) -> Term:
    """Resolve a catalog key (or pass through a callable) as a term.

    Args:
        key: a Table 1 catalog key like ``"max_delay_to_leaf"``, or a
            ``(node, state) -> number`` callable.
        minimize: negate the value so smaller raw values win.
    """
    if callable(key):
        fn = key
    else:
        try:
            heuristic = heuristic_by_key(key)
        except KeyError:
            heuristic = None
        if heuristic is not None and heuristic.dynamic_fn is not None:
            fn = heuristic.dynamic_fn
        else:
            # Catalog static attribute, or a raw DagNode slot (e.g.
            # "max_delay_to_child", the phi=max variant section 6 uses).
            attr = heuristic.static_attr if heuristic is not None else key
            assert attr is not None
            if attr not in DagNode.__slots__:
                raise KeyError(f"unknown heuristic key {key!r}")

            def fn(node: DagNode, state: Any, _attr: str = attr) -> float:
                return getattr(node, _attr)

    if not minimize:
        return fn

    def negated(node: DagNode, state: Any) -> float:
        return -fn(node, state)

    return negated


def winnowing(*terms: "str | Term | tuple") -> Callable[[DagNode, Any], tuple]:
    """Lexicographic (winnowing) priority over the given terms.

    Each term is a key/callable, or a ``(key, "min")`` tuple for
    inverse heuristics.

    Example::

        priority = winnowing("max_delay_to_leaf",
                             ("earliest_execution_time", "min"),
                             "n_children")
    """
    resolved: list[Term] = []
    for term in terms:
        if isinstance(term, tuple):
            key, direction = term
            resolved.append(by_key(key, minimize=(direction == "min")))
        else:
            resolved.append(by_key(term))

    def priority(node: DagNode, state: Any) -> tuple:
        return tuple(fn(node, state) for fn in resolved)

    return priority


def weighted(*terms: "tuple") -> Callable[[DagNode, Any], float]:
    """Single-scalar (priority-function) combination of weighted terms.

    Each term is ``(key_or_callable, weight)`` or
    ``(key_or_callable, weight, "min")``.

    Example::

        priority = weighted(("earliest_execution_time", 100.0, "min"),
                            ("max_path_to_leaf", 10.0),
                            ("execution_time", 1.0))
    """
    resolved: list[tuple[Term, float]] = []
    for term in terms:
        if len(term) == 3:
            key, weight, direction = term
            resolved.append((by_key(key, minimize=(direction == "min")),
                             weight))
        else:
            key, weight = term
            resolved.append((by_key(key), weight))

    def priority(node: DagNode, state: Any) -> float:
        return sum(weight * fn(node, state) for fn, weight in resolved)

    return priority
