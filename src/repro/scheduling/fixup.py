"""Postpass delay-slot fixup.

"Some algorithms (e.g., Krishnamurthy) use a postpass 'fixup' to try
to fill more operation delay slots than are filled by the heuristic
scheduling pass." (paper section 5)

The fixup simulates the schedule, finds issue stalls, and tries to
hoist a later, already-ready instruction into each stall; it repeats
until a pass makes no improvement.
"""

from __future__ import annotations

from repro.dag.graph import DagNode
from repro.machine.model import MachineModel
from repro.scheduling.timing import simulate


def _hoist_candidate(order: list[DagNode], position: dict[int, int],
                     issue_times: tuple[int, ...], stall_pos: int,
                     stall_cycle: int) -> int | None:
    """Find the first later instruction legally hoistable to the stall.

    Legal means every parent is placed before the stall position with
    its arc delay satisfied at the stall cycle.
    """
    for j in range(stall_pos + 1, len(order)):
        node = order[j]
        legal = True
        for arc in node.in_arcs:
            if arc.parent.is_dummy:
                continue
            ppos = position.get(arc.parent.id)
            if ppos is None or ppos >= stall_pos:
                legal = False
                break
            if issue_times[ppos] + arc.delay > stall_cycle:
                legal = False
                break
        if legal:
            return j
    return None


def delay_slot_fixup(order: list[DagNode], machine: MachineModel,
                     max_passes: int = 4) -> list[DagNode]:
    """Krishnamurthy-style postpass: move ready instructions into stalls.

    Args:
        order: a legal schedule (not mutated).
        machine: timing model.
        max_passes: upper bound on improvement sweeps.

    Returns:
        A schedule whose makespan is less than or equal to the input's.
    """
    best = list(order)
    best_timing = simulate(best, machine)
    for _ in range(max_passes):
        timing = simulate(best, machine)
        position = {n.id: i for i, n in enumerate(best)}
        improved = False
        expected = 0
        for i, node in enumerate(best):
            issue = timing.issue_times[i]
            if issue > expected:
                # Stall before position i: try to fill cycle `expected`.
                j = _hoist_candidate(best, position, timing.issue_times,
                                     i, expected)
                if j is not None:
                    moved = best.pop(j)
                    best.insert(i, moved)
                    new_timing = simulate(best, machine)
                    if new_timing.makespan <= best_timing.makespan:
                        best_timing = new_timing
                        improved = True
                        break
                    # Revert a non-improving move.
                    best.pop(i)
                    best.insert(j, moved)
            expected = issue + 1
        if not improved:
            break
    return best
