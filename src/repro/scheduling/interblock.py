"""Cross-block scheduling information: inherited latencies.

Paper section 2: "If global information (i.e., across basic blocks) is
considered, there may be pseudo-nodes and arcs to represent operation
latencies inherited from immediately preceding blocks.  This extra
information can be used to avoid dependency stalls and structural
hazards that a purely local algorithm would ignore."  Section 7 lists
measuring this benefit as future work.

:func:`residual_latencies` extracts, from a scheduled predecessor
block, the resources whose producing operations are still in flight
when the block falls through; :func:`apply_inherited` seeds the
successor DAG with pseudo-arcs from a dummy entry node so that both
the static heuristics and the dynamic earliest-execution-time see the
inherited delays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dep import DepType
from repro.dag.graph import Dag, DagNode
from repro.isa.resources import Resource, defs_and_uses
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import ScheduleResult


@dataclass(frozen=True)
class ResidualLatency:
    """A value still being produced when control leaves the block.

    Attributes:
        resource: the resource being defined.
        remaining: cycles (measured from block exit) until the value
            is available.
    """

    resource: Resource
    remaining: int


def residual_latencies(result: ScheduleResult,
                       machine: MachineModel) -> list[ResidualLatency]:
    """Latencies outliving a scheduled block.

    An instruction issued at cycle ``t`` with operation latency ``L``
    delivers its results at ``t + L``; if the block's last issue is at
    cycle ``T``, anything with ``t + L > T + 1`` is still in flight
    ``(t + L) - (T + 1)`` cycles into the successor.
    """
    if not result.order:
        return []
    exit_cycle = result.timing.issue_times[-1] + 1
    residuals: dict[Resource, int] = {}
    for node, issue in zip(result.order, result.timing.issue_times):
        if node.instr is None:
            continue
        remaining = issue + machine.execution_time(node.instr) - exit_cycle
        if remaining <= 0:
            continue
        defs, _ = defs_and_uses(node.instr)
        for resource in defs:
            # Later redefinitions overwrite earlier residuals.
            residuals[resource] = remaining
    return [ResidualLatency(res, rem)
            for res, rem in sorted(residuals.items(),
                                   key=lambda kv: kv[0].name)]


def apply_inherited(dag: Dag, inherited: list[ResidualLatency]) -> DagNode:
    """Attach a pseudo entry node carrying inherited latencies.

    For every first use (or definition) of an inherited resource in
    the block, an arc from the pseudo node with the residual delay is
    added.  The pseudo node is a dummy: schedulers ignore it, but the
    forward pass and the earliest-execution-time machinery see the
    delays, so the scheduler will cover the inherited stall with
    independent work instead of issuing a dependent instruction into
    it.

    Returns:
        The pseudo entry node (also recorded as ``dag.dummy_root``).
    """
    pseudo = dag.add_node(None, execution_time=0)
    if dag.dummy_root is None:
        dag.dummy_root = pseudo
    if not inherited:
        return pseudo
    remaining = {r.resource: r.remaining for r in inherited}
    pending = set(remaining)
    for node in dag.real_nodes():
        if not pending:
            break
        if node.instr is None:
            continue
        defs, uses = defs_and_uses(node.instr)
        for resource in uses:
            if resource in pending:
                dag.add_arc(pseudo, node, DepType.RAW,
                            remaining[resource], resource)
                pending.discard(resource)
        for resource in defs:
            if resource in pending:
                # A redefinition must also wait (the in-flight write
                # lands later: WAW with the residual delay).
                dag.add_arc(pseudo, node, DepType.WAW,
                            remaining[resource], resource)
                pending.discard(resource)
    return pseudo


def seed_schedule_state(dag: Dag) -> None:
    """Initialize earliest execution times from the pseudo entry node.

    Call after ``dag.reset_schedule_state()`` (the forward scheduler
    does this itself when it sees a dummy root with delayed arcs).
    """
    pseudo = dag.dummy_root
    if pseudo is None:
        return
    for arc in pseudo.out_arcs:
        if arc.delay > arc.child.earliest_exec_time:
            arc.child.earliest_exec_time = arc.delay
