"""Schedulers: generic list scheduling, the six published algorithms,
postpass fixup, reservation tables, and an optimal branch-and-bound
scheduler."""

from repro.scheduling.timing import ScheduleTiming, simulate, verify_order
from repro.scheduling.priority import (
    by_key,
    weighted,
    winnowing,
)
from repro.scheduling.list_scheduler import (
    Decision,
    SchedulerState,
    ScheduleResult,
    schedule_backward,
    schedule_forward,
)
from repro.scheduling.fixup import delay_slot_fixup
from repro.scheduling.branch_and_bound import branch_and_bound_schedule
from repro.scheduling.reservation_scheduler import schedule_with_reservation
from repro.scheduling.backward_timed import schedule_backward_timed
from repro.scheduling.delay_slots import fill_delay_slot
from repro.scheduling.interblock import (
    apply_inherited,
    residual_latencies,
)

__all__ = [
    "Decision",
    "schedule_backward_timed",
    "fill_delay_slot",
    "apply_inherited",
    "residual_latencies",
    "ScheduleTiming",
    "simulate",
    "verify_order",
    "by_key",
    "weighted",
    "winnowing",
    "SchedulerState",
    "ScheduleResult",
    "schedule_forward",
    "schedule_backward",
    "delay_slot_fixup",
    "branch_and_bound_schedule",
    "schedule_with_reservation",
]
