"""Optimal basic-block scheduling by branch and bound.

The paper's first future-work item: "determining if an optimal
branch-and-bound scheduler would benefit performance for small basic
blocks."  Finding the optimal order is NP-complete [6], so this
scheduler is capped to small blocks and prunes with:

* an **incumbent** from a heuristic schedule (max delay to leaf);
* an admissible **lower bound**: an unscheduled node issuing at cycle
  ``t`` forces a makespan of at least ``t + max_delay_to_leaf + 1``
  (its longest downstream delay chain plus one cycle for the final
  leaf's execution).

The search explores selection orders for an in-order, scalar issue
model (the issue cycle of each selection is forced, so orders are the
whole search space).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.graph import Dag, DagNode
from repro.errors import SchedulingError
from repro.heuristics.passes import backward_pass
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import ScheduleResult, schedule_forward
from repro.scheduling.priority import winnowing
from repro.scheduling.timing import simulate


@dataclass
class _SearchStats:
    nodes_expanded: int = 0
    pruned_by_bound: int = 0


def branch_and_bound_schedule(dag: Dag, machine: MachineModel,
                              max_block_size: int = 16,
                              max_expansions: int = 200_000
                              ) -> tuple[ScheduleResult, bool]:
    """Find a makespan-optimal schedule for a small block.

    Args:
        dag: the block's DAG; the backward pass is run if needed.
        machine: timing model (scalar in-order issue assumed).
        max_block_size: refuse blocks larger than this.
        max_expansions: search-effort cap; when hit, the best schedule
            found so far is returned with ``proved_optimal=False``.

    Returns:
        ``(result, proved_optimal)``.

    Raises:
        SchedulingError: if the block exceeds ``max_block_size``.
    """
    real = dag.real_nodes()
    n = len(real)
    if n > max_block_size:
        raise SchedulingError(
            f"branch and bound capped at {max_block_size} instructions; "
            f"block has {n}")
    if all(node.max_delay_to_leaf == 0 for node in real):
        backward_pass(dag)

    # Incumbent from the standard critical-path heuristic.
    incumbent = schedule_forward(
        dag, machine, winnowing("max_delay_to_leaf", "max_delay_to_child"))
    best_order = list(incumbent.order)
    best_makespan = incumbent.makespan

    id_to_pos = {node.id: i for i, node in enumerate(real)}
    out_arcs = [[(id_to_pos[a.child.id], a.delay)
                 for a in node.out_arcs if not a.child.is_dummy]
                for node in real]
    n_parents = [sum(1 for a in node.in_arcs if not a.parent.is_dummy)
                 for node in real]
    tails = [node.max_delay_to_leaf + 1 for node in real]
    exec_times = [node.execution_time for node in real]
    units = [machine.units.unit_for(node.instr.opcode.iclass)
             if node.instr is not None else None for node in real]

    stats = _SearchStats()
    order_stack: list[int] = []

    def dfs(ready: list[int], pending_parents: list[int],
            eet: list[int], cycle: int, finish_max: int,
            unit_free: dict[str, int]) -> None:
        nonlocal best_order, best_makespan
        if stats.nodes_expanded >= max_expansions:
            return
        stats.nodes_expanded += 1
        if not ready:
            if finish_max < best_makespan:
                best_makespan = finish_max
                best_order = [real[i] for i in order_stack]
            return
        # Explore most promising first: longest tail.
        for pick in sorted(ready, key=lambda i: -tails[i]):
            unit = units[pick]
            start = max(cycle, eet[pick])
            if unit is not None and not unit.pipelined:
                start = max(start, unit_free.get(unit.name, 0))
            if start + tails[pick] >= best_makespan:
                stats.pruned_by_bound += 1
                continue
            finish = start + exec_times[pick]
            new_finish_max = max(finish_max, finish)
            new_ready = [r for r in ready if r != pick]
            changed_eet: list[tuple[int, int]] = []
            appended = 0
            for child, delay in out_arcs[pick]:
                pending_parents[child] -= 1
                t = start + delay
                if t > eet[child]:
                    changed_eet.append((child, eet[child]))
                    eet[child] = t
                if pending_parents[child] == 0:
                    new_ready.append(child)
                    appended += 1
            new_unit_free = unit_free
            if unit is not None and not unit.pipelined:
                new_unit_free = dict(unit_free)
                new_unit_free[unit.name] = finish
            order_stack.append(pick)
            dfs(new_ready, pending_parents, eet, start + 1,
                new_finish_max, new_unit_free)
            order_stack.pop()
            for child, old in changed_eet:
                eet[child] = old
            for child, _ in out_arcs[pick]:
                pending_parents[child] += 1

    initial_ready = [i for i in range(n) if n_parents[i] == 0]
    dfs(initial_ready, list(n_parents), [0] * n, 0, 0, {})

    timing = simulate(best_order, machine)
    proved = stats.nodes_expanded < max_expansions
    return ScheduleResult(best_order, timing), proved
