"""Generic list scheduling, forward and backward.

"List scheduling algorithms examine a candidate list of ready-to-
execute instructions at each time step and apply one or more
heuristics to determine the 'best' instruction to issue." (section 1)

The forward scheduler maintains a current time and the dynamic
earliest-execution-time values; "nodes are admitted to the candidate
list when all parents are scheduled and the earliest execution time is
less than or equal to the current time" (section 3).  The backward
scheduler (Tiemann/Schlansker style) selects from nodes whose children
are all scheduled, building the instruction sequence from the end.

Both pin the basic block's terminating control transfer to its
position (first pick of the backward pass, last pick of the forward
pass) so the branch stays the final instruction of the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dag.graph import Dag, DagNode
from repro.errors import SchedulingError
from repro.machine.model import MachineModel
from repro.scheduling.timing import ScheduleTiming, simulate


@dataclass
class SchedulerState:
    """Scheduling-time state the dynamic (``v``) heuristics read.

    Attributes:
        machine: the timing model.
        current_time: the scheduler's clock (forward pass only).
        last_scheduled: most recently selected node.
        unit_free: next free cycle of each non-pipelined unit.
        n_scheduled: how many nodes are placed so far.
    """

    machine: MachineModel
    current_time: int = 0
    last_scheduled: DagNode | None = None
    unit_free: dict[str, int] = field(default_factory=dict)
    n_scheduled: int = 0


@dataclass(frozen=True)
class Decision:
    """One scheduling decision, for heuristic forensics.

    Attributes:
        time: the scheduler clock at the pick.
        chosen: node id selected.
        candidates: node ids that were ready (chosen included).
        priorities: priority value per candidate id at pick time.
    """

    time: int
    chosen: int
    candidates: tuple[int, ...]
    priorities: dict[int, Any]


@dataclass
class ScheduleResult:
    """A finished schedule with its timing.

    Attributes:
        order: the scheduled instruction order (real nodes only).
        timing: simulated pipeline timing of that order.
        original_timing: timing of the block's original order, for
            speedup reporting.
    """

    order: list[DagNode]
    timing: ScheduleTiming
    original_timing: ScheduleTiming | None = None

    @property
    def makespan(self) -> int:
        """Completion cycle of the schedule."""
        return self.timing.makespan


PriorityFn = Callable[[DagNode, Any], Any]


def _find_terminator(dag: Dag) -> DagNode | None:
    """The block-terminating control node (always last in block order)."""
    real = dag.real_nodes()
    if real and real[-1].instr is not None \
            and real[-1].instr.opcode.ends_block:
        return real[-1]
    return None


def _ready_time(node: DagNode, state: SchedulerState,
                consider_units: bool) -> int:
    """Earliest cycle the node could issue at, deps and units included."""
    ready = node.earliest_exec_time
    if consider_units and node.instr is not None:
        unit = state.machine.units.unit_for(node.instr.opcode.iclass)
        if not unit.pipelined:
            free = state.unit_free.get(unit.name, 0)
            if free > ready:
                ready = free
    return ready


def schedule_forward(dag: Dag, machine: MachineModel,
                     priority: PriorityFn,
                     pin_terminator: bool = True,
                     consider_units: bool = True,
                     on_schedule: Callable[[DagNode, SchedulerState], None]
                     | None = None,
                     decisions: list["Decision"] | None = None
                     ) -> ScheduleResult:
    """Forward list scheduling.

    Args:
        dag: the block's dependence DAG (dummy nodes allowed; ignored).
        machine: timing model (drives the clock and unit busy times).
        priority: ``(node, state) -> comparable``; the LARGEST value
            wins, ties broken by original instruction order.
        pin_terminator: keep the block-ending branch/call last.
        consider_units: model non-pipelined function-unit hazards.
        on_schedule: optional hook called after each selection.
        decisions: when a list is supplied, a :class:`Decision` record
            is appended for every pick (heuristic forensics; see
            :mod:`repro.analysis.decisions`).

    Raises:
        SchedulingError: if the DAG cannot be fully scheduled (cycle).
    """
    dag.reset_schedule_state()
    # Inherited-latency pseudo-arcs from a dummy root seed the initial
    # earliest execution times (see repro.scheduling.interblock).
    if dag.dummy_root is not None:
        for arc in dag.dummy_root.out_arcs:
            if arc.delay > arc.child.earliest_exec_time:
                arc.child.earliest_exec_time = arc.delay
    state = SchedulerState(machine)
    real = dag.real_nodes()
    terminator = _find_terminator(dag) if pin_terminator else None
    candidates: list[DagNode] = [n for n in real
                                 if n.unscheduled_parents == 0]
    order: list[DagNode] = []
    width = machine.issue_width
    slots_left = width
    # Per-cycle unit occupancy (superscalar pairing constraint).
    cycle_units: dict[str, int] = {}
    n_total = len(real)

    def slot_blocked(c: DagNode) -> bool:
        if not consider_units or c.instr is None:
            return False
        unit = machine.units.unit_for(c.instr.opcode.iclass)
        return cycle_units.get(unit.name, 0) >= unit.copies

    while len(order) < n_total:
        if not candidates:
            raise SchedulingError("no candidates but schedule incomplete "
                                  "(cyclic DAG?)")
        pool = candidates
        if terminator is not None and len(order) < n_total - 1 \
                and len(pool) > 1:
            pool = [c for c in pool if c is not terminator]
        ready = [c for c in pool
                 if _ready_time(c, state, consider_units)
                 <= state.current_time and not slot_blocked(c)]
        if not ready or slots_left == 0:
            # Stall: advance the clock to the earliest availability.
            next_time = min(
                max(_ready_time(c, state, consider_units),
                    state.current_time + 1 if slot_blocked(c) else 0)
                for c in pool)
            state.current_time = max(next_time, state.current_time + 1)
            slots_left = width
            cycle_units = {}
            continue
        best = max(ready, key=lambda c: (priority(c, state), -c.id))
        if decisions is not None:
            decisions.append(Decision(
                time=state.current_time,
                chosen=best.id,
                candidates=tuple(c.id for c in ready),
                priorities={c.id: priority(c, state) for c in ready}))
        candidates.remove(best)
        best.scheduled = True
        best.issue_time = state.current_time
        order.append(best)
        slots_left -= 1
        if consider_units and best.instr is not None:
            unit = machine.units.unit_for(best.instr.opcode.iclass)
            cycle_units[unit.name] = cycle_units.get(unit.name, 0) + 1
            if not unit.pipelined:
                state.unit_free[unit.name] = (state.current_time
                                              + best.execution_time)
        for arc in best.out_arcs:
            child = arc.child
            if child.is_dummy:
                continue
            child.unscheduled_parents -= 1
            t = state.current_time + arc.delay
            if t > child.earliest_exec_time:
                child.earliest_exec_time = t
            if child.unscheduled_parents == 0:
                candidates.append(child)
        state.last_scheduled = best
        state.n_scheduled += 1
        if on_schedule is not None:
            on_schedule(best, state)
        if width == 1:
            state.current_time += 1
            slots_left = 1
            cycle_units = {}

    timing = simulate(order, machine, consider_units)
    return ScheduleResult(order, timing)


def schedule_backward(dag: Dag, machine: MachineModel,
                      priority: PriorityFn,
                      pin_terminator: bool = True,
                      on_schedule: Callable[[DagNode, SchedulerState], None]
                      | None = None,
                      decisions: list["Decision"] | None = None
                      ) -> ScheduleResult:
    """Backward list scheduling (Tiemann / Schlansker style).

    Selects from nodes whose children are all placed, building the
    sequence from the last instruction toward the first.  The backward
    pass is priority-driven (no clock): timing of the resulting order
    is evaluated by the same simulator as the forward pass.
    """
    dag.reset_schedule_state()
    state = SchedulerState(machine)
    real = dag.real_nodes()
    terminator = _find_terminator(dag) if pin_terminator else None
    candidates: list[DagNode] = [n for n in real
                                 if n.unscheduled_children == 0]
    reversed_order: list[DagNode] = []
    n_total = len(real)

    while len(reversed_order) < n_total:
        if not candidates:
            raise SchedulingError("no candidates but schedule incomplete "
                                  "(cyclic DAG?)")
        if terminator is not None and not reversed_order \
                and terminator in candidates:
            best = terminator
        else:
            best = max(candidates,
                       key=lambda c: (priority(c, state), c.id))
        if decisions is not None:
            decisions.append(Decision(
                time=state.n_scheduled,
                chosen=best.id,
                candidates=tuple(c.id for c in candidates),
                priorities={c.id: priority(c, state)
                            for c in candidates}))
        candidates.remove(best)
        best.scheduled = True
        reversed_order.append(best)
        for arc in best.in_arcs:
            parent = arc.parent
            if parent.is_dummy:
                continue
            parent.unscheduled_children -= 1
            if parent.unscheduled_children == 0:
                candidates.append(parent)
        state.last_scheduled = best
        state.n_scheduled += 1
        if on_schedule is not None:
            on_schedule(best, state)

    order = list(reversed(reversed_order))
    timing = simulate(order, machine)
    return ScheduleResult(order, timing)
