"""Pipeline timing: evaluate an instruction order on a machine.

The simulator models in-order issue: each instruction issues at the
earliest cycle that satisfies (a) its dependence-arc delays from
already-issued parents, (b) the busy time of a non-pipelined function
unit, (c) the per-cycle capacity of its (pipelined) function unit --
a superscalar can only pair instructions whose units have free copies,
which is what the alternate-type heuristic exploits -- and (d) the
machine's issue width.  ``makespan`` (completion of the last finishing
instruction) is the figure of merit schedules are compared on;
``stall_cycles`` counts issue cycles lost beyond the width-limited
minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.dag.graph import Dag, DagNode
from repro.machine.model import MachineModel


@dataclass(frozen=True)
class ScheduleTiming:
    """Timing of one schedule.

    Attributes:
        issue_times: issue cycle per node, in schedule order.
        makespan: completion cycle of the last finishing instruction.
        stall_cycles: issue cycles beyond the width-limited minimum
            (0 for a perfectly packed schedule).
    """

    issue_times: tuple[int, ...]
    makespan: int
    stall_cycles: int


def verify_order(order: list[DagNode], dag: Dag) -> None:
    """Check that ``order`` is a legal (topological, complete) schedule.

    Raises:
        SchedulingError: if any real node is missing/duplicated or any
            arc points from a later to an earlier position.
    """
    real_ids = {n.id for n in dag.real_nodes()}
    seen_ids = [n.id for n in order]
    if sorted(seen_ids) != sorted(real_ids):
        raise SchedulingError(
            f"schedule covers {len(seen_ids)} nodes, block has "
            f"{len(real_ids)}")
    position = {nid: i for i, nid in enumerate(seen_ids)}
    for node in order:
        for arc in node.out_arcs:
            if arc.child.is_dummy:
                continue
            if position[arc.child.id] < position[node.id]:
                raise SchedulingError(
                    f"arc {node.id}->{arc.child.id} violated by schedule")


def simulate(order: list[DagNode], machine: MachineModel,
             consider_units: bool = True) -> ScheduleTiming:
    """Simulate in-order issue of ``order`` and return its timing."""
    width = machine.issue_width
    issue_time: dict[int, int] = {}
    unit_free: dict[str, int] = {}
    # Per-cycle unit occupancy: unit name -> count issued in `cycle`.
    cycle_units: dict[str, int] = {}
    issue_times: list[int] = []
    cycle = 0
    slots_left = width
    makespan = 0
    for node in order:
        ready = 0
        for arc in node.in_arcs:
            parent_issue = issue_time.get(arc.parent.id)
            if parent_issue is None and arc.parent.is_dummy:
                # Pseudo entry nodes (inherited latencies) issue at
                # cycle 0 by definition.
                parent_issue = 0
            if parent_issue is not None:
                t = parent_issue + arc.delay
                if t > ready:
                    ready = t
        unit = None
        if consider_units and node.instr is not None:
            unit = machine.units.unit_for(node.instr.opcode.iclass)
            if not unit.pipelined:
                free = unit_free.get(unit.name, 0)
                if free > ready:
                    ready = free
        unit_full = (unit is not None
                     and cycle_units.get(unit.name, 0) >= unit.copies)
        if ready > cycle or slots_left == 0 or unit_full:
            cycle = max(ready, cycle + (1 if slots_left == 0 or unit_full
                                        else 0))
            slots_left = width
            cycle_units = {}
        issue_time[node.id] = cycle
        issue_times.append(cycle)
        finish = cycle + node.execution_time
        if finish > makespan:
            makespan = finish
        if unit is not None:
            cycle_units[unit.name] = cycle_units.get(unit.name, 0) + 1
            if not unit.pipelined:
                unit_free[unit.name] = finish
        slots_left -= 1
    n = len(order)
    minimal_issue_span = (n + width - 1) // width
    last_issue = issue_times[-1] if issue_times else -1
    stall = max(0, (last_issue + 1) - minimal_issue_span)
    return ScheduleTiming(tuple(issue_times), makespan, stall)
