"""Branch delay-slot filling.

Paper section 1: control hazards "can also be handled in a special
manner, possibly by a delay slot scheduler."  On the SPARC-like target
every taken control transfer executes one following instruction; the
compiler conventionally parks a ``nop`` there and a delay-slot
scheduler tries to replace it with useful work hoisted from above the
branch.

:func:`fill_delay_slot` implements the classic from-above filler: the
candidate must not feed the branch (directly or transitively), must
not define anything the branch reads, and moving it below the branch
must not violate any of its own consumers -- which is guaranteed here
because the slot instruction still executes before the branch target.
"""

from __future__ import annotations

from repro.dag.bitmap import compute_reachability
from repro.dag.graph import Dag, DagNode


def fill_delay_slot(order: list[DagNode], dag: Dag,
                    slot_nop: DagNode | None = None
                    ) -> tuple[list[DagNode], DagNode | None]:
    """Move a safe instruction into the terminator's delay slot.

    Args:
        order: a scheduled order whose last element is the block's
            delayed control transfer.
        dag: the block's DAG (used for the safety analysis).
        slot_nop: the current slot instruction (a nop from the
            following block's head) if the caller tracks one; purely
            informational.

    Returns:
        ``(new_order, filler)`` where ``filler`` is the instruction
        moved after the branch (now in the slot), or None when nothing
        was safe to move.  ``new_order`` lists the filler last, after
        the branch.
    """
    if not order:
        return order, None
    branch = order[-1]
    if branch.instr is None or not branch.instr.opcode.delayed:
        return order, None
    if branch.instr.annulled:
        # An annulling branch executes its slot only when taken;
        # hoisting an instruction into it would delete that
        # instruction from the fall-through path.
        return order, None
    rmap = compute_reachability(dag)
    # Walk candidates from nearest-to-branch upward: the latest legal
    # instruction keeps the rest of the schedule untouched.
    for i in range(len(order) - 2, -1, -1):
        candidate = order[i]
        if candidate.instr is None or candidate.instr.opcode.ends_block:
            continue
        # Must not be an ancestor of the branch (its result feeds the
        # branch or something the branch waits on).
        if rmap.reaches(candidate.id, branch.id):
            continue
        # Every consumer of the candidate must tolerate the move: the
        # slot executes immediately after the branch, i.e. exactly one
        # position later, so consumers *inside this block* would now
        # precede their producer -- only candidates with no in-block
        # children below them in the schedule are safe.  Since the
        # candidate is not an ancestor of the branch, its children are
        # all scheduled after it; requiring it to have no real
        # children at all keeps the move trivially sound.
        if any(not a.child.is_dummy for a in candidate.out_arcs):
            continue
        new_order = order[:i] + order[i + 1:] + [candidate]
        return new_order, candidate
    return order, None
