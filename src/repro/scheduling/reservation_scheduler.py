"""Resource-reservation-table scheduling.

"A more refined form of scheduling uses an explicit resource
reservation table ... This latter approach always inserts the 'highest
priority' instruction into the earliest empty slots of the table"
(paper section 1).  Each instruction is an aggregate block of busy
cycles (:class:`~repro.machine.reservation.UsagePattern`); scheduling
pattern-matches those blocks into the partially filled table while
honoring operand dependences.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dag.graph import Dag, DagNode
from repro.errors import SchedulingError
from repro.machine.model import MachineModel
from repro.machine.reservation import ReservationTable
from repro.scheduling.list_scheduler import ScheduleResult, SchedulerState
from repro.scheduling.timing import ScheduleTiming


def schedule_with_reservation(dag: Dag, machine: MachineModel,
                              priority: Callable[[DagNode, Any], Any],
                              pin_terminator: bool = True) -> ScheduleResult:
    """Greedy reservation-table scheduling.

    Repeatedly takes the highest-priority candidate (all parents
    placed) and places its usage pattern at the earliest cycle that
    satisfies both its dependence delays and the reservation table.

    The returned order is by placed cycle; its timing comes from the
    placements themselves (not re-simulated), since the table already
    encodes the structural hazards.
    """
    dag.reset_schedule_state()
    state = SchedulerState(machine)
    table = ReservationTable(machine.units)
    real = dag.real_nodes()
    terminator = (real[-1] if pin_terminator and real
                  and real[-1].instr is not None
                  and real[-1].instr.opcode.ends_block else None)
    candidates = [n for n in real if n.unscheduled_parents == 0]
    placed: list[tuple[int, DagNode]] = []
    n_total = len(real)

    while len(placed) < n_total:
        if not candidates:
            raise SchedulingError("no candidates but schedule incomplete")
        pool = candidates
        if terminator is not None and len(placed) < n_total - 1 \
                and len(pool) > 1:
            pool = [c for c in pool if c is not terminator]
        best = max(pool, key=lambda c: (priority(c, state), -c.id))
        candidates.remove(best)
        pattern = machine.usage_pattern(best.instr) if best.instr else None
        start = best.earliest_exec_time
        if best is terminator and placed:
            # The block terminator must issue strictly after everything
            # already placed.
            start = max(start, 1 + max(t for t, _ in placed))
        if pattern is not None:
            start = table.earliest_fit(pattern, start)
            table.place(pattern, start)
        best.scheduled = True
        best.issue_time = start
        placed.append((start, best))
        state.last_scheduled = best
        state.current_time = start
        for arc in best.out_arcs:
            child = arc.child
            if child.is_dummy:
                continue
            child.unscheduled_parents -= 1
            t = start + arc.delay
            if t > child.earliest_exec_time:
                child.earliest_exec_time = t
            if child.unscheduled_parents == 0:
                candidates.append(child)

    placed.sort(key=lambda pair: (pair[0], pair[1].issue_time, pair[1].id))
    order = [node for _, node in placed]
    issue_times = tuple(t for t, _ in placed)
    makespan = max((t + node.execution_time for t, node in placed),
                   default=0)
    width = machine.issue_width
    minimal = (n_total + width - 1) // width
    stall = max(0, (issue_times[-1] + 1) - minimal) if issue_times else 0
    timing = ScheduleTiming(issue_times, makespan, stall)
    return ScheduleResult(order, timing)
