"""Fault injection against the schedule verifier.

Confidence in a verifier comes from watching it catch known-bad
inputs.  Each :class:`FaultKind` fabricates the artifact a specific
class of scheduler/builder bug would produce -- a schedule violating a
dropped arc, issue times computed from a shrunken delay, a swapped
dependent pair, a duplicated or lost instruction -- constructed so
that :func:`repro.verify.checker.verify_schedule` is *guaranteed* to
flag it (or the injector returns None because the block cannot host
that fault at all, e.g. a dependence-free block has no pair to swap).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cfg.basic_block import BasicBlock
from repro.dag.builders.compare_all import CompareAllBuilder
from repro.dag.graph import Arc, Dag
from repro.dag.transitive import classify_arcs
from repro.isa.instruction import Instruction
from repro.machine.model import MachineModel
from repro.scheduling.timing import simulate


class FaultKind(enum.Enum):
    """The mutation classes the verifier must catch."""

    #: drop an essential arc and emit an order that violates it
    DROP_ARC = "drop-arc"
    #: shrink a binding arc delay and claim the resulting issue times
    SHRINK_DELAY = "shrink-delay"
    #: swap a dependent (parent, child) pair in the original order
    SWAP_DEPENDENT_PAIR = "swap-dependent-pair"
    #: schedule one instruction twice
    DUPLICATE_INSTRUCTION = "duplicate-instruction"
    #: drop one instruction from the schedule
    LOSE_INSTRUCTION = "lose-instruction"


@dataclass
class InjectedFault:
    """One fabricated bad schedule.

    Attributes:
        kind: the mutation class.
        description: what exactly was corrupted.
        order: the corrupted schedule (instruction objects from the
            block).
        claimed_issue_times: issue-time claim to hand the verifier, or
            None when the fault is purely an ordering corruption.
    """

    kind: FaultKind
    description: str
    order: list[Instruction]
    claimed_issue_times: tuple[int, ...] | None = None


def _real_arcs(dag: Dag) -> list[Arc]:
    return [arc for node in dag.real_nodes() for arc in node.out_arcs
            if arc.child.instr is not None]


def _violating_order(block: BasicBlock, dag: Dag,
                     dropped: Arc) -> list[Instruction]:
    """A topological order of ``dag`` minus ``dropped`` that places the
    dropped arc's child before its parent.

    Kahn's algorithm, preferring any ready node over ``dropped.parent``:
    the parent can only be forced out early if it is the *sole* ready
    node, which would make every unplaced node (including the child) a
    descendant -- impossible, since the arc was essential (no
    alternative parent-to-child path) and was removed.
    """
    n = len(block.instructions)
    preds: list[set[int]] = [set() for _ in range(n)]
    for arc in _real_arcs(dag):
        if arc is dropped:
            continue
        preds[arc.child.id].add(arc.parent.id)
    placed: list[int] = []
    remaining = set(range(n))
    while remaining:
        ready = sorted(i for i in remaining if not preds[i] & remaining)
        choice = next((i for i in ready if i != dropped.parent.id),
                      ready[0])
        placed.append(choice)
        remaining.discard(choice)
    return [block.instructions[i] for i in placed]


def inject_fault(block: BasicBlock, machine: MachineModel,
                 kind: FaultKind) -> InjectedFault | None:
    """Fabricate a ``kind`` corruption of ``block``'s schedule.

    Returns:
        The fault, or None when the block cannot host one (e.g. no
        arc to drop, no arc delay to shrink).
    """
    outcome = CompareAllBuilder(machine).build(block)
    dag = outcome.dag
    arcs = _real_arcs(dag)

    if kind is FaultKind.DROP_ARC:
        labels = classify_arcs(dag)
        essential = [arc for arc in arcs if not labels[arc]]
        if not essential:
            return None
        arc = essential[0]
        return InjectedFault(
            kind,
            f"dropped essential arc {arc.parent.id}->{arc.child.id} "
            f"({arc.dep.value}, {arc.delay}) and scheduled around it",
            _violating_order(block, dag, arc))

    if kind is FaultKind.SHRINK_DELAY:
        # Claim the issue times a scheduler would compute if this arc
        # delay were 1; keep only candidates where the claim actually
        # violates the true delay (another arc may dominate).
        for arc in sorted(arcs, key=lambda a: -a.delay):
            if arc.delay < 2:
                break
            true_delay = arc.delay
            arc.delay = 1
            times = simulate(list(dag.real_nodes()),
                             machine).issue_times
            arc.delay = true_delay
            if times[arc.child.id] < times[arc.parent.id] + true_delay:
                return InjectedFault(
                    kind,
                    f"shrank arc {arc.parent.id}->{arc.child.id} "
                    f"delay {true_delay} -> 1 and claimed the "
                    f"resulting issue times",
                    list(block.instructions), times)
        return None

    if kind is FaultKind.SWAP_DEPENDENT_PAIR:
        if not arcs:
            return None
        arc = max(arcs, key=lambda a: a.delay)
        order = list(block.instructions)
        p, c = arc.parent.id, arc.child.id
        order[p], order[c] = order[c], order[p]
        return InjectedFault(
            kind,
            f"swapped dependent pair {p} <-> {c} "
            f"({arc.dep.value} arc)",
            order)

    if kind is FaultKind.DUPLICATE_INSTRUCTION:
        if not block.instructions:
            return None
        victim = block.instructions[len(block.instructions) // 2]
        return InjectedFault(
            kind, f"scheduled '{victim.render()}' twice",
            list(block.instructions) + [victim])

    if kind is FaultKind.LOSE_INSTRUCTION:
        if not block.instructions:
            return None
        victim = block.instructions[-1]
        return InjectedFault(
            kind, f"lost '{victim.render()}'",
            list(block.instructions[:-1]))

    raise ValueError(f"unknown fault kind: {kind!r}")


def inject_all(block: BasicBlock,
               machine: MachineModel) -> list[InjectedFault]:
    """Every injectable fault for this block, one per kind."""
    faults = []
    for kind in FaultKind:
        fault = inject_fault(block, machine, kind)
        if fault is not None:
            faults.append(fault)
    return faults
