"""Independent schedule verification.

A scheduler is only as trustworthy as the DAG it was given, and the
paper's whole point is that construction algorithms differ in which
arcs they keep (Figure 1's timing-essential transitive arc being the
canonical casualty).  This module re-derives the dependences of a
block from scratch with the compare-against-all reference builder and
checks a finished schedule against them, so a bug anywhere in the
construction/heuristic/scheduling chain is caught by machinery that
shares none of its code paths.

Four named checks make up a :class:`VerificationReport`:

* ``completeness`` -- the schedule is a permutation of the block;
* ``dependence-order`` -- every reference arc runs forward;
* ``timing`` -- the claimed issue times satisfy every reference arc
  delay (this is the check that fires when a builder dropped a
  timing-essential transitive arc and the scheduler believed the
  shortened critical path);
* ``semantics`` -- executing the original and scheduled orders from
  the same neutral machine state produces bit-identical final states
  (skipped for blocks the interpreter cannot execute).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.cfg.basic_block import BasicBlock
from repro.dag.bitmap import compute_reachability
from repro.dag.builders.cache import PairwiseCache
from repro.dag.builders.compare_all import CompareAllBuilder
from repro.dag.graph import Dag, DagNode
from repro.errors import BuilderMismatchError, ReproError, VerificationError
from repro.interp import MachineState, UnsupportedInstruction, execute
from repro.isa.instruction import Instruction
from repro.obs.metrics import MetricsRegistry, record_verify_check
from repro.obs.trace import NULL_TRACER, Tracer
from repro.isa.memory import AliasPolicy
from repro.isa.resources import ResourceKind, defs_and_uses
from repro.machine.model import MachineModel
from repro.scheduling.timing import simulate

#: how many offending items a check's detail message names before
#: eliding the rest
_MAX_DETAILS = 3


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named verification check.

    Attributes:
        name: the check ("completeness", "dependence-order", "timing",
            "semantics").
        passed: whether the schedule survived the check.
        detail: what went wrong (or why the check was skipped).
    """

    name: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All check outcomes for one block's schedule.

    Attributes:
        block: label or index description of the block.
        approach: the scheduling approach under test, if known.
        checks: one :class:`CheckResult` per executed check.
    """

    block: str
    approach: str = ""
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Did every check pass?"""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        """The checks that failed."""
        return [check for check in self.checks if not check.passed]

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` on failure."""
        bad = self.failures
        if bad:
            raise VerificationError(
                f"{bad[0].name} check failed: {bad[0].detail}",
                block=self.block, check=bad[0].name,
                detail=bad[0].detail)


def _schedule_instructions(
        order: Sequence[DagNode | Instruction]) -> list[Instruction]:
    """Normalize a schedule to its instruction sequence."""
    instructions: list[Instruction] = []
    for item in order:
        if isinstance(item, DagNode):
            if item.instr is not None:
                instructions.append(item.instr)
        else:
            instructions.append(item)
    return instructions


def _elide(items: list[str]) -> str:
    shown = items[:_MAX_DETAILS]
    if len(items) > _MAX_DETAILS:
        shown.append(f"... {len(items) - _MAX_DETAILS} more")
    return "; ".join(shown)


def neutral_state(block: BasicBlock, seed: int = 1991) -> MachineState:
    """A deterministic initial state under which the block's memory
    expressions address pairwise-disjoint regions.

    Every base/index register named by a memory operand gets its own
    64 KiB-aligned region (seeded with pseudo-random words), every
    symbol its own far-away region, every other integer register a
    small pseudo-random value, and all sixteen double registers a
    pseudo-random double.  Disjointness matters: the builders'
    optimistic alias policies assume textually distinct expressions do
    not overlap, so the semantic check must execute the block in a
    state where that assumption actually holds.
    """
    rng = random.Random(seed)
    state = MachineState()
    exprs = []
    for instr in block.instructions:
        mem = instr.mem_operand()
        if mem is not None:
            exprs.append(mem.expr)
    address_regs = sorted({name for expr in exprs
                           for name in (expr.base, expr.index) if name})
    for k, name in enumerate(address_regs):
        base = 0x0001_0000 * (k + 1)
        state.write_int(name, base)
        for offset in range(-256, 256, 4):
            state.store_bytes(base + offset, 4, rng.getrandbits(32))
    if any(expr.symbol for expr in exprs):
        # Symbol addresses are assigned by repro.interp.execute in
        # sorted-name order starting at 0x4000_0000, 256 bytes apart;
        # seed that whole window so symbol-addressed loads read data.
        for offset in range(-256, 8192, 4):
            state.store_bytes(0x4000_0000 + offset, 4,
                              rng.getrandbits(32))
    for n in range(0, 32, 2):
        state.write_double(f"%f{n}", rng.uniform(-4.0, 4.0))
    for instr in block.instructions:
        _, uses = defs_and_uses(instr)
        for res in uses:
            if res.kind is not ResourceKind.REG:
                continue
            name = res.name
            if name[2:].isdigit() and name.startswith("%f"):
                continue  # FP registers seeded above
            if name in state.int_regs or name == "%g0":
                continue
            state.write_int(name, rng.getrandbits(16))
    return state


def verify_schedule(block: BasicBlock,
                    order: Sequence[DagNode | Instruction],
                    machine: MachineModel,
                    claimed_issue_times: Sequence[int] | None = None,
                    check_semantics: bool = True,
                    alias_policy: AliasPolicy | None = None,
                    approach: str = "",
                    cache: PairwiseCache | None = None,
                    tracer: Tracer | None = None,
                    metrics: MetricsRegistry | None = None,
                    ) -> VerificationReport:
    """Independently verify a schedule of ``block``.

    The reference dependences are re-derived with
    :class:`~repro.dag.builders.compare_all.CompareAllBuilder` -- the
    arc-superset algorithm -- so nothing the producing builder dropped
    can hide from the checks.

    Args:
        block: the original basic block.
        order: the schedule, as DAG nodes or instructions; instruction
            identity must match ``block.instructions``.
        machine: timing model.
        claimed_issue_times: issue cycle per schedule position, as
            claimed by the producer (e.g. ``result.timing.issue_times``
            from the list scheduler).  When given, the timing check
            validates the claim against the *reference* arc delays --
            catching builders whose pruned DAG under-constrained the
            schedule.  When None, the times are re-simulated on the
            reference DAG (always arc-consistent by construction).
        check_semantics: execute original and scheduled orders and
            compare final states (skipped when the interpreter refuses
            an instruction).
        alias_policy: memory disambiguation override for the reference
            build (default: the machine's policy).
        approach: display name recorded on the report.
        cache: optional
            :class:`~repro.dag.builders.cache.PairwiseCache`; the
            reference build consults it, so verifying a block right
            after scheduling it replays the recorded dependence work
            instead of re-deriving it.  Independence is preserved:
            the cached recipe was itself recorded from a reference
            (compare-against-all) build, never from the builder under
            test.
        tracer: optional :class:`~repro.obs.trace.Tracer`; the whole
            verification runs inside a ``verify`` span.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            each check's pass/fail/skip outcome is counted.

    Returns:
        A :class:`VerificationReport`; call ``raise_if_failed()`` to
        convert failures into a
        :class:`~repro.errors.VerificationError`.
    """
    tracer = tracer or NULL_TRACER
    label = block.label if block.label else str(block.index)
    with tracer.span("verify", block=label, approach=approach):
        report = _verify_schedule(
            block, order, machine, claimed_issue_times, check_semantics,
            alias_policy, approach, cache)
    for check in report.checks:
        record_verify_check(metrics, check.name, check.passed)
    return report


def _verify_schedule(block: BasicBlock,
                     order: Sequence[DagNode | Instruction],
                     machine: MachineModel,
                     claimed_issue_times: Sequence[int] | None,
                     check_semantics: bool,
                     alias_policy: AliasPolicy | None,
                     approach: str,
                     cache: PairwiseCache | None) -> VerificationReport:
    label = block.label if block.label else str(block.index)
    report = VerificationReport(block=label, approach=approach)
    scheduled = _schedule_instructions(order)

    # -- completeness ------------------------------------------------------
    block_pos = {id(instr): pos
                 for pos, instr in enumerate(block.instructions)}
    counts: dict[int, int] = {}
    problems: list[str] = []
    for instr in scheduled:
        key = id(instr)
        if key not in block_pos:
            problems.append(f"foreign instruction '{instr.render()}'")
            continue
        counts[key] = counts.get(key, 0) + 1
    for instr in block.instructions:
        n = counts.get(id(instr), 0)
        if n == 0:
            problems.append(f"lost '{instr.render()}'")
        elif n > 1:
            problems.append(f"duplicated '{instr.render()}' x{n}")
    report.checks.append(CheckResult(
        "completeness", not problems, _elide(problems)))

    # -- reference dependences ---------------------------------------------
    reference = CompareAllBuilder(
        machine, alias_policy, cache=cache).build(block)
    ref_dag = reference.dag
    # schedule position of each block position (first occurrence wins
    # when the schedule is corrupt; the checks below still apply to
    # whatever mapping exists)
    sched_pos: dict[int, int] = {}
    for pos, instr in enumerate(scheduled):
        original = block_pos.get(id(instr))
        if original is not None and original not in sched_pos:
            sched_pos[original] = pos

    # -- dependence order --------------------------------------------------
    violations: list[str] = []
    for parent in ref_dag.real_nodes():
        for arc in parent.out_arcs:
            if arc.child.instr is None:
                continue
            p = sched_pos.get(parent.id)
            c = sched_pos.get(arc.child.id)
            if p is None or c is None or p < c:
                continue
            violations.append(
                f"arc {parent.id}->{arc.child.id} "
                f"({arc.dep.value}, {arc.delay} via {arc.resource}) "
                f"scheduled {p} >= {c}")
    report.checks.append(CheckResult(
        "dependence-order", not violations, _elide(violations)))

    # -- timing ------------------------------------------------------------
    timing_ok = True
    timing_detail = ""
    if claimed_issue_times is not None \
            and len(claimed_issue_times) != len(scheduled):
        timing_ok = False
        timing_detail = (f"{len(claimed_issue_times)} issue times for "
                         f"{len(scheduled)} instructions")
    elif len(sched_pos) == len(block.instructions) and not violations:
        if claimed_issue_times is None:
            ref_order = sorted(ref_dag.real_nodes(),
                               key=lambda n: sched_pos[n.id])
            claimed_issue_times = simulate(ref_order,
                                           machine).issue_times
        issue_at = {original: claimed_issue_times[pos]
                    for original, pos in sched_pos.items()}
        # A compare-all arc whose resource is redefined by a node
        # between parent and child is *shadowed*: the child reads the
        # intermediate definition, so only the (transitively enforced)
        # ordering matters, not the full arc delay.  This is exactly
        # the nearest-definition semantics every builder implements.
        space = reference.space
        def_positions: dict[int, list[int]] = {}
        for pos, instr in enumerate(block.instructions):
            for rid in space.intern_instruction(instr)[0]:
                def_positions.setdefault(rid, []).append(pos)

        def shadowed(parent_id: int, child_id: int, rid: int) -> bool:
            positions = def_positions.get(rid, [])
            k = bisect.bisect_right(positions, parent_id)
            return k < len(positions) and positions[k] < child_id

        late: list[str] = []
        for parent in ref_dag.real_nodes():
            for arc in parent.out_arcs:
                if arc.child.instr is None or arc.resource is None:
                    continue
                if shadowed(parent.id, arc.child.id,
                            space.intern(arc.resource)):
                    continue
                need = issue_at[parent.id] + arc.delay
                got = issue_at[arc.child.id]
                if got < need:
                    late.append(
                        f"arc {parent.id}->{arc.child.id} "
                        f"({arc.dep.value}, {arc.delay}) needs issue "
                        f">= {need}, claimed {got}")
        timing_ok = not late
        timing_detail = _elide(late)
    else:
        timing_detail = "skipped: schedule is not a valid permutation"
    report.checks.append(CheckResult("timing", timing_ok, timing_detail))

    # -- semantics ---------------------------------------------------------
    if check_semantics:
        if not problems:
            try:
                before = neutral_state(block)
                original_state = execute(block.instructions, before)
                scheduled_state = execute(scheduled, before)
                same = (original_state.snapshot()
                        == scheduled_state.snapshot())
                report.checks.append(CheckResult(
                    "semantics", same,
                    "" if same else "final machine states differ"))
            except UnsupportedInstruction as exc:
                report.checks.append(CheckResult(
                    "semantics", True, f"skipped: {exc}"))
        else:
            report.checks.append(CheckResult(
                "semantics", True,
                "skipped: schedule is not a permutation"))
    return report


def check_builders_agree(block: BasicBlock, machine: MachineModel,
                         builders: Sequence[type] | None = None,
                         alias_policy: AliasPolicy | None = None,
                         cache: PairwiseCache | None = None) -> None:
    """Check that every builder induces the reference dependence closure.

    Arc *sets* legitimately differ (table methods drop covered WAR/WAW
    arcs, Landskov drops transitive arcs), but the transitive closure
    of the ordering relation must match the compare-against-all
    reference for the table and bitmap methods -- and for Landskov too,
    since pruned arcs are by definition implied by remaining paths.

    Args:
        block: the block to build five ways.
        machine: timing model.
        builders: builder classes to compare (default: all five).
        alias_policy: memory disambiguation override.
        cache: optional shared pairwise cache; each builder still keeps
            its own per-class arc recipe, so agreement under caching
            exercises the replay path rather than trivially comparing
            one DAG with itself.

    Raises:
        BuilderMismatchError: naming the first disagreeing builder and
            node.
    """
    if builders is None:
        from repro.dag.builders import ALL_BUILDERS
        builders = ALL_BUILDERS
    reference_closure = None
    reference_name = ""
    for cls in builders:
        builder = (cls(machine, alias_policy, cache=cache)
                   if cache is not None else cls(machine, alias_policy))
        rmap = compute_reachability(builder.build(block).dag)
        closure = [rmap.raw(i) for i in range(len(block.instructions))]
        if reference_closure is None:
            reference_closure = closure
            reference_name = builder.name
            continue
        for node_id, (got, want) in enumerate(
                zip(closure, reference_closure)):
            if got != want:
                raise BuilderMismatchError(
                    f"builder '{builder.name}' disagrees with "
                    f"'{reference_name}' on the descendants of node "
                    f"{node_id}", builder=builder.name, node=node_id)


@dataclass(frozen=True)
class BlockFailure:
    """One block's failure record in a degraded pipeline run.

    Attributes:
        index: block index within the program.
        label: block label, if any.
        stage: where it failed ("build", "schedule", "verify").
        error: the stringified :class:`~repro.errors.ReproError`.
    """

    index: int
    label: str | None
    stage: str
    error: str


def degraded_timing(block: BasicBlock, machine: MachineModel) -> int:
    """Makespan of the block's *original* order, for fallback
    accounting when scheduling failed.

    Prefers an independent reference build; if even that fails, falls
    back to an arc-free DAG (pure issue-width/unit timing).
    """
    try:
        dag = CompareAllBuilder(machine).build(block).dag
    except ReproError:
        dag = Dag()
        for instr in block.instructions:
            dag.add_node(instr, machine.execution_time(instr))
    return simulate(list(dag.real_nodes()), machine).makespan
