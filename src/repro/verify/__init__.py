"""Independent schedule verification and fault injection.

The trust-but-verify layer of the pipeline: :func:`verify_schedule`
re-derives a block's dependences with the compare-against-all
reference builder and checks a finished schedule for permutation
completeness, dependence order, issue-time legality, and semantic
equivalence; :mod:`repro.verify.faults` fabricates known-bad schedules
to prove the checks actually fire.
"""

from repro.verify.checker import (
    BlockFailure,
    CheckResult,
    VerificationReport,
    check_builders_agree,
    degraded_timing,
    neutral_state,
    verify_schedule,
)
from repro.verify.faults import (
    FaultKind,
    InjectedFault,
    inject_all,
    inject_fault,
)

__all__ = [
    "BlockFailure",
    "CheckResult",
    "VerificationReport",
    "check_builders_agree",
    "degraded_timing",
    "neutral_state",
    "verify_schedule",
    "FaultKind",
    "InjectedFault",
    "inject_all",
    "inject_fault",
]
