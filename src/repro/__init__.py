"""repro: instruction-scheduling DAG construction and heuristics.

A production-quality reproduction of M. Smotherman, S. Krishnamurthy,
P.S. Aravind and D. Hunnicutt, "Efficient DAG Construction and
Heuristic Calculation for Instruction Scheduling", MICRO-24, 1991.

Quickstart::

    from repro import (parse_asm, partition_blocks, generic_risc,
                       TableForwardBuilder, backward_pass,
                       schedule_forward, winnowing)

    program = parse_asm(open("kernel.s").read())
    machine = generic_risc()
    for block in partition_blocks(program):
        outcome = TableForwardBuilder(machine).build(block)
        backward_pass(outcome.dag)
        result = schedule_forward(
            outcome.dag, machine,
            winnowing("max_path_to_leaf", "max_delay_to_leaf"))
        print([n.instr.render() for n in result.order])

Subpackages:

* :mod:`repro.isa` -- SPARC-like ISA substrate;
* :mod:`repro.asm` -- assembly parser/writer;
* :mod:`repro.cfg` -- basic blocks and instruction windows;
* :mod:`repro.machine` -- timing models and reservation tables;
* :mod:`repro.dag` -- the dependence DAG and its five construction
  algorithms;
* :mod:`repro.heuristics` -- the 26 Table 1 heuristics and the
  intermediate calculation passes;
* :mod:`repro.scheduling` -- list scheduling, the six Table 2
  algorithms, postpass fixup, branch and bound;
* :mod:`repro.verify` -- independent schedule verification and fault
  injection;
* :mod:`repro.runner` -- resilient batch execution: watchdog budgets,
  builder fallback chains, checkpoint/resume journals, and the
  differential fuzz harness;
* :mod:`repro.regalloc` -- liveness/pressure substrate;
* :mod:`repro.workloads` -- Table 3-calibrated synthetic benchmarks;
* :mod:`repro.analysis` -- table regeneration and reporting.
"""

from repro.dep import DepType
from repro.errors import (
    AsmSyntaxError,
    BlockTimeout,
    BuilderMismatchError,
    CfgError,
    DagError,
    JournalError,
    ReproError,
    SchedulingError,
    VerificationError,
    WorkloadError,
)
from repro.asm import parse_asm, render_program
from repro.cfg import apply_window, partition_blocks, BasicBlock
from repro.machine import (
    MachineModel,
    generic_risc,
    rs6000_like,
    sparcstation2_like,
    superscalar2,
)
from repro.dag import Dag, DagNode, Arc
from repro.dag.builders import (
    ALL_BUILDERS,
    BitmapBackwardBuilder,
    CompareAllBuilder,
    LandskovBuilder,
    TableBackwardBuilder,
    TableForwardBuilder,
)
from repro.heuristics import (
    backward_pass,
    backward_pass_levels,
    catalog,
    forward_pass,
)
from repro.scheduling import (
    branch_and_bound_schedule,
    delay_slot_fixup,
    schedule_backward,
    schedule_forward,
    schedule_with_reservation,
    simulate,
    weighted,
    winnowing,
)
from repro.scheduling.algorithms import ALL_ALGORITHMS
from repro.scheduling.delay_slots import fill_delay_slot
from repro.scheduling.interblock import apply_inherited, residual_latencies
from repro.pipeline import run_pipeline, SECTION6_PRIORITY
from repro.transform import schedule_program, TransformReport
from repro.verify import (
    BlockFailure,
    FaultKind,
    VerificationReport,
    check_builders_agree,
    inject_fault,
    verify_schedule,
)
from repro.runner import (
    BatchResult,
    Budget,
    RunJournal,
    fuzz,
    run_batch,
    run_fingerprint,
    schedule_block_resilient,
)
from repro.dag.export import to_dot, to_networkx
from repro.minic import compile_minic, compile_to_program

__version__ = "1.0.0"

__all__ = [
    "DepType",
    "ReproError",
    "AsmSyntaxError",
    "BlockTimeout",
    "BuilderMismatchError",
    "CfgError",
    "DagError",
    "JournalError",
    "SchedulingError",
    "VerificationError",
    "WorkloadError",
    "parse_asm",
    "render_program",
    "partition_blocks",
    "apply_window",
    "BasicBlock",
    "MachineModel",
    "generic_risc",
    "sparcstation2_like",
    "rs6000_like",
    "superscalar2",
    "Dag",
    "DagNode",
    "Arc",
    "ALL_BUILDERS",
    "CompareAllBuilder",
    "LandskovBuilder",
    "TableForwardBuilder",
    "TableBackwardBuilder",
    "BitmapBackwardBuilder",
    "forward_pass",
    "backward_pass",
    "backward_pass_levels",
    "catalog",
    "schedule_forward",
    "schedule_backward",
    "schedule_with_reservation",
    "simulate",
    "winnowing",
    "weighted",
    "delay_slot_fixup",
    "branch_and_bound_schedule",
    "ALL_ALGORITHMS",
    "fill_delay_slot",
    "apply_inherited",
    "residual_latencies",
    "run_pipeline",
    "SECTION6_PRIORITY",
    "schedule_program",
    "TransformReport",
    "BlockFailure",
    "FaultKind",
    "VerificationReport",
    "check_builders_agree",
    "inject_fault",
    "verify_schedule",
    "BatchResult",
    "Budget",
    "RunJournal",
    "fuzz",
    "run_batch",
    "run_fingerprint",
    "schedule_block_resilient",
    "to_dot",
    "to_networkx",
    "compile_minic",
    "compile_to_program",
    "__version__",
]
