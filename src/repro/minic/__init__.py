"""mini-C: a tiny straight-line expression compiler.

The paper's benchmarks are *compiler output* — instruction streams
with redundant loads, deep expression temporaries, and long-latency
operations exactly where a naive code generator put them.  This
subpackage provides that substrate end to end: a C-like declaration +
assignment language, compiled with deliberately naive (no-CSE,
load-per-use) code generation into the repository's SPARC-like
assembly, ready for the DAG builders and schedulers.

::

    from repro.minic import compile_minic

    asm = compile_minic('''
        double a, b, c;
        int i, j;
        c = a * b + c / a;
        j = (i + 1) * (i - 1) % 7;
    ''')

Pipeline: :mod:`lexer` -> :mod:`parser` (precedence climbing) ->
:mod:`codegen` (pool-based register allocation, int/double typing with
conversion-through-memory, remainder lowering).
"""

from repro.minic.codegen import compile_minic, compile_to_program
from repro.minic.parser import parse_minic

__all__ = ["compile_minic", "compile_to_program", "parse_minic"]
