"""Recursive-descent / precedence-climbing parser for mini-C."""

from __future__ import annotations

from repro.minic.ast import (
    Assign,
    Binary,
    CType,
    Decl,
    Expr,
    FloatLit,
    Index,
    IntLit,
    Unary,
    Var,
)
from repro.minic.lexer import MiniCError, TokKind, Token, tokenize

#: Binding powers, C-like.
_PRECEDENCE = {
    "|": 10,
    "^": 20,
    "&": 30,
    "<<": 40, ">>": 40,
    "+": 50, "-": 50,
    "*": 60, "/": 60, "%": 60,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise MiniCError(
                f"expected {text!r}, got {token.text or 'end of input'!r}",
                token.line)
        return token

    # -- expressions -------------------------------------------------------

    def _primary(self) -> Expr:
        token = self._next()
        if token.kind is TokKind.INT:
            return IntLit(int(token.text, 0))
        if token.kind is TokKind.FLOAT:
            return FloatLit(float(token.text))
        if token.kind is TokKind.IDENT:
            if self._peek().text == "[":
                self._next()
                index = self._expression(0)
                self._expect("]")
                return Index(token.text, index)
            return Var(token.text)
        if token.text == "(":
            inner = self._expression(0)
            self._expect(")")
            return inner
        if token.text == "-":
            return Unary("-", self._primary())
        raise MiniCError(f"unexpected token {token.text!r}", token.line)

    def _expression(self, min_power: int) -> Expr:
        left = self._primary()
        while True:
            token = self._peek()
            power = _PRECEDENCE.get(token.text)
            if token.kind is not TokKind.OP or power is None \
                    or power < min_power:
                return left
            self._next()
            right = self._expression(power + 1)
            left = Binary(token.text, left, right)

    # -- statements --------------------------------------------------------

    def _declaration(self) -> Decl:
        keyword = self._next()
        ctype = CType.INT if keyword.text == "int" else CType.DOUBLE
        names = []
        sizes: list[int | None] = []
        while True:
            token = self._next()
            if token.kind is not TokKind.IDENT:
                raise MiniCError("expected identifier in declaration",
                                 token.line)
            names.append(token.text)
            if self._peek().text == "[":
                self._next()
                size_token = self._next()
                if size_token.kind is not TokKind.INT:
                    raise MiniCError("expected array size", size_token.line)
                sizes.append(int(size_token.text, 0))
                self._expect("]")
            else:
                sizes.append(None)
            token = self._next()
            if token.text == ";":
                break
            if token.text != ",":
                raise MiniCError("expected ',' or ';' in declaration",
                                 token.line)
        return Decl(ctype, tuple(names), tuple(sizes))

    def _assignment(self) -> Assign:
        token = self._next()
        if token.kind is not TokKind.IDENT:
            raise MiniCError(f"expected identifier, got {token.text!r}",
                             token.line)
        index: Expr | None = None
        if self._peek().text == "[":
            self._next()
            index = self._expression(0)
            self._expect("]")
        self._expect("=")
        expr = self._expression(0)
        self._expect(";")
        return Assign(token.text, expr, index)

    def parse(self) -> list:
        statements = []
        while self._peek().kind is not TokKind.EOF:
            if self._peek().kind is TokKind.KEYWORD:
                statements.append(self._declaration())
            else:
                statements.append(self._assignment())
        return statements


def parse_minic(source: str) -> list:
    """Parse mini-C source into a statement list.

    Raises:
        MiniCError: on lexical or syntax errors.
    """
    return _Parser(tokenize(source)).parse()
