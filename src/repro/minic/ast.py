"""mini-C abstract syntax."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CType(enum.Enum):
    """mini-C's two types."""

    INT = "int"
    DOUBLE = "double"


@dataclass(frozen=True)
class Expr:
    """Abstract expression node."""


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class FloatLit(Expr):
    value: float


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class Index(Expr):
    """An array element reference: ``name[index]``."""

    name: str
    index: Expr


@dataclass(frozen=True)
class Unary(Expr):
    op: str          # "-"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str          # + - * / % & | ^ << >>
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Decl:
    """A declaration statement: ``int a, b;`` / ``double x[8];``.

    Array sizes are recorded but semantically unused (slots are
    symbolic); a declared size marks the name as an array.
    """

    ctype: CType
    names: tuple[str, ...]
    array_sizes: tuple[int | None, ...] = ()


@dataclass(frozen=True)
class Assign:
    """An assignment statement: ``name = expr;`` or ``name[i] = expr;``."""

    name: str
    expr: Expr
    index: Expr | None = None


Statement = "Decl | Assign"
