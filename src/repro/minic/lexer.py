"""Tokenizer for the mini-C language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ReproError


class MiniCError(ReproError):
    """Raised for mini-C lexical, syntactic, or type errors."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int"         # integer literal
    FLOAT = "float"     # floating literal
    OP = "op"           # operator / punctuation
    KEYWORD = "keyword"  # int / double
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r})"


_KEYWORDS = {"int", "double"}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>\d+\.\d*|\.\d+)
  | (?P<int>0x[0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op><<|>>|[-+*/%&|^()=;,\[\]])
""", re.VERBOSE | re.DOTALL)


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source.

    Raises:
        MiniCError: on unrecognized characters.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise MiniCError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        line += text.count("\n")
        pos = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        if match.lastgroup == "float":
            tokens.append(Token(TokKind.FLOAT, text, line))
        elif match.lastgroup == "int":
            tokens.append(Token(TokKind.INT, text, line))
        elif match.lastgroup == "ident":
            kind = TokKind.KEYWORD if text in _KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, line))
        else:
            tokens.append(Token(TokKind.OP, text, line))
    tokens.append(Token(TokKind.EOF, "", line))
    return tokens
