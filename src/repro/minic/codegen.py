"""mini-C code generation.

Deliberately *naive* codegen — the style of unoptimized late-1980s
compiler output the paper's schedulers were built for:

* every variable reference loads from its memory slot (no CSE, no
  register promotion), so blocks are dense with load delay slots;
* expression temporaries live in a small register pool (allocation
  failure is a compile error rather than spilling);
* int/double conversions go through memory staging slots, exactly as
  SPARC V8 code generators did (``st``/``ld``/``fitod``);
* ``%`` lowers to the classic divide/multiply/subtract triple;
* double negation is the even-half ``fnegs`` + odd-half ``fmovs``
  pair, V8-style;
* double constants are materialized from synthetic constant-pool
  slots (``.LC<n>``).

The output is assembly text for :func:`repro.asm.parse_asm`; it forms
a single basic block (no terminator), ready for any builder/scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.parser import parse_asm
from repro.asm.program import Program
from repro.minic.ast import (
    Assign,
    Binary,
    CType,
    Decl,
    Expr,
    FloatLit,
    Index,
    IntLit,
    Unary,
    Var,
)
from repro.minic.lexer import MiniCError
from repro.minic.parser import parse_minic

_INT_POOL = tuple(f"%o{i}" for i in range(6)) \
    + tuple(f"%l{i}" for i in range(2, 8))
_FP_POOL = tuple(f"%f{i}" for i in range(0, 32, 2))

_INT_OPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
            "<<": "sll", ">>": "sra", "*": "smul", "/": "sdiv"}
_FP_OPS = {"+": "faddd", "-": "fsubd", "*": "fmuld", "/": "fdivd"}
_INT_ONLY_OPS = {"%", "&", "|", "^", "<<", ">>"}

_IMM_MIN, _IMM_MAX = -4096, 4095


@dataclass
class _Value:
    """An expression result: a register or an inline immediate."""

    ctype: CType
    reg: str | None = None
    imm: int | None = None

    @property
    def is_imm(self) -> bool:
        return self.imm is not None


@dataclass
class _Codegen:
    types: dict[str, CType] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)
    free_int: list[str] = field(default_factory=lambda: list(_INT_POOL))
    free_fp: list[str] = field(default_factory=lambda: list(_FP_POOL))
    constants: dict[float, str] = field(default_factory=dict)
    n_temps: int = 0

    # -- infrastructure ----------------------------------------------------

    def emit(self, text: str, comment: str = "") -> None:
        line = f"\t{text}"
        if comment:
            line += f"\t! {comment}"
        self.lines.append(line)

    def alloc(self, ctype: CType) -> str:
        pool = self.free_fp if ctype is CType.DOUBLE else self.free_int
        if not pool:
            raise MiniCError("expression too deep: temporary register "
                             "pool exhausted")
        return pool.pop(0)

    def free(self, value: _Value) -> None:
        if value.reg is None:
            return
        pool = (self.free_fp if value.ctype is CType.DOUBLE
                else self.free_int)
        if value.reg not in pool:
            pool.insert(0, value.reg)

    def var_type(self, name: str) -> CType:
        # Undeclared identifiers default to int (documented).
        return self.types.get(name, CType.INT)

    def const_slot(self, value: float) -> str:
        slot = self.constants.get(value)
        if slot is None:
            slot = f".LC{len(self.constants)}"
            self.constants[value] = slot
        return slot

    def temp_slot(self) -> str:
        self.n_temps += 1
        return f".T{self.n_temps - 1}"

    # -- materialization ---------------------------------------------------

    def load_int_literal(self, value: int) -> _Value:
        reg = self.alloc(CType.INT)
        if _IMM_MIN <= value <= _IMM_MAX:
            self.emit(f"mov {value}, {reg}")
        else:
            high, low = (value >> 10) & 0x3FFFFF, value & 0x3FF
            self.emit(f"sethi {high}, {reg}")
            if low:
                self.emit(f"or {reg}, {low}, {reg}")
        return _Value(CType.INT, reg=reg)

    def to_reg(self, value: _Value) -> _Value:
        if not value.is_imm:
            return value
        return self.load_int_literal(value.imm)

    def to_double(self, value: _Value) -> _Value:
        """Coerce an int value to double via a memory staging slot."""
        if value.ctype is CType.DOUBLE:
            return value
        value = self.to_reg(value)
        slot = self.temp_slot()
        freg = self.alloc(CType.DOUBLE)
        self.emit(f"st {value.reg}, [{slot}]", "int -> double staging")
        self.emit(f"ld [{slot}], {freg}")
        self.emit(f"fitod {freg}, {freg}")
        self.free(value)
        return _Value(CType.DOUBLE, reg=freg)

    def to_int(self, value: _Value) -> _Value:
        """Coerce a double value to int (fdtoi + store/load staging)."""
        if value.ctype is not CType.DOUBLE:
            return self.to_reg(value)
        single = self.alloc(CType.DOUBLE)  # staging pair; even half used
        self.emit(f"fdtoi {value.reg}, {single}")
        slot = self.temp_slot()
        self.emit(f"st {single}, [{slot}]", "double -> int staging")
        reg = self.alloc(CType.INT)
        self.emit(f"ld [{slot}], {reg}")
        self.free(value)
        self.free(_Value(CType.DOUBLE, reg=single))
        return _Value(CType.INT, reg=reg)

    # -- expressions -------------------------------------------------------

    def gen(self, expr: Expr) -> _Value:
        if isinstance(expr, IntLit):
            if _IMM_MIN <= expr.value <= _IMM_MAX:
                return _Value(CType.INT, imm=expr.value)
            return self.load_int_literal(expr.value)
        if isinstance(expr, FloatLit):
            slot = self.const_slot(expr.value)
            reg = self.alloc(CType.DOUBLE)
            self.emit(f"ldd [{slot}], {reg}", f"constant {expr.value}")
            return _Value(CType.DOUBLE, reg=reg)
        if isinstance(expr, Var):
            ctype = self.var_type(expr.name)
            reg = self.alloc(ctype)
            if ctype is CType.DOUBLE:
                self.emit(f"ldd [{expr.name}], {reg}")
            else:
                self.emit(f"ld [{expr.name}], {reg}")
            return _Value(ctype, reg=reg)
        if isinstance(expr, Index):
            ctype = self.var_type(expr.name)
            address, temps = self.element_address(expr.name, expr.index,
                                                  ctype)
            reg = self.alloc(ctype)
            mnemonic = "ldd" if ctype is CType.DOUBLE else "ld"
            self.emit(f"{mnemonic} [{address}], {reg}")
            for temp in temps:
                self.free(temp)
            return _Value(ctype, reg=reg)
        if isinstance(expr, Unary):
            return self.gen_negate(expr.operand)
        assert isinstance(expr, Binary)
        return self.gen_binary(expr)

    def element_address(self, name: str, index: Expr,
                        ctype: CType) -> tuple[str, list[_Value]]:
        """Address text for ``name[index]`` plus temporaries to free.

        Constant indices fold into a symbol+offset expression; variable
        indices produce the scale-shift + sethi/or base materialization
        idiom (``[base_reg + scaled_reg]``).
        """
        shift = 3 if ctype is CType.DOUBLE else 2
        if isinstance(index, IntLit):
            offset = index.value << shift
            return (f"{name}+{offset}" if offset >= 0
                    else f"{name}{offset}") if offset else name, []
        value = self.gen(index)
        if value.ctype is not CType.INT:
            raise MiniCError("array index must be an int expression")
        value = self.to_reg(value)
        scaled = self.alloc(CType.INT)
        self.emit(f"sll {value.reg}, {shift}, {scaled}",
                  f"scale index by {1 << shift}")
        self.free(value)
        base = self.alloc(CType.INT)
        self.emit(f"sethi %hi({name}), {base}")
        self.emit(f"or {base}, %lo({name}), {base}")
        return f"{base}+{scaled}", [_Value(CType.INT, reg=scaled),
                                    _Value(CType.INT, reg=base)]

    def gen_negate(self, operand: Expr) -> _Value:
        value = self.gen(operand)
        if value.ctype is CType.DOUBLE:
            even = value.reg
            odd_src = f"%f{int(even[2:]) + 1}"
            dest = self.alloc(CType.DOUBLE)
            odd_dest = f"%f{int(dest[2:]) + 1}"
            self.emit(f"fnegs {even}, {dest}", "double negate, V8 style")
            self.emit(f"fmovs {odd_src}, {odd_dest}")
            self.free(value)
            return _Value(CType.DOUBLE, reg=dest)
        value = self.to_reg(value)
        dest = self.alloc(CType.INT)
        self.emit(f"sub %g0, {value.reg}, {dest}")
        self.free(value)
        return _Value(CType.INT, reg=dest)

    def gen_binary(self, expr: Binary) -> _Value:
        left = self.gen(expr.left)
        right = self.gen(expr.right)
        is_double = (left.ctype is CType.DOUBLE
                     or right.ctype is CType.DOUBLE)
        if is_double and expr.op in _INT_ONLY_OPS:
            raise MiniCError(
                f"operator {expr.op!r} is not defined for double")
        if is_double:
            left = self.to_double(left)
            right = self.to_double(right)
            dest = self.alloc(CType.DOUBLE)
            self.emit(f"{_FP_OPS[expr.op]} {left.reg}, {right.reg}, {dest}")
            self.free(left)
            self.free(right)
            return _Value(CType.DOUBLE, reg=dest)
        if expr.op == "%":
            return self.gen_remainder(left, right)
        left = self.to_reg(left)
        rhs = str(right.imm) if right.is_imm else right.reg
        dest = self.alloc(CType.INT)
        self.emit(f"{_INT_OPS[expr.op]} {left.reg}, {rhs}, {dest}")
        self.free(left)
        self.free(right)
        return _Value(CType.INT, reg=dest)

    def gen_remainder(self, left: _Value, right: _Value) -> _Value:
        """a % b  ->  a - (a / b) * b  (SPARC has no remainder)."""
        left = self.to_reg(left)
        right = self.to_reg(right)
        quotient = self.alloc(CType.INT)
        self.emit(f"sdiv {left.reg}, {right.reg}, {quotient}",
                  "remainder: quotient")
        product = self.alloc(CType.INT)
        self.emit(f"smul {quotient}, {right.reg}, {product}")
        dest = self.alloc(CType.INT)
        self.emit(f"sub {left.reg}, {product}, {dest}")
        for v in (left, right, _Value(CType.INT, reg=quotient),
                  _Value(CType.INT, reg=product)):
            self.free(v)
        return _Value(CType.INT, reg=dest)

    # -- statements --------------------------------------------------------

    def gen_assign(self, statement: Assign) -> None:
        target_type = self.var_type(statement.name)
        value = self.gen(statement.expr)
        if target_type is CType.DOUBLE:
            value = self.to_double(value)
            mnemonic = "std"
        else:
            value = self.to_int(value)
            mnemonic = "st"
        if statement.index is not None:
            address, temps = self.element_address(
                statement.name, statement.index, target_type)
            self.emit(f"{mnemonic} {value.reg}, [{address}]")
            for temp in temps:
                self.free(temp)
        else:
            self.emit(f"{mnemonic} {value.reg}, [{statement.name}]")
        self.free(value)

    def _constant_init_lines(self) -> list[str]:
        """Initialization code for the double constant pool.

        There is no data section in this dialect, so constants are
        materialized at block start: each 64-bit pattern is built in
        ``%g1`` word by word (sethi/or) and stored into its slot.
        This keeps compiled programs executable by ``repro.interp``.
        """
        import struct
        lines: list[str] = []
        for value, slot in self.constants.items():
            high, low = struct.unpack(">II", struct.pack(">d", value))
            for word, offset in ((high, 0), (low, 4)):
                lines.append(f"\tsethi {word >> 10}, %g1")
                if word & 0x3FF:
                    lines.append(f"\tor %g1, {word & 0x3FF}, %g1")
                where = f"{slot}+{offset}" if offset else slot
                lines.append(f"\tst %g1, [{where}]\t! init {value}")
        return lines

    def run(self, statements) -> str:
        for statement in statements:
            if isinstance(statement, Decl):
                for name in statement.names:
                    if name in self.types \
                            and self.types[name] is not statement.ctype:
                        raise MiniCError(
                            f"conflicting declaration of {name!r}")
                    self.types[name] = statement.ctype
            else:
                self.gen_assign(statement)
        header = ["! generated by repro.minic"]
        for value, slot in self.constants.items():
            header.append(f"! constant pool: [{slot}] = {value}")
        return "\n".join(header + self._constant_init_lines()
                         + self.lines) + "\n"


def compile_minic(source: str) -> str:
    """Compile mini-C source to SPARC-like assembly text.

    Raises:
        MiniCError: on lexical, syntax, type, or capacity errors.
    """
    return _Codegen().run(parse_minic(source))


def compile_to_program(source: str, name: str = "<minic>") -> Program:
    """Compile mini-C and parse the result into a :class:`Program`."""
    return parse_asm(compile_minic(source), name)
