"""``repro fsck``: scan, classify, and repair durable on-disk state.

Three kinds of file carry the repo's durability story and all three
are checked here:

* **run journals** (:mod:`repro.runner.journal`) -- ``header`` line
  then block records;
* **serve WALs** (:mod:`repro.serve.wal`) -- ``wal-header`` line then
  accepted/block/finished records;
* **snapshots** (:func:`repro.runner.journal.write_snapshot`) --
  single-document JSON with an embedded CRC32.

Damage is *classified*, never guessed at, using the shared taxonomy
from :mod:`repro.runner.journal`: a torn tail (the incomplete final
write of a killed process) is the only safely repairable defect --
dropping it loses at most the record that was never acknowledged.
Everything else (mid-file CRC mismatch, truncated interior frame,
blank interior line) is reported as corruption: repairing it would
silently invent or skip records, which is exactly the failure mode
this module exists to prevent.

Repair never touches the original file: ``--repair`` writes the good
prefix to ``<path>.repaired`` and leaves the evidence in place.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

from repro.errors import JournalError
from repro.runner.journal import (
    DAMAGE_TORN_TAIL,
    LineDamage,
    parse_record_line,
    scan_lines,
)

#: file classifications fsck reports
KIND_JOURNAL = "journal"
KIND_WAL = "wal"
KIND_SNAPSHOT = "snapshot"
KIND_UNKNOWN = "unknown"

#: per-file verdicts
STATUS_CLEAN = "clean"
STATUS_REPAIRABLE = "repairable"
STATUS_REPAIRED = "repaired"
STATUS_CORRUPT = "corrupt"


@dataclass
class FsckFinding:
    """The verdict for one scanned file.

    Attributes:
        path: the file checked.
        kind: one of journal / wal / snapshot / unknown.
        status: clean, repairable (torn tail only), repaired (a
            ``.repaired`` copy was written), or corrupt.
        n_records: records that read back intact.
        damage: every classified defect, in line order.
        repaired_path: where the good prefix was written, if repair
            ran.
    """

    path: str
    kind: str
    status: str
    n_records: int = 0
    damage: list[LineDamage] = field(default_factory=list)
    repaired_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_CLEAN, STATUS_REPAIRED)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "status": self.status,
            "n_records": self.n_records,
            "damage": [
                {"line": d.lineno, "kind": d.kind,
                 "repairable": d.repairable, "detail": d.detail}
                for d in self.damage],
            "repaired_path": self.repaired_path,
        }


def _classify_kind(first_line: str, whole_text: str) -> str:
    """Which durable format a file is, from its first line."""
    record, _, _ = parse_record_line(first_line)
    if record is not None:
        rtype = record.get("type")
        if rtype == "header":
            return KIND_JOURNAL
        if rtype == "wal-header":
            return KIND_WAL
        if rtype == "snapshot":
            return KIND_SNAPSHOT
    try:
        document = json.loads(whole_text)
        if isinstance(document, dict) \
                and document.get("type") == "snapshot":
            return KIND_SNAPSHOT
    except json.JSONDecodeError:
        pass
    return KIND_UNKNOWN


def _check_snapshot(path: str, text: str) -> FsckFinding:
    """Verify one snapshot document against its embedded CRC32."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return FsckFinding(
            path=path, kind=KIND_SNAPSHOT, status=STATUS_CORRUPT,
            damage=[LineDamage(
                lineno=1, kind="unparseable",
                detail=f"snapshot is not JSON: {exc} (a torn snapshot "
                       f"should be impossible -- writes are "
                       f"tmp+fsync+rename)", repairable=False)])
    body = json.dumps(document.get("payload"))
    actual = f"{zlib.crc32(body.encode('utf-8')):08x}"
    if actual != document.get("crc32"):
        return FsckFinding(
            path=path, kind=KIND_SNAPSHOT, status=STATUS_CORRUPT,
            damage=[LineDamage(
                lineno=1, kind="crc-mismatch",
                detail=f"payload crc32 {actual} != recorded "
                       f"{document.get('crc32')!r}", repairable=False)])
    return FsckFinding(path=path, kind=KIND_SNAPSHOT,
                       status=STATUS_CLEAN, n_records=1)


def fsck_file(path: str, repair: bool = False) -> FsckFinding:
    """Scan one file; optionally write a ``.repaired`` copy.

    Repair applies only when *every* defect is the repairable torn
    tail: the copy is the original lines minus the torn write.  The
    original is never modified.

    Raises:
        JournalError: when the file cannot be read at all.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise JournalError(f"fsck: cannot read {path!r}: {exc}")
    lines = text.splitlines()
    if not lines:
        return FsckFinding(path=path, kind=KIND_UNKNOWN,
                           status=STATUS_CORRUPT,
                           damage=[LineDamage(
                               lineno=1, kind="unparseable",
                               detail="file is empty",
                               repairable=False)])
    kind = _classify_kind(lines[0], text)
    if kind == KIND_SNAPSHOT:
        return _check_snapshot(path, text)
    if kind == KIND_UNKNOWN:
        return FsckFinding(
            path=path, kind=KIND_UNKNOWN, status=STATUS_CORRUPT,
            damage=[LineDamage(
                lineno=1, kind="unparseable",
                detail="first line is neither a journal header, a "
                       "WAL header, nor a snapshot document",
                repairable=False)])
    records, damage = scan_lines(lines[1:], first_lineno=2)
    finding = FsckFinding(path=path, kind=kind, status=STATUS_CLEAN,
                          n_records=len(records) + 1, damage=damage)
    if not damage:
        return finding
    if all(d.repairable for d in damage):
        finding.status = STATUS_REPAIRABLE
        if repair:
            torn_from = min(d.lineno for d in damage
                            if d.kind == DAMAGE_TORN_TAIL)
            repaired = f"{path}.repaired"
            with open(repaired, "w", encoding="utf-8") as out:
                for line in lines[:torn_from - 1]:
                    out.write(line + "\n")
                out.flush()
                os.fsync(out.fileno())
            finding.status = STATUS_REPAIRED
            finding.repaired_path = repaired
    else:
        finding.status = STATUS_CORRUPT
    return finding


def fsck_paths(paths: list[str],
               repair: bool = False) -> list[FsckFinding]:
    """Scan files and directories (directories: known durable names).

    A directory contributes every ``*.jsonl``, ``*.wal``, and
    ``*.json`` file directly inside it (not recursive, and not
    ``.repaired`` copies or ``.tmp`` leftovers).
    """
    findings: list[FsckFinding] = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith((".repaired", ".tmp", ".pid")):
                    continue
                if not name.endswith((".jsonl", ".wal", ".json")):
                    continue
                findings.append(fsck_file(os.path.join(path, name),
                                          repair=repair))
        else:
            findings.append(fsck_file(path, repair=repair))
    return findings


def render_fsck_report(findings: list[FsckFinding]) -> str:
    """Human-readable per-file verdicts plus a one-line summary."""
    out = []
    for finding in findings:
        out.append(f"{finding.path}: {finding.kind} "
                   f"{finding.status} ({finding.n_records} records)")
        for defect in finding.damage:
            fix = "repairable" if defect.repairable else "NOT repairable"
            out.append(f"  line {defect.lineno}: {defect.kind} "
                       f"[{fix}] {defect.detail}")
        if finding.repaired_path:
            out.append(f"  -> good prefix written to "
                       f"{finding.repaired_path}")
    n_clean = sum(1 for f in findings if f.status == STATUS_CLEAN)
    n_bad = sum(1 for f in findings if f.status == STATUS_CORRUPT)
    out.append(f"fsck: {len(findings)} files checked, {n_clean} clean, "
               f"{len(findings) - n_clean - n_bad} torn, {n_bad} corrupt")
    return "\n".join(out)
