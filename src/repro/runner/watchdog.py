"""Per-block watchdog: wall-clock and work-counter budgets.

The section 6 experiment schedules whole benchmarks, fpppp's giant
block with an unbounded window included -- exactly where an ``n**2``
construction pass or a buggy heuristic can stall for minutes.  The
watchdog converts a runaway block into a typed
:class:`~repro.errors.BlockTimeout` the fallback chain can handle,
through two complementary mechanisms:

* a **work budget** enforced cooperatively: :class:`BudgetedStats` is
  a drop-in :class:`~repro.dag.builders.base.BuildStats` whose counter
  increments (comparisons, table probes, bitmap ops -- the "arcs
  considered" currency of Tables 4/5) raise once the configured total
  is exceeded.  Deterministic, zero-thread, and machine-independent,
  but only covers instrumented construction work;
* a **wall-clock budget** enforced preemptively:
  :func:`run_with_watchdog` executes the block attempt on a daemon
  worker thread and abandons it at the deadline.  This catches hangs
  anywhere in the construction/heuristic/scheduling chain, including
  ones that never touch a counter.

Both budgets are optional; a :class:`Budget` with neither set runs the
attempt inline with no overhead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.dag.builders.base import BuildStats
from repro.errors import BlockTimeout

T = TypeVar("T")

#: counter fields that count toward the work budget
_WORK_FIELDS = ("comparisons", "table_probes", "alias_checks",
                "bitmap_ops")


@dataclass(frozen=True)
class Budget:
    """Per-block resource limits.

    Attributes:
        wall_clock: seconds of real time per block attempt (None =
            unlimited).
        max_work: construction work units per block attempt -- the sum
            of comparisons, table probes, alias checks, and bitmap
            operations (None = unlimited).
    """

    wall_clock: float | None = None
    max_work: int | None = None

    @property
    def unlimited(self) -> bool:
        """True when neither budget is set."""
        return self.wall_clock is None and self.max_work is None


class BudgetedStats(BuildStats):
    """A :class:`BuildStats` that trips a work budget as it counts.

    Builders increment their counters on whatever stats object
    :meth:`~repro.dag.builders.base.DagBuilder.build` gives them; this
    subclass audits every increment and raises
    :class:`~repro.errors.BlockTimeout` the moment the summed
    construction work exceeds ``max_work``.  The check is exact and
    deterministic: the same block and budget always trip at the same
    counter value, which keeps journaled runs reproducible.
    """

    def __init__(self, max_work: int | None,
                 block: str | None = None) -> None:
        self._max_work = None  # disarm while the dataclass init runs
        self._block = block
        super().__init__()
        self._max_work = max_work

    @property
    def work(self) -> int:
        """Summed budgeted work counters."""
        return sum(getattr(self, name) for name in _WORK_FIELDS)

    def __setattr__(self, name: str, value: object) -> None:
        super().__setattr__(name, value)
        if name.startswith("_") or name not in _WORK_FIELDS:
            return
        limit = getattr(self, "_max_work", None)
        if limit is not None and self.work > limit:
            raise BlockTimeout(
                f"construction work budget exceeded "
                f"({self.work} > {limit} units)",
                block=self._block, budget="work", limit=limit,
                spent=self.work)


def run_with_watchdog(fn: Callable[[], T], budget: Budget | None,
                      block: str | None = None) -> T:
    """Run ``fn`` under ``budget``'s wall-clock limit.

    With no wall-clock budget, ``fn`` runs inline.  Otherwise it runs
    on a daemon worker thread; if the deadline passes the worker is
    abandoned (Python threads cannot be killed) and
    :class:`~repro.errors.BlockTimeout` is raised -- the abandoned
    thread can at worst waste CPU until its next budgeted counter
    increment trips, which is why the work budget and the wall clock
    are designed to be used together.

    Args:
        fn: zero-argument attempt (build + heuristics + schedule).
        budget: the limits; None or no wall_clock runs inline.
        block: label for the timeout diagnostic.

    Raises:
        BlockTimeout: when the deadline passes.
        Exception: whatever ``fn`` raised, re-raised on this thread.
    """
    if budget is None or budget.wall_clock is None:
        return fn()
    box: dict[str, object] = {}

    def worker() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    start = time.monotonic()
    thread = threading.Thread(target=worker, daemon=True,
                              name=f"repro-block-{block}")
    thread.start()
    thread.join(budget.wall_clock)
    if thread.is_alive():
        raise BlockTimeout(
            f"wall-clock budget exceeded "
            f"({time.monotonic() - start:.2f}s > "
            f"{budget.wall_clock:.2f}s)",
            block=block, budget="wall-clock", limit=budget.wall_clock,
            spent=time.monotonic() - start)
    if "error" in box:
        raise box["error"]  # type: ignore[misc]
    return box["result"]  # type: ignore[return-value]
